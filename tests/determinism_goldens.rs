//! Determinism golden suite: pins the simulator's observable output,
//! bit for bit, across (a) replays of the same seed, (b) the optimized
//! and reference engine paths, and (c) history — via digests committed
//! in `tests/golden/sim_report_digests.txt`, generated *before* the
//! event-queue/fast-forward optimizations landed and required to stay
//! byte-identical ever since.
//!
//! Each case digests the engine's raw [`SimReport`] (or, for runs that
//! are *supposed* to fail, the full error value) through its `Debug`
//! rendering. Rust's `f64` Debug formatting is shortest-roundtrip, so
//! two reports render to the same string iff every float in them is
//! bit-identical — no tolerance, no rounding.
//!
//! The corpus spans the surfaces that matter: generator-drawn programs
//! (the fuzz campaign's grammar, default and campaign-scale configs),
//! both modeled machines (vera, dardel), sterile and calibrated
//! parameter sets, fault injections of every kind, the frequency
//! logger, tracing on and off, and a known runtime-deadlock straggler.
//!
//! To regenerate after an *intentional* output change (a new counter, a
//! model fix), run:
//!
//! ```text
//! UPDATE_SIM_GOLDENS=1 cargo test --test determinism_goldens
//! ```
//!
//! and commit the diff — the diff itself is then the review surface.

use ompvar_qcheck::gen::{self, GenConfig};
use ompvar_rt::region::{Construct, RegionSpec, Schedule};
use ompvar_rt::simrt::{FreqLoggerCfg, SimRuntime};
use ompvar_rt::RtConfig;
use ompvar_sim::fault::FaultPlan;
use ompvar_sim::params::SimParams;
use ompvar_sim::time::{MS, SEC, US};
use ompvar_topology::{MachineSpec, Places};
use std::fmt::Write as _;

/// Seed base for the generator-drawn part of the corpus (fixed forever:
/// the committed digests depend on it).
const GOLDEN_SEED: u64 = 0x601D_E2D1;

/// FNV-1a, 64-bit: tiny, dependency-free, and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One golden case: a name (stable, used as the key in the golden
/// file), a fully configured runtime, and the program to run.
struct Case {
    name: String,
    rt: SimRuntime,
    region: RegionSpec,
    seed: u64,
}

/// Digest one run: `ok:` + hash of the raw report's Debug rendering,
/// or `err:` + hash of the error's (errors are part of the observable
/// surface too — a deadlock report lists who is blocked on what).
fn digest(case: &Case, reference: bool) -> String {
    let rt = case.rt.clone().with_reference_engine(reference);
    match rt.run_report(&case.region, case.seed) {
        Ok(report) => format!("ok:{:016x}", fnv1a(format!("{report:?}").as_bytes())),
        Err(err) => format!("err:{:016x}", fnv1a(format!("{err:?}").as_bytes())),
    }
}

/// The fuzz campaign's sim runtime (mirrors
/// `ompvar_qcheck::oracle::sim_runtime`).
fn fuzz_rt(machine: MachineSpec, n_threads: usize) -> SimRuntime {
    SimRuntime::new(machine, RtConfig::pinned_close(Places::Threads(Some(n_threads))))
        .with_params(SimParams::sterile())
        .with_time_limit(300 * SEC)
        .with_tracing(true)
}

/// The campaign-scale generator configuration (matches
/// `ompvar_bench::throughput::fuzz_gen_config`; duplicated so the golden
/// corpus has no dependency on the bench crate).
fn heavy_cfg() -> GenConfig {
    GenConfig {
        max_threads: 8,
        max_block_len: 8,
        max_depth: 3,
        max_repeat: 8,
        max_iters: 96,
        max_body_us: 2.0,
        max_tasks: 6,
    }
}

/// A small schedbench-shaped kernel used by the handcrafted cases.
fn sched_region(n_threads: usize, reps: u32) -> RegionSpec {
    RegionSpec::new(
        n_threads,
        vec![Construct::Repeat {
            count: reps,
            body: vec![
                Construct::ParallelFor {
                    schedule: Schedule::Dynamic { chunk: 2 },
                    total_iters: 64,
                    body_us: 1.5,
                    ordered_us: None,
                    nowait: false,
                },
                Construct::Barrier,
            ],
        }],
    )
    .expect("sched region is valid")
}

/// A sync-heavy handcrafted region: named locks, critical, atomic,
/// single, reduction, tasks — the object kinds the slab-reuse
/// optimizations touch.
fn sync_region(n_threads: usize) -> RegionSpec {
    RegionSpec::new(
        n_threads,
        vec![
            Construct::Locked {
                lock: 0,
                body: vec![
                    Construct::DelayUs(0.5),
                    Construct::Locked {
                        lock: 1,
                        body: vec![Construct::Atomic],
                    },
                ],
            },
            Construct::Critical { body_us: 0.8 },
            Construct::Single { body_us: 1.2 },
            Construct::Reduction { body_us: 0.6 },
            Construct::Tasks {
                per_spawner: 3,
                body_us: 0.4,
                master_only: false,
            },
            Construct::Barrier,
        ],
    )
    .expect("sync region is valid")
}

/// Build the full golden corpus (40 cases).
fn corpus() -> Vec<Case> {
    let mut cases = Vec::new();

    // 12 generator programs, default grammar, fuzz-campaign runtime.
    let cfg = GenConfig::default();
    for i in 0..12u64 {
        let seed = ompvar_qcheck::case_seed(GOLDEN_SEED, i);
        let region = gen::generate(seed, &cfg);
        cases.push(Case {
            name: format!("gen-default-vera-sterile-{i:02}"),
            rt: fuzz_rt(MachineSpec::vera(), region.n_threads),
            region,
            seed,
        });
    }

    // 6 generator programs, campaign-scale grammar (deeper nesting,
    // larger teams — more sync objects, more migration).
    let heavy = heavy_cfg();
    for i in 0..6u64 {
        let seed = ompvar_qcheck::case_seed(GOLDEN_SEED ^ 0xBEEF, i);
        let region = gen::generate(seed, &heavy);
        cases.push(Case {
            name: format!("gen-heavy-vera-sterile-{i:02}"),
            rt: fuzz_rt(MachineSpec::vera(), region.n_threads),
            region,
            seed,
        });
    }

    // 6 generator programs under *calibrated* parameters (OS noise,
    // timer ticks, DVFS and load balancing all live), unbound threads.
    for i in 0..6u64 {
        let seed = ompvar_qcheck::case_seed(GOLDEN_SEED ^ 0xCA11, i);
        let region = gen::generate(seed, &cfg);
        cases.push(Case {
            name: format!("gen-default-vera-calibrated-{i:02}"),
            rt: SimRuntime::new(MachineSpec::vera(), RtConfig::unbound()),
            region,
            seed,
        });
    }

    // 4 generator programs on dardel (bigger topology, SMT-less,
    // different turbo table).
    for i in 0..4u64 {
        let seed = ompvar_qcheck::case_seed(GOLDEN_SEED ^ 0xDA2D, i);
        let region = gen::generate(seed, &cfg);
        cases.push(Case {
            name: format!("gen-default-dardel-calibrated-{i:02}"),
            rt: SimRuntime::new(MachineSpec::dardel(), RtConfig::unbound()),
            region,
            seed,
        });
    }

    // Frequency logger + tracing: the paper-figure configuration.
    cases.push(Case {
        name: "sched-vera-freq-logger".into(),
        rt: SimRuntime::new(MachineSpec::vera(), RtConfig::unbound())
            .with_freq_logger(FreqLoggerCfg::on_spare_core(0))
            .with_tracing(true),
        region: sched_region(8, 6),
        seed: 0xF2E6,
    });
    cases.push(Case {
        name: "sched-dardel-freq-logger".into(),
        rt: SimRuntime::new(MachineSpec::dardel(), RtConfig::unbound())
            .with_freq_logger(FreqLoggerCfg::on_spare_core(1))
            .with_tracing(true),
        region: sched_region(16, 4),
        seed: 0xF2E7,
    });

    // One fault plan per fault kind, on the calibrated machine.
    let fault_plans: Vec<(&str, FaultPlan)> = vec![
        (
            "noise-storm",
            FaultPlan::new().noise_storm(2 * MS, 30 * MS, 200 * US, 50 * US, 1.1),
        ),
        (
            "cpu-offline",
            FaultPlan::new().cpu_offline(MS, 2, Some(20 * MS)),
        ),
        (
            "freq-cap",
            FaultPlan::new().freq_cap(500 * US, Some(0), 1.8, Some(25 * MS)),
        ),
        (
            "task-stall",
            FaultPlan::new().task_stall(MS, Some(1), 4e6),
        ),
        (
            "lost-wakeups",
            FaultPlan::new().lost_wakeups(200 * US, 2),
        ),
    ];
    for (fname, plan) in fault_plans {
        cases.push(Case {
            name: format!("fault-{fname}-vera"),
            rt: SimRuntime::new(MachineSpec::vera(), RtConfig::unbound())
                .with_faults(plan)
                .with_tracing(true),
            region: sched_region(8, 8),
            seed: 0xFA17,
        });
    }

    // Sync-object zoo, both machines, fuzz runtime (slab-reuse surface).
    cases.push(Case {
        name: "sync-zoo-vera-sterile".into(),
        rt: fuzz_rt(MachineSpec::vera(), 8),
        region: sync_region(8),
        seed: 0x5FAC,
    });
    cases.push(Case {
        name: "sync-zoo-dardel-sterile".into(),
        rt: fuzz_rt(MachineSpec::dardel(), 12),
        region: sync_region(12),
        seed: 0x5FAD,
    });

    // Attribution-enabled cases: the causal ledger rides along on noisy
    // runs (a noise-storm-battered dardel, a stall-flaky vera) and its
    // contents are part of the digested surface. Paired with the
    // attribution-off corpus above, these pin both halves of the
    // tracing-style invariant: attribution off → reports byte-identical
    // to history; attribution on → the ledger itself is deterministic.
    cases.push(Case {
        name: "attr-noisy-dardel".into(),
        rt: SimRuntime::new(MachineSpec::dardel(), RtConfig::unbound())
            .with_faults(FaultPlan::new().noise_storm(2 * MS, 30 * MS, 200 * US, 50 * US, 1.1))
            .with_attribution(true),
        region: sched_region(16, 6),
        seed: 0xA77B,
    });
    cases.push(Case {
        name: "attr-flaky-vera".into(),
        rt: SimRuntime::new(MachineSpec::vera(), RtConfig::unbound())
            .with_faults(FaultPlan::new().task_stall(MS, Some(1), 4e6))
            .with_attribution(true),
        region: sched_region(8, 8),
        seed: 0xA77C,
    });

    // The straggler: a generator program whose lock-order inversion
    // deadlocks at runtime, grinding no-op LoadBalance chains to the
    // 300s limit. Digests the *error* (deadlock diagnostics), and pins
    // the idle fast-forward against the reference path end to end.
    let seed = ompvar_qcheck::case_seed(0x5EED_F00D, 264);
    let region = gen::generate(seed, &heavy);
    cases.push(Case {
        name: "straggler-deadlock-vera-sterile".into(),
        rt: fuzz_rt(MachineSpec::vera(), region.n_threads),
        region,
        seed,
    });

    cases
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/sim_report_digests.txt")
}

fn render_goldens(cases: &[Case]) -> String {
    let mut out = String::from(
        "# Determinism goldens: `<case name> <digest>` per line.\n\
         # Generated by tests/determinism_goldens.rs and verified bit-identical\n\
         # against the pre-optimization reference engine; every later engine\n\
         # change must reproduce these digests bit for bit. Regenerate\n\
         # (intentional output changes only) with\n\
         # UPDATE_SIM_GOLDENS=1 cargo test --test determinism_goldens\n",
    );
    for case in cases {
        writeln!(out, "{} {}", case.name, digest(case, false)).unwrap();
    }
    out
}

/// The committed digests must match what the optimized engine produces
/// today. This is the history axis: any engine change that shifts one
/// bit of any report in the corpus fails here.
#[test]
fn reports_match_committed_goldens() {
    let cases = corpus();
    assert!(cases.len() >= 32, "golden corpus shrank: {}", cases.len());
    let path = golden_path();
    if std::env::var_os("UPDATE_SIM_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render_goldens(&cases)).unwrap();
        eprintln!("rewrote {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with UPDATE_SIM_GOLDENS=1 to create)", path.display()));
    let mut failures = Vec::new();
    let mut seen = 0;
    for line in committed.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (name, want) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("malformed golden line: {line:?}"));
        let case = cases
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("golden file names unknown case {name:?}"));
        seen += 1;
        let got = digest(case, false);
        if got != want {
            failures.push(format!("  {name}: committed {want}, got {got}"));
        }
    }
    assert_eq!(seen, cases.len(), "golden file is missing cases; regenerate");
    assert!(
        failures.is_empty(),
        "simulator output drifted from committed goldens:\n{}",
        failures.join("\n")
    );
}

/// Replay axis: the same (runtime, region, seed) run twice produces the
/// same bits.
#[test]
fn replay_is_bit_identical() {
    for case in corpus() {
        assert_eq!(
            digest(&case, false),
            digest(&case, false),
            "replay diverged for {}",
            case.name
        );
    }
}

/// Engine-equivalence axis: the optimized path (packed event queue,
/// topology caches, idle fast-forward, slab reuse) and the reference
/// path (pre-optimization binary heap, naive lookups, no fast-forward)
/// must be observably indistinguishable on every case.
#[test]
fn reference_engine_is_bit_identical() {
    for case in corpus() {
        assert_eq!(
            digest(&case, false),
            digest(&case, true),
            "optimized and reference engines diverged for {}",
            case.name
        );
    }
}
