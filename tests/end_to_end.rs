//! Cross-crate integration tests: regions built with `ompvar-rt`, run on
//! both backends, analyzed with `ompvar-core`, against `ompvar-topology`
//! machines and `ompvar-sim` models.

use ompvar::core::{RunSet, Summary};
use ompvar::epcc::syncbench::{self, SyncConstruct};
use ompvar::epcc::{run_many, EpccConfig};
use ompvar::rt::{
    Construct, NativeRuntime, RegionRunner, RegionSpec, RtConfig, Schedule, SimRuntime,
};
use ompvar::sim::params::SimParams;
use ompvar::topology::{MachineSpec, Places, ProcBind};

/// The same region completes on the native and the simulated backend and
/// produces the same number of measured repetitions.
#[test]
fn region_runs_on_both_backends() {
    let region = RegionSpec::measured(
        3,
        4,
        2,
        vec![
            Construct::ParallelFor {
                schedule: Schedule::Guided { min_chunk: 1 },
                total_iters: 48,
                body_us: 1.0,
                ordered_us: None,
                nowait: false,
            },
            Construct::Critical { body_us: 0.5 },
            Construct::Barrier,
        ],
    );
    let sim = SimRuntime::new(
        MachineSpec::vera(),
        RtConfig::pinned_close(Places::Threads(Some(3))),
    );
    let nat = NativeRuntime::new(RtConfig::unbound());
    let rs = sim.run_region(&region, 5).expect("region run completes");
    let rn = nat.run_region(&region, 5).expect("region run completes");
    assert_eq!(rs.reps().len(), 4);
    assert_eq!(rn.reps().len(), 4);
    assert!(rs.counters.is_some());
    assert!(rn.counters.is_none());
}

/// Full pipeline determinism: the same seed reproduces an entire
/// experiment (placement, noise, frequency pulses, migrations) exactly.
#[test]
fn whole_experiment_is_deterministic() {
    let cfg = EpccConfig::syncbench_default().fast(5);
    let rt = SimRuntime::new(MachineSpec::dardel(), RtConfig::unbound());
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, 24, 8);
    let a: RunSet = run_many(&rt, &region, 3, 99);
    let b: RunSet = run_many(&rt, &region, 3, 99);
    assert_eq!(a, b);
    let c: RunSet = run_many(&rt, &region, 3, 100);
    assert_ne!(a, c);
}

/// Pinning configurations flow end-to-end: an explicit OMP_PLACES string
/// parses, resolves against the machine, and changes where time is spent
/// (cross-socket span costs more than same-socket).
#[test]
fn places_string_to_span_cost() {
    let cfg = EpccConfig::syncbench_default().fast(3);
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Barrier, 8, 20);
    let run_with = |places: &str| {
        let rt = SimRuntime::new(
            MachineSpec::vera(),
            RtConfig::from_env_strs(places, "close").unwrap(),
        )
        .with_params(SimParams::sterile());
        let res = rt.run_region(&region, 1).expect("region run completes");
        Summary::of(res.reps()).mean
    };
    let same_socket = run_with("{0},{1},{2},{3},{4},{5},{6},{7}");
    let cross_socket = run_with("{0},{1},{2},{3},{16},{17},{18},{19}");
    assert!(
        cross_socket > same_socket * 1.2,
        "cross-socket barrier {cross_socket} µs vs same-socket {same_socket} µs"
    );
}

/// The headline finding, end to end: pinning collapses the unbound
/// blow-ups of a synchronization-heavy benchmark on a big machine.
#[test]
fn pinning_collapses_variability() {
    let cfg = EpccConfig::syncbench_default().fast(20);
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, 48, 12);
    let unbound = run_many(
        &ompvar::harness::Platform::Dardel.unbound_rt(),
        &region,
        4,
        20230714,
    );
    let pinned = run_many(
        &ompvar::harness::Platform::Dardel.pinned_rt(48),
        &region,
        4,
        20230714,
    );
    assert!(
        unbound.pooled().spread() > 10.0 * pinned.pooled().spread(),
        "unbound {} vs pinned {}",
        unbound.pooled().spread(),
        pinned.pooled().spread()
    );
}

/// ST leaves room for the OS: fewer preemptions than MT at equal thread
/// count, visible through the engine counters.
#[test]
fn st_absorbs_noise_mt_does_not() {
    // Long enough (~0.5 s per run) for per-CPU kernel housekeeping to
    // arrive on the busy CPUs many times.
    let region = RegionSpec::measured(
        32,
        50,
        8,
        vec![Construct::DelayUs(200.0), Construct::Barrier],
    );
    let count_preempt = |rt: &SimRuntime| {
        let mut total = 0;
        for seed in 0..3 {
            let res = rt.run_region(&region, seed).expect("region run completes");
            total += res.counters.unwrap().preemptions;
        }
        total
    };
    let st = count_preempt(&ompvar::harness::Platform::Dardel.pinned_rt(32));
    let mt = count_preempt(&ompvar::harness::Platform::Dardel.pinned_mt_rt(32));
    assert!(
        mt > st * 2,
        "MT should suffer far more preemptions: ST {st} vs MT {mt}"
    );
}

/// Sterile parameters remove all modeled variability: every repetition of
/// every run is identical, proving the noise sources are the only causes.
#[test]
fn sterile_machine_has_zero_variability() {
    let cfg = EpccConfig::syncbench_default().fast(6);
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, 16, 10);
    let rt = SimRuntime::new(
        MachineSpec::dardel(),
        RtConfig {
            places: Places::Cores(Some(16)),
            bind: ProcBind::Close,
        },
    )
    .with_params(SimParams::sterile());
    let rs = run_many(&rt, &region, 3, 7);
    // Within a run, only deterministic spin-wake limit cycles remain
    // (arrival-order patterns worth a few percent); across runs there is
    // exactly zero variability — every run is bit-identical.
    let pooled = rs.pooled();
    assert!(pooled.spread() < 1.10, "sterile spread {}", pooled.spread());
    assert_eq!(rs.variance_decomposition().0, 0.0);
    assert_eq!(rs.runs[0], rs.runs[1]);
    assert_eq!(rs.runs[1], rs.runs[2]);
}

/// The native runtime honours all ten syncbench constructs.
#[test]
fn native_runs_every_sync_construct() {
    let cfg = EpccConfig::syncbench_default().fast(2);
    let nat = NativeRuntime::new(RtConfig::unbound());
    for c in SyncConstruct::ALL {
        let region = syncbench::region_with_inner(&cfg, c, 2, 3);
        let res = nat.run_region(&region, 0).expect("region run completes");
        assert_eq!(res.reps().len(), 2, "{}", c.label());
    }
}

/// BabelStream behaves end-to-end: per-kernel stats exist, larger kernels
/// cost more, and threads reduce time on the simulated machine.
#[test]
fn babelstream_end_to_end() {
    use ompvar::stream::{kernel_stats, StreamConfig, StreamKernel};
    let cfg = StreamConfig::small();
    let rt = ompvar::harness::Platform::Vera.pinned_rt(8);
    let res = rt.run_region(&ompvar::stream::region(&cfg, 8), 1).expect("region run completes");
    let stats = kernel_stats(&res);
    assert!(stats[&StreamKernel::Add].avg_us > stats[&StreamKernel::Copy].avg_us);
    assert!(stats[&StreamKernel::Dot].avg_us > 0.0);
}

/// The pinning intervention changes the repetition-time *distribution*
/// (KS test), and per-thread stats expose where unbound time goes.
#[test]
fn pinning_changes_the_distribution() {
    let cfg = EpccConfig::syncbench_default().fast(30);
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, 32, 12);
    let unb = ompvar::harness::Platform::Dardel
        .unbound_rt()
        .run_region(&region, 11).expect("region run completes");
    let pin = ompvar::harness::Platform::Dardel
        .pinned_rt(32)
        .run_region(&region, 11).expect("region run completes");
    let (d, p) = ompvar::core::ks_test(unb.reps(), pin.reps());
    assert!(d > 0.5, "KS d = {d}");
    assert!(p < 0.01, "KS p = {p}");
    // Straggler analysis: unbound threads accumulate migrations; pinned
    // threads never migrate.
    let unb_migr: u32 = unb.thread_stats.iter().map(|s| s.migrations).sum();
    let pin_migr: u32 = pin.thread_stats.iter().map(|s| s.migrations).sum();
    assert!(unb_migr > 0);
    assert_eq!(pin_migr, 0);
    assert_eq!(pin.thread_stats.len(), 32);
}
