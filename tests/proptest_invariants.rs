//! Property-based tests on the core data structures and invariants,
//! spanning the topology, simulator, runtime and statistics crates.

use ompvar::core::RunSet;
use ompvar::core::{percentile, Summary};
use ompvar::sim::prelude::{
    CorunClass, Program, Rng, SimParams, Simulator,
};
use ompvar::sim::sync::{LoopSchedule, LoopSpec};
use ompvar::topology::{assign_places, HwThreadId, MachineSpec, Place, Places, ProcBind};
use proptest::prelude::*;

/// Arbitrary small machines.
fn machines() -> impl Strategy<Value = MachineSpec> {
    (1usize..=2, 1usize..=4, 1usize..=16, 1usize..=2).prop_map(|(sockets, numa, cores, smt)| {
        MachineSpec {
            name: "prop".to_string(),
            sockets,
            numa_per_socket: numa,
            cores_per_numa: cores,
            smt,
            ..MachineSpec::generic(1, 1, 1)
        }
    })
}

proptest! {
    /// Every hardware thread maps to a valid core/NUMA/socket, and the
    /// mapping is consistent with the inverse enumeration.
    #[test]
    fn topology_mappings_are_total_and_consistent(m in machines()) {
        for hw in 0..m.n_hw_threads() {
            let hw = HwThreadId(hw);
            let core = m.core_of(hw);
            prop_assert!(core.0 < m.n_cores());
            prop_assert!(m.hw_threads_of_core(core).contains(&hw));
            let numa = m.numa_of(hw);
            prop_assert!(numa.0 < m.n_numa());
            prop_assert!(m.hw_threads_of_numa(numa).contains(&hw));
            let socket = m.socket_of(hw);
            prop_assert!(socket.0 < m.sockets);
        }
    }

    /// Distance is symmetric, zero only within a core, and bounded by 3.
    #[test]
    fn topology_distance_properties(m in machines(), a in 0usize..64, b in 0usize..64) {
        let n = m.n_hw_threads();
        let (a, b) = (HwThreadId(a % n), HwThreadId(b % n));
        let d = m.distance(a, b);
        prop_assert_eq!(d, m.distance(b, a));
        prop_assert!(d <= 3);
        prop_assert_eq!(d == 0, m.core_of(a) == m.core_of(b));
    }

    /// Place assignment never produces out-of-range CPUs and binds every
    /// thread (for binding policies).
    #[test]
    fn assignment_is_valid(
        m in machines(),
        n_threads in 1usize..40,
        bind_sel in 0u8..4,
    ) {
        let bind = match bind_sel {
            0 => ProcBind::False,
            1 => ProcBind::Close,
            2 => ProcBind::Spread,
            _ => ProcBind::Primary,
        };
        let a = assign_places(&m, &Places::Threads(None), bind, n_threads);
        prop_assert_eq!(a.n_threads(), n_threads);
        if bind == ProcBind::False {
            prop_assert!(!a.fully_bound() || n_threads == 0);
        } else {
            prop_assert!(a.fully_bound());
            for (_, p) in a.iter_bound() {
                for &hw in p.hw_threads() {
                    prop_assert!(hw.0 < m.n_hw_threads());
                }
            }
        }
    }

    /// The OMP_PLACES parser accepts all generated interval forms and
    /// produces the expected count.
    #[test]
    fn places_parser_interval_counts(lower in 0usize..64, len in 1usize..16, stride in 1usize..4) {
        let s = format!("{{{lower}:{len}:{stride}}}");
        let Places::Explicit(list) = Places::parse(&s).unwrap() else {
            return Err(TestCaseError::fail("expected explicit"));
        };
        prop_assert_eq!(list.len(), 1);
        prop_assert_eq!(list[0].len(), len);
        prop_assert_eq!(list[0].first(), HwThreadId(lower));
    }

    /// Replicated places: `{base:len}:count:stride` yields `count` places
    /// of `len` threads each, shifted by `stride`.
    #[test]
    fn places_parser_replication(base in 0usize..16, len in 1usize..8, count in 1usize..8, stride in 1usize..8) {
        let s = format!("{{{base}:{len}}}:{count}:{stride}");
        let Places::Explicit(list) = Places::parse(&s).unwrap() else {
            return Err(TestCaseError::fail("expected explicit"));
        };
        prop_assert_eq!(list.len(), count);
        for (k, p) in list.iter().enumerate() {
            prop_assert_eq!(p.first(), HwThreadId(base + k * stride));
        }
    }

    /// Work-shared loops partition the iteration space exactly once, for
    /// every schedule, chunking, batching and team size.
    #[test]
    fn loops_partition_exactly(
        total in 1u64..2000,
        n_threads in 1usize..9,
        chunk in 1u64..9,
        batch in 1u32..9,
        kind in 0u8..3,
    ) {
        let schedule = match kind {
            0 => LoopSchedule::Static { chunk },
            1 => LoopSchedule::Dynamic { chunk },
            _ => LoopSchedule::Guided { min_chunk: chunk },
        };
        let mut obj = ompvar::sim::sync::LoopObj::new(LoopSpec {
            schedule,
            total_iters: total,
            n_threads,
            body_cycles: 1.0,
            body_class: CorunClass::Latency,
            ordered_section_ns: None,
            batch,
            span_factor: 1.0,
        });
        // Drain with round-robin grabbing. The aggregated static fast
        // path (static, batch > 1) hands out interleaved chunk sets, so
        // its grabs are checked by count conservation; all other paths
        // must cover every iteration exactly once.
        let aggregated_static = kind == 0 && batch > 1;
        let mut gens = vec![u64::MAX; n_threads];
        let mut poss = vec![0u64; n_threads];
        let mut covered = vec![false; total as usize];
        let mut granted = 0u64;
        let mut done = vec![false; n_threads];
        while done.iter().any(|d| !d) {
            for r in 0..n_threads {
                if done[r] { continue; }
                match obj.grab(r, &mut gens[r], &mut poss[r]) {
                    Some(g) => {
                        prop_assert!(g.iters > 0);
                        granted += g.iters;
                        if !aggregated_static {
                            for i in g.first_iter..g.first_iter + g.iters {
                                prop_assert!(!covered[i as usize], "iter {} twice", i);
                                covered[i as usize] = true;
                            }
                        }
                    }
                    None => {
                        done[r] = true;
                        obj.observe_exhausted();
                    }
                }
            }
        }
        prop_assert_eq!(granted, total);
        if !aggregated_static {
            prop_assert!(covered.iter().all(|&c| c));
        }
    }

    /// Guided chunks never grow as the loop progresses.
    #[test]
    fn guided_chunks_monotone(total in 10u64..5000, n in 1usize..9, min_chunk in 1u64..6) {
        let mut obj = ompvar::sim::sync::LoopObj::new(LoopSpec {
            schedule: LoopSchedule::Guided { min_chunk },
            total_iters: total,
            n_threads: n,
            body_cycles: 1.0,
            body_class: CorunClass::Latency,
            ordered_section_ns: None,
            batch: 1,
            span_factor: 1.0,
        });
        let (mut gen, mut pos) = (u64::MAX, 0);
        let mut prev = u64::MAX;
        while let Some(g) = obj.grab(0, &mut gen, &mut pos) {
            prop_assert!(g.iters <= prev);
            prev = g.iters.max(min_chunk);
        }
    }

    /// Summary invariants: min ≤ median ≤ max, mean within [min, max],
    /// CV scale-invariant, normalization brackets 1.
    #[test]
    fn summary_invariants(xs in prop::collection::vec(0.001f64..1e6, 1..200), scale in 0.001f64..1000.0) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.median + 1e-9 && s.median <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 * s.max && s.mean <= s.max + 1e-9 * s.max);
        prop_assert!(s.norm_min() <= 1.0 + 1e-12);
        prop_assert!(s.norm_max() >= 1.0 - 1e-12);
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let s2 = Summary::of(&scaled);
        prop_assert!((s.cv - s2.cv).abs() < 1e-6 * (1.0 + s.cv));
    }

    /// Percentiles are monotone in `p` and bounded by the extremes.
    #[test]
    fn percentile_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..100), p1 in 0f64..100.0, p2 in 0f64..100.0) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let s = Summary::of(&xs);
        prop_assert!(a >= s.min - 1e-9 && b <= s.max + 1e-9);
    }

    /// Variance decomposition components are in [0,1] and sum to 1.
    #[test]
    fn variance_decomposition_sums(
        runs in prop::collection::vec(prop::collection::vec(0.1f64..1e4, 2..20), 2..10)
    ) {
        let rs = RunSet::new(runs);
        let (b, w) = rs.variance_decomposition();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&b));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&w));
        prop_assert!((b + w - 1.0).abs() < 1e-6);
    }

    /// The RNG's `below` is always in range, and forked streams with
    /// different labels/indices differ.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// A sterile simulated compute program's duration is exactly
    /// cycles/frequency, independent of the seed.
    #[test]
    fn sterile_compute_is_seed_independent(seed in any::<u64>(), mcycles in 1f64..50.0) {
        let m = MachineSpec::generic(1, 2, 1);
        let mut sim = Simulator::new(m, SimParams::sterile(), seed);
        let prog = Program::builder()
            .compute(mcycles * 1e6, CorunClass::Latency)
            .build();
        sim.spawn_user(0, prog, Some(Place::single(HwThreadId(0))));
        let rep = sim.run(ompvar::sim::time::SEC * 10).expect("sterile run completes");
        let expect = mcycles * 1e6 / 3.0; // ns at 3 GHz
        let got = rep.final_time as f64;
        prop_assert!((got - expect).abs() < 10.0, "got {} expect {}", got, expect);
    }
}
