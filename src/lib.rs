//! # ompvar — performance-variability analysis for an OpenMP-style runtime
//!
//! Facade crate re-exporting the whole `ompvar` workspace. See the README
//! for an overview and `DESIGN.md` for the system inventory.
//!
//! * [`topology`] — machine model, places, proc-bind affinity.
//! * [`sim`] — discrete-event simulator: OS scheduler, noise, DVFS, memory.
//! * [`rt`] — OpenMP-semantics runtime (native threads or simulated).
//! * [`epcc`] — EPCC `schedbench`/`syncbench` micro-benchmarks.
//! * [`stream`] — BabelStream memory-bandwidth benchmark.
//! * [`core`] — variability characterization: run protocol and statistics.
//! * [`harness`] — per-table/figure experiments reproducing the paper.

pub use ompvar_bench_epcc as epcc;
pub use ompvar_bench_stream as stream;
pub use ompvar_core as core;
pub use ompvar_harness as harness;
pub use ompvar_rt as rt;
pub use ompvar_sim as sim;
pub use ompvar_topology as topology;
