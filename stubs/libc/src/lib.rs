//! Offline stand-in for the subset of the `libc` crate this workspace
//! uses (see `stubs/README.md`). Only the CPU-affinity surface consumed
//! by `ompvar-rt`'s thread pinning is provided. The `extern "C"`
//! declarations bind to the system C library that `std` already links.

#![allow(non_camel_case_types, non_snake_case)]

/// C `int`.
pub type c_int = i32;
/// C `long` (LP64).
pub type c_long = i64;
/// POSIX process id.
pub type pid_t = i32;
/// C `size_t`.
pub type size_t = usize;

/// Number of CPUs representable in a `cpu_set_t` (glibc default).
pub const CPU_SETSIZE: c_int = 1024;
/// `sysconf` selector for the number of online processors (Linux).
pub const _SC_NPROCESSORS_ONLN: c_int = 84;

/// Fixed-size CPU bitset matching glibc's `cpu_set_t` layout
/// (1024 bits as an array of `unsigned long`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE as usize / 64],
}

/// Clear all CPUs in `set`.
///
/// # Safety
/// Safe in this implementation; `unsafe` to match the libc crate's
/// signature so call sites are source-compatible.
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; CPU_SETSIZE as usize / 64];
}

/// Add `cpu` to `set` (out-of-range CPUs are ignored, as in glibc).
///
/// # Safety
/// Safe in this implementation; see [`CPU_ZERO`].
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / 64] |= 1 << (cpu % 64);
    }
}

/// Whether `cpu` is in `set`.
///
/// # Safety
/// Safe in this implementation; see [`CPU_ZERO`].
pub unsafe fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / 64] & (1 << (cpu % 64)) != 0
}

extern "C" {
    /// Bind `pid` (0 = calling thread) to the CPUs in `cpuset`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    /// Read back the affinity mask of `pid` (0 = calling thread).
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *mut cpu_set_t) -> c_int;
    /// POSIX `sysconf`.
    pub fn sysconf(name: c_int) -> c_long;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_roundtrip() {
        unsafe {
            let mut set: cpu_set_t = std::mem::zeroed();
            CPU_ZERO(&mut set);
            assert!(!CPU_ISSET(0, &set));
            CPU_SET(0, &mut set);
            CPU_SET(65, &mut set);
            CPU_SET(5000, &mut set); // ignored, out of range
            assert!(CPU_ISSET(0, &set));
            assert!(CPU_ISSET(65, &set));
            assert!(!CPU_ISSET(1, &set));
            assert!(!CPU_ISSET(5000, &set));
        }
    }

    #[test]
    fn sysconf_reports_processors() {
        let n = unsafe { sysconf(_SC_NPROCESSORS_ONLN) };
        assert!(n >= 1, "at least one online CPU, got {n}");
    }
}
