//! Offline stand-in for the subset of `parking_lot` this workspace uses
//! (see `stubs/README.md`): a `Mutex` with parking_lot's non-poisoning
//! API, backed by `std::sync::Mutex`. Poison from a panicking holder is
//! swallowed, exactly as parking_lot behaves.

use std::sync::TryLockError;

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 7; // parking_lot semantics: no poison error
        assert_eq!(*m.lock(), 7);
    }
}
