//! Offline stand-in for the subset of `criterion` this workspace uses
//! (see `stubs/README.md`). It really runs and times the benchmark
//! closures — a fixed warm-up pass followed by `sample_size` timed
//! samples — and prints mean/min/max per benchmark, so `cargo bench`
//! remains useful for coarse regression checks. No statistics engine,
//! no HTML reports, no CLI argument parsing.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the std implementation).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub's run length is governed
    /// by `sample_size` alone.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility (see [`Criterion::measurement_time`]).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    println!(
        "{id:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({n} samples)",
        n = b.samples.len()
    );
}

/// Declare a group of benchmark functions, optionally with a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench-target `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("stub/smoke", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut seen = Vec::new();
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(8));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| seen.push(n))
        });
        g.finish();
        assert_eq!(seen.len(), 3); // warm-up + 2 samples
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
