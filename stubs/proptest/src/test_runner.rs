//! Deterministic per-case RNG and the property-failure error type.

/// Error returned by a failing property body (via `prop_assert!` or an
/// explicit `return Err(TestCaseError::fail(..))`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Real-proptest spelling for rejecting a case; the stub treats it
    /// as a failure so silent mass-rejection cannot hide a broken test.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Splitmix64 generator seeded from (test name, case index) only, so
/// every run of the suite sees the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one case of one named property.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range_and_unit_in_01() {
        let mut r = TestRng::for_case("x", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
