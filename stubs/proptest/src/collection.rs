//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s with element strategy `S` and a length drawn
/// from a half-open range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// A `Vec` strategy: each value has a length in `size` and elements
/// drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.end > size.start, "empty vec size range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_vecs_generate() {
        let mut rng = TestRng::for_case("vec", 0);
        let s = vec(vec(0u64..10, 1..4), 2..5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for inner in v {
                assert!((1..4).contains(&inner.len()));
                assert!(inner.iter().all(|&x| x < 10));
            }
        }
    }
}
