//! Offline stand-in for the subset of `proptest` this workspace uses
//! (see `stubs/README.md`).
//!
//! The [`proptest!`] macro runs each property over a fixed sweep of
//! deterministically seeded cases (no shrinking). The per-case RNG is
//! derived only from the test name and the case index, so failures are
//! reproducible run-to-run and machine-to-machine. The whole sweep runs
//! even after a failure; the panic then reports how many cases failed
//! and re-derives the *lowest-index* failing case's drawn values — the
//! closest thing to a minimal counterexample a fixed sweep can offer.
//!
//! Supported strategy surface: integer/float range strategies
//! (`lo..hi`, `lo..=hi`), tuples of strategies up to arity 6,
//! [`Strategy::prop_map`], [`collection::vec`], and [`any`] for types
//! implementing [`Arbitrary`].

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{TestCaseError, TestRng};

/// The imports the real crate's prelude provides, narrowed to what this
/// workspace consumes. Includes `prop` as an alias of the crate root so
/// `prop::collection::vec(..)` resolves.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Assert a condition inside a `proptest!` property; on failure the
/// property returns a [`TestCaseError`] naming the condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over a deterministic sweep of
/// generated cases. All cases run even after a failure; the panic
/// message reports the failure count and the lowest-index failing case
/// together with its re-derived drawn values.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                const CASES: u64 = 64;
                let mut failures: ::std::vec::Vec<(u64, $crate::test_runner::TestCaseError)> =
                    ::std::vec::Vec::new();
                for case in 0..CASES {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        failures.push((case, e));
                    }
                }
                if let ::core::option::Option::Some((case, err)) = failures.first() {
                    // Re-derive the drawn values of the lowest-index
                    // failing case from its per-case RNG so the report
                    // shows the concrete counterexample.
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), *case);
                    let mut drawn = ::std::string::String::new();
                    $(
                        let v = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        drawn.push_str(&::std::format!(
                            "  {} = {:?}\n",
                            stringify!($arg),
                            v
                        ));
                    )*
                    panic!(
                        "property {} failed at {} of {} cases; minimal failing case {}:\n{}  {}",
                        stringify!($name),
                        failures.len(),
                        CASES,
                        case,
                        drawn,
                        err
                    );
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u64..=4, z in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn map_and_tuple_compose(p in (0u32..5, 10u32..15).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..20).contains(&p), "sum out of range: {}", p);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 100).count(), 0);
        }

        #[test]
        fn any_is_exercised(x in any::<u64>()) {
            let _ = x;
        }
    }

    // Declared WITHOUT #[test]: invoked below under catch_unwind to
    // inspect the failure report.
    proptest! {
        fn always_fails_for_reporting(x in 5u64..6, y in 0u32..100) {
            let _ = y;
            prop_assert!(x > 100, "x too small: {}", x);
        }
    }

    /// A failing property reports the full sweep's failure count and
    /// the lowest-index case with its re-derived drawn values.
    #[test]
    fn failure_report_names_minimal_case_and_values() {
        let err = std::panic::catch_unwind(always_fails_for_reporting)
            .expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic payload");
        assert!(msg.contains("failed at 64 of 64 cases"), "{msg}");
        assert!(msg.contains("minimal failing case 0"), "{msg}");
        // x's range is a single value, so the re-derived draw is exact.
        assert!(msg.contains("x = 5"), "{msg}");
        assert!(msg.contains("y = "), "{msg}");
        assert!(msg.contains("x too small: 5"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| crate::test_runner::TestRng::for_case("t", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::test_runner::TestRng::for_case("t", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
