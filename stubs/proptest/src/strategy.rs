//! The `Strategy` trait and the combinators this workspace uses:
//! range strategies, tuples, and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Scalars that can be drawn uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]` when `inclusive`.
    fn sample(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self {
                let (lo64, hi64) = (lo as u64, hi as u64);
                let span = if inclusive { hi64 - lo64 + 1 } else { hi64 - lo64 };
                assert!(span > 0, "empty range strategy");
                (lo64 + rng.below(span)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample(lo: Self, hi: Self, _inclusive: bool, rng: &mut TestRng) -> Self {
        assert!(hi > lo, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_endpoints_correctly() {
        let mut rng = TestRng::for_case("ranges", 0);
        let mut seen_max_excl = false;
        for _ in 0..500 {
            let v = (0u8..3).generate(&mut rng);
            assert!(v < 3);
            let w = (0u8..=2).generate(&mut rng);
            assert!(w <= 2);
            seen_max_excl |= v == 2;
        }
        assert!(seen_max_excl, "range sampling never reached top value");
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::for_case("map", 0);
        let v = (1usize..4).prop_map(|x| x * 10).generate(&mut rng);
        assert!([10, 20, 30].contains(&v));
    }
}
