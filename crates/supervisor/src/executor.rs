//! Fault-tolerant parallel campaign executor.
//!
//! A campaign's units are sharded across a work-stealing pool of N
//! workers. Each worker runs its units through its **own**
//! [`Supervisor`] journaling into its **own** per-shard checkpoint
//! manifest (see [`crate::checkpoint::shard_path`]), so concurrent
//! appenders never contend on one file and a `kill -9` at any instant
//! tears at most one line of one shard — which
//! [`Manifest::open_resume`]'s torn-tail recovery then drops. On resume
//! the shard manifests are merged deterministically
//! ([`crate::checkpoint::resume_shards`]) and completed units are
//! replayed before dispatch, so a resumed report is byte-identical
//! regardless of worker count, crash history, or steal schedule.
//!
//! Robustness machinery on top of the pool:
//!
//! - **Watchdog**: one thread tracking a wall-clock deadline per running
//!   attempt. A reaped attempt surfaces as a transient
//!   [`UnitError::timeout`] *inside* the supervise closure, so the
//!   existing classifier / seeded-backoff / quarantine path applies
//!   unchanged. Rust offers no way to cancel arbitrary compute, so a
//!   timed attempt runs on a detached thread; a genuinely hung one is
//!   leaked (it dies with the process) while the campaign moves on.
//! - **Panic isolation**: unit panics are caught per-attempt and become
//!   [`UnitError::from_panic`]. A panic *outside* the attempt sandbox
//!   (executor or journaling bug) poisons only that worker: its queue
//!   stays in the shared deques for the others to drain, and its
//!   in-flight unit is re-run inline on the control lane after the pool
//!   joins.
//! - **Interrupt propagation**: a shared cancel flag (the CLI's SIGINT
//!   flag) stops every worker at the next unit boundary; shard manifests
//!   are flushed per-append, so everything completed before the
//!   interrupt is already durable when the campaign returns.
//!
//! Every worker is one lane of the merged Chrome trace (export with
//! `chrome_trace_lanes(…, "worker")`): attempts, retries, timeouts,
//! steals, and checkpoint flushes per worker, on a shared time base.

use crate::checkpoint::{Entry, Manifest, RetryRecord, UnitStatus};
use crate::classify::Transience;
use crate::supervisor::{Checkpointable, Outcome, Supervisor, SupervisorConfig, UnitError};
use ompvar_obs::{InstantKind, Trace, TraceEvent};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Resolve a `--jobs` request: `0` means auto-detect (all available
/// hardware parallelism), anything else is taken literally.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Executor policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Worker count (already resolved; clamped to at least 1).
    pub jobs: usize,
    /// Per-attempt wall-clock deadline enforced by the watchdog;
    /// `None` disables reaping.
    pub unit_timeout: Option<Duration>,
    /// Retry / backoff / seed policy shared by every worker.
    pub supervisor: SupervisorConfig,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            jobs: resolve_jobs(0),
            unit_timeout: None,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// The closure a unit runs: attempt number in, result (or classified
/// failure) out. `Arc` because a timed attempt executes on a detached
/// thread that must own its callable.
pub type UnitFn<R> = dyn Fn(u32) -> Result<R, UnitError> + Send + Sync;

/// One schedulable campaign unit.
pub struct ExecUnit<R> {
    /// Journal / replay key; must be unique within the campaign.
    pub name: String,
    /// The work.
    pub run: Arc<UnitFn<R>>,
}

impl<R> ExecUnit<R> {
    /// Wrap a closure as a named unit.
    pub fn new(
        name: impl Into<String>,
        run: impl Fn(u32) -> Result<R, UnitError> + Send + Sync + 'static,
    ) -> ExecUnit<R> {
        ExecUnit { name: name.into(), run: Arc::new(run) }
    }
}

impl<R> std::fmt::Debug for ExecUnit<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecUnit").field("name", &self.name).finish_non_exhaustive()
    }
}

/// Terminal state of one unit, tagged with scheduling provenance.
#[derive(Debug)]
pub struct UnitResult<R> {
    /// Position in the campaign's canonical unit order.
    pub index: usize,
    /// Unit name.
    pub name: String,
    /// What happened.
    pub outcome: Outcome<R>,
    /// Worker that ran it; `None` when replayed from a checkpoint or
    /// recovered inline after a worker poisoning.
    pub worker: Option<usize>,
    /// Whether the unit was stolen from another worker's queue.
    pub stolen: bool,
    /// Wall-clock spent supervising the unit (all attempts + backoff);
    /// zero for checkpoint replays.
    pub duration: Duration,
}

/// Per-unit completion callback: invoked with each unit's terminal
/// result the moment it is reached (replay, worker completion, or
/// inline recovery). Called from worker threads, so it must be `Sync`;
/// with one worker, calls arrive in execution order.
pub type Progress<'a, R> = Option<&'a (dyn Fn(&UnitResult<R>) + Sync)>;

/// Everything one campaign execution produced.
#[derive(Debug)]
pub struct CampaignRun<R> {
    /// Finished units in canonical (submission) order. On an interrupted
    /// run, units that never started are absent.
    pub results: Vec<UnitResult<R>>,
    /// Merged supervisor trace: one lane per worker, shared time base.
    pub trace: Trace,
    /// Whether the cancel flag stopped the campaign early.
    pub interrupted: bool,
    /// Workers lost to a panic outside the per-attempt sandbox.
    pub poisoned_workers: usize,
    /// Units that ran on a worker other than the one they were
    /// initially dealt to.
    pub steals: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A worker that panicked while holding a deque/slot lock must not
    // cascade: the protected data (plain indices) is always valid.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

struct Watch {
    id: u64,
    deadline: Instant,
    fire: Option<Box<dyn FnOnce() + Send>>,
}

struct WatchdogState {
    watches: Vec<Watch>,
    next_id: u64,
    shutdown: bool,
}

/// One thread enforcing wall-clock deadlines for every in-flight
/// attempt. Registration hands over a closure that is fired at most
/// once, when the deadline passes before [`Watchdog::cancel`].
pub struct Watchdog {
    state: Arc<(Mutex<WatchdogState>, Condvar)>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Start the watchdog thread.
    pub fn spawn() -> Watchdog {
        let state = Arc::new((
            Mutex::new(WatchdogState { watches: Vec::new(), next_id: 0, shutdown: false }),
            Condvar::new(),
        ));
        let thread_state = Arc::clone(&state);
        let handle = thread::Builder::new()
            .name("ompvar-watchdog".into())
            .spawn(move || {
                let (m, cv) = &*thread_state;
                let mut g = lock(m);
                loop {
                    if g.shutdown {
                        return;
                    }
                    let now = Instant::now();
                    let mut fired: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
                    g.watches.retain_mut(|w| {
                        if w.deadline <= now {
                            fired.extend(w.fire.take());
                            false
                        } else {
                            true
                        }
                    });
                    if !fired.is_empty() {
                        // Fire outside the lock: the closures take other
                        // locks (result slots) and must not nest inside
                        // ours.
                        drop(g);
                        for f in fired {
                            f();
                        }
                        g = lock(m);
                        continue;
                    }
                    g = match g.watches.iter().map(|w| w.deadline).min() {
                        Some(d) => {
                            cv.wait_timeout(g, d.saturating_duration_since(now))
                                .unwrap_or_else(|p| p.into_inner())
                                .0
                        }
                        None => cv.wait(g).unwrap_or_else(|p| p.into_inner()),
                    };
                }
            })
            .expect("spawn watchdog thread");
        Watchdog { state, handle: Some(handle) }
    }

    /// Arm a deadline. Returns a handle for [`Watchdog::cancel`].
    pub fn register(&self, deadline: Instant, fire: Box<dyn FnOnce() + Send>) -> u64 {
        let (m, cv) = &*self.state;
        let mut g = lock(m);
        let id = g.next_id;
        g.next_id += 1;
        g.watches.push(Watch { id, deadline, fire: Some(fire) });
        cv.notify_all();
        id
    }

    /// Disarm a deadline (no-op if it already fired).
    pub fn cancel(&self, id: u64) {
        let (m, cv) = &*self.state;
        lock(m).watches.retain(|w| w.id != id);
        cv.notify_all();
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let (m, cv) = &*self.state;
        lock(m).shutdown = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Attempt execution
// ---------------------------------------------------------------------

/// Run one attempt with panic isolation and (optionally) a watchdog
/// deadline. Without a timeout the attempt runs on the calling thread;
/// with one it runs on a detached thread whose result races the
/// watchdog into a first-writer-wins slot. A reaped attempt's thread is
/// leaked deliberately — see the module docs.
fn run_attempt<R: Send + 'static>(
    run: &Arc<UnitFn<R>>,
    attempt: u32,
    timeout: Option<Duration>,
    watchdog: &Watchdog,
    name: &str,
) -> Result<R, UnitError> {
    let Some(limit) = timeout else {
        return catch_unwind(AssertUnwindSafe(|| run(attempt)))
            .unwrap_or_else(|p| Err(UnitError::from_panic(panic_message(p.as_ref()))));
    };

    type Slot<R> = Arc<(Mutex<Option<Result<R, UnitError>>>, Condvar)>;
    let slot: Slot<R> = Arc::new((Mutex::new(None), Condvar::new()));

    let reap_slot = Arc::clone(&slot);
    let reap_msg = format!(
        "unit '{name}' attempt {attempt} exceeded its {:.3}s deadline; reaped by watchdog",
        limit.as_secs_f64()
    );
    let watch = watchdog.register(
        Instant::now() + limit,
        Box::new(move || {
            let (m, cv) = &*reap_slot;
            let mut g = lock(m);
            if g.is_none() {
                *g = Some(Err(UnitError::timeout(reap_msg)));
                cv.notify_all();
            }
        }),
    );

    let work_slot = Arc::clone(&slot);
    let work = Arc::clone(run);
    let _detached = thread::Builder::new()
        .name(format!("ompvar-attempt-{name}"))
        .spawn(move || {
            let res = catch_unwind(AssertUnwindSafe(|| work(attempt)))
                .unwrap_or_else(|p| Err(UnitError::from_panic(panic_message(p.as_ref()))));
            let (m, cv) = &*work_slot;
            let mut g = lock(m);
            if g.is_none() {
                *g = Some(res);
                cv.notify_all();
            }
        })
        .expect("spawn attempt thread");

    let (m, cv) = &*slot;
    let mut g = lock(m);
    while g.is_none() {
        g = cv.wait(g).unwrap_or_else(|p| p.into_inner());
    }
    watchdog.cancel(watch);
    g.take().expect("slot filled")
}

// ---------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------

/// Pop the next unit for worker `w`: own queue front first, then steal
/// from the back of the other workers' queues.
fn next_unit(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<(usize, bool)> {
    if let Some(i) = lock(&deques[w]).pop_front() {
        return Some((i, false));
    }
    for off in 1..deques.len() {
        let victim = (w + off) % deques.len();
        if let Some(i) = lock(&deques[victim]).pop_back() {
            return Some((i, true));
        }
    }
    None
}

struct WorkerOut<R> {
    results: Vec<UnitResult<R>>,
    trace: Trace,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<R>(
    w: usize,
    cfg: &ExecutorConfig,
    manifest: Option<Manifest>,
    units: &[ExecUnit<R>],
    deques: &[Mutex<VecDeque<usize>>],
    in_flight: &[Mutex<Option<usize>>],
    watchdog: &Watchdog,
    cancel: Option<&AtomicBool>,
    epoch: Instant,
    progress: Progress<'_, R>,
) -> WorkerOut<R>
where
    R: Checkpointable + Send + 'static,
{
    let mut sup = Supervisor::new(cfg.supervisor).with_lane(w as u32).with_t0(epoch);
    if let Some(m) = manifest {
        sup = sup.with_manifest(m);
    }
    let mut results = Vec::new();
    loop {
        if cancel.map(|c| c.load(Ordering::SeqCst)).unwrap_or(false) {
            break;
        }
        let Some((idx, stolen)) = next_unit(deques, w) else { break };
        if stolen {
            sup.emit_instant(InstantKind::SupervisorSteal);
        }
        *lock(&in_flight[w]) = Some(idx);
        let unit = &units[idx];
        let run = Arc::clone(&unit.run);
        let timeout = cfg.unit_timeout;
        let t0 = Instant::now();
        let supervised = catch_unwind(AssertUnwindSafe(|| {
            sup.supervise(&unit.name, |attempt| {
                run_attempt(&run, attempt, timeout, watchdog, &unit.name)
            })
        }));
        match supervised {
            Ok(outcome) => {
                *lock(&in_flight[w]) = None;
                let result = UnitResult {
                    index: idx,
                    name: unit.name.clone(),
                    outcome,
                    worker: Some(w),
                    stolen,
                    duration: t0.elapsed(),
                };
                if let Some(p) = progress {
                    p(&result);
                }
                results.push(result);
            }
            // A panic *outside* the attempt sandbox: this worker is
            // poisoned. Stop taking work — the shared deques let the
            // others drain our queue, and the still-set in-flight slot
            // tells the main thread which unit to recover.
            Err(_) => break,
        }
    }
    WorkerOut { results, trace: sup.take_trace() }
}

/// Rebuild a journaled terminal state without re-running the unit.
/// `None` marks an unreadable payload — the unit then re-runs.
fn replay_entry<R: Checkpointable>(e: &Entry) -> Option<Outcome<R>> {
    match e.status {
        UnitStatus::Ok => e.payload.as_ref().and_then(R::from_ckpt).map(|value| {
            Outcome::Completed {
                value,
                attempts: e.attempts,
                retries: e.retries.clone(),
                from_checkpoint: true,
            }
        }),
        UnitStatus::Quarantined => Some(Outcome::Quarantined {
            attempts: e.attempts,
            retries: e.retries.clone(),
            from_checkpoint: true,
        }),
    }
}

/// Run a campaign through the work-stealing pool.
///
/// `manifests` are the per-shard journals (from
/// [`crate::checkpoint::create_shards`] / `resume_shards`), one per
/// worker; `None` runs unjournaled. `replay` is the deterministic merge
/// of previously journaled entries — matching units are replayed before
/// dispatch. `cancel` is polled at every unit boundary (the CLI passes
/// its SIGINT flag). `progress` is invoked with each unit's terminal
/// result the moment it is reached — from worker threads, so streamed
/// output should lock stdout per call.
///
/// Results come back in canonical (submission) order regardless of the
/// steal schedule, so downstream reports are deterministic.
pub fn run_campaign<R>(
    cfg: &ExecutorConfig,
    units: &[ExecUnit<R>],
    manifests: Option<Vec<Manifest>>,
    replay: &[Entry],
    cancel: Option<&AtomicBool>,
    progress: Progress<'_, R>,
) -> CampaignRun<R>
where
    R: Checkpointable + Send + 'static,
{
    let jobs = cfg.jobs.max(1);
    let epoch = Instant::now();
    let n = units.len();
    let mut control = Supervisor::new(cfg.supervisor).with_lane(0).with_t0(epoch);

    // Replay pass: decode journaled terminal states before any dispatch,
    // on the control lane. Unreadable payloads fall through and re-run.
    let mut slots: Vec<Option<UnitResult<R>>> = (0..n).map(|_| None).collect();
    for (idx, u) in units.iter().enumerate() {
        if let Some(e) = replay.iter().find(|e| e.name == u.name) {
            match replay_entry::<R>(e) {
                Some(outcome) => {
                    control.emit_instant(InstantKind::SupervisorResume);
                    let result = UnitResult {
                        index: idx,
                        name: u.name.clone(),
                        outcome,
                        worker: None,
                        stolen: false,
                        duration: Duration::ZERO,
                    };
                    if let Some(p) = progress {
                        p(&result);
                    }
                    slots[idx] = Some(result);
                }
                None => eprintln!(
                    "warning: checkpoint payload for {} is unreadable; re-running",
                    u.name
                ),
            }
        }
    }

    // Deal the pending units round-robin; stealing rebalances from there.
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    let mut next_worker = 0;
    for (idx, slot) in slots.iter().enumerate() {
        if slot.is_none() {
            lock(&deques[next_worker]).push_back(idx);
            next_worker = (next_worker + 1) % jobs;
        }
    }

    let mut shard_manifests: Vec<Option<Manifest>> = match manifests {
        Some(v) => v.into_iter().map(Some).collect(),
        None => Vec::new(),
    };
    shard_manifests.resize_with(jobs, || None);
    shard_manifests.truncate(jobs);

    let in_flight: Vec<Mutex<Option<usize>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let watchdog = Watchdog::spawn();

    let units_ref = units;
    let deques_ref = &deques;
    let in_flight_ref = &in_flight;
    let watchdog_ref = &watchdog;

    let mut outs: Vec<WorkerOut<R>> = Vec::with_capacity(jobs);
    thread::scope(|s| {
        let handles: Vec<_> = shard_manifests
            .drain(..)
            .enumerate()
            .map(|(w, manifest)| {
                s.spawn(move || {
                    worker_loop(
                        w,
                        cfg,
                        manifest,
                        units_ref,
                        deques_ref,
                        in_flight_ref,
                        watchdog_ref,
                        cancel,
                        epoch,
                        progress,
                    )
                })
            })
            .collect();
        for h in handles {
            // A worker thread that dies before returning (it should not:
            // the loop catches panics) is treated like a poisoning — its
            // in-flight slot stays set and is recovered below.
            if let Ok(out) = h.join() {
                outs.push(out);
            }
        }
    });

    let mut events: Vec<TraceEvent> = Vec::new();
    let mut steals = 0;
    for mut out in outs {
        for r in out.results.drain(..) {
            if r.stolen {
                steals += 1;
            }
            let idx = r.index;
            slots[idx] = Some(r);
        }
        events.append(&mut out.trace.events);
    }

    let interrupted = cancel.map(|c| c.load(Ordering::SeqCst)).unwrap_or(false);

    // Recovery pass: units a poisoned worker had in flight, plus any
    // queue no surviving worker drained, re-run inline on the control
    // lane (unjournaled — they will simply re-run again on a resume).
    let mut poisoned = 0;
    let mut recover: Vec<usize> = Vec::new();
    for slot in &in_flight {
        if let Some(idx) = lock(slot).take() {
            poisoned += 1;
            recover.push(idx);
        }
    }
    if !interrupted {
        for d in &deques {
            recover.extend(lock(d).drain(..));
        }
    }
    recover.sort_unstable();
    for idx in recover {
        let u = &units[idx];
        eprintln!(
            "warning: worker poisoned while running '{}'; re-running on the control lane",
            u.name
        );
        let run = Arc::clone(&u.run);
        let timeout = cfg.unit_timeout;
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            control.supervise(&u.name, |attempt| {
                run_attempt(&run, attempt, timeout, &watchdog, &u.name)
            })
        }))
        .unwrap_or_else(|p| Outcome::Quarantined {
            attempts: 1,
            retries: vec![RetryRecord {
                attempt: 0,
                error: format!(
                    "panic outside the attempt sandbox: {}",
                    panic_message(p.as_ref())
                ),
                transience: Transience::Permanent,
                backoff_ms: 0,
            }],
            from_checkpoint: false,
        });
        let result = UnitResult {
            index: idx,
            name: u.name.clone(),
            outcome,
            worker: None,
            stolen: false,
            duration: t0.elapsed(),
        };
        if let Some(p) = progress {
            p(&result);
        }
        slots[idx] = Some(result);
    }

    events.append(&mut control.take_trace().events);
    // Stable by-time sort: each lane's events are already in emission
    // order on a shared clock, so per-lane order (what consumers rely
    // on) survives the merge.
    events.sort_by_key(|e| e.time_ns);

    CampaignRun {
        results: slots.into_iter().flatten().collect(),
        trace: Trace::new(events),
        interrupted,
        poisoned_workers: poisoned,
        steals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::BackoffCfg;
    use crate::checkpoint::{create_shards, resume_shards, Header};
    use ompvar_obs::json::Value;
    use std::sync::atomic::AtomicUsize;

    fn cfg(jobs: usize) -> ExecutorConfig {
        ExecutorConfig {
            jobs,
            unit_timeout: None,
            supervisor: SupervisorConfig { seed: 11, sleep: false, ..Default::default() },
        }
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("ompvar_exec_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn value_units(n: usize) -> Vec<ExecUnit<f64>> {
        (0..n)
            .map(|i| ExecUnit::new(format!("u{i}"), move |_| Ok(i as f64 * 1.5)))
            .collect()
    }

    fn digest<R: Clone + std::fmt::Debug>(run: &CampaignRun<R>) -> Vec<(usize, String, u32)> {
        run.results
            .iter()
            .map(|r| (r.index, r.name.clone(), r.outcome.attempts()))
            .collect()
    }

    #[test]
    fn results_come_back_in_canonical_order_any_job_count() {
        let units = value_units(17);
        let seq = run_campaign(&cfg(1), &units, None, &[], None, None);
        for jobs in [2, 4, 8] {
            let par = run_campaign(&cfg(jobs), &units, None, &[], None, None);
            assert_eq!(digest(&seq), digest(&par), "jobs={jobs}");
            for (r, i) in par.results.iter().zip(0..) {
                assert_eq!(r.index, i);
                match &r.outcome {
                    Outcome::Completed { value, .. } => assert_eq!(*value, i as f64 * 1.5),
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn watchdog_reaps_hang_then_retry_succeeds() {
        let mut c = cfg(2);
        c.unit_timeout = Some(Duration::from_millis(30));
        let units = vec![
            ExecUnit::new("hang-once", |attempt: u32| {
                if attempt == 0 {
                    thread::sleep(Duration::from_millis(500));
                }
                Ok(7.0f64)
            }),
            ExecUnit::new("fine", |_| Ok(1.0f64)),
        ];
        let t0 = Instant::now();
        let run = run_campaign(&c, &units, None, &[], None, None);
        assert!(t0.elapsed() < Duration::from_secs(5), "campaign must not hang");
        let hang = &run.results[0];
        match &hang.outcome {
            Outcome::Completed { attempts, retries, .. } => {
                assert_eq!(*attempts, 2, "one reap, one clean attempt");
                assert!(retries[0].error.contains("reaped by watchdog"), "{retries:?}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(run.trace.instants_of(InstantKind::SupervisorTimeout), 1);
    }

    #[test]
    fn persistent_hang_is_quarantined_not_fatal() {
        let mut c = cfg(1);
        c.unit_timeout = Some(Duration::from_millis(20));
        c.supervisor.max_retries = 1;
        c.supervisor.backoff = BackoffCfg { base_ms: 1, cap_ms: 2, ..Default::default() };
        let units = vec![ExecUnit::new("wedge", |_| -> Result<f64, UnitError> {
            thread::sleep(Duration::from_millis(400));
            Ok(0.0)
        })];
        let run = run_campaign(&c, &units, None, &[], None, None);
        match &run.results[0].outcome {
            Outcome::Quarantined { attempts, retries, .. } => {
                assert_eq!(*attempts, 2);
                assert!(retries.iter().all(|r| r.error.contains("reaped by watchdog")));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(run.trace.instants_of(InstantKind::SupervisorTimeout), 2);
    }

    #[test]
    fn unit_panics_are_isolated_into_the_retry_path() {
        let units = vec![ExecUnit::new("panics-once", |attempt: u32| {
            if attempt == 0 {
                panic!("deadlock detected in simulated barrier");
            }
            Ok(3.0f64)
        })];
        let run = run_campaign(&cfg(2), &units, None, &[], None, None);
        match &run.results[0].outcome {
            Outcome::Completed { attempts, retries, .. } => {
                assert_eq!(*attempts, 2);
                assert!(retries[0].error.starts_with("panic:"), "{retries:?}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(run.poisoned_workers, 0);
    }

    /// A panic *outside* the attempt sandbox (here: a poisoned
    /// serialization) kills only that worker; the unit it held is
    /// recovered inline and the campaign still completes everything.
    #[test]
    fn poisoned_worker_queue_is_reclaimed() {
        static ARMED: AtomicBool = AtomicBool::new(false);
        #[derive(Debug, Clone)]
        struct Poison(f64);
        impl Checkpointable for Poison {
            fn to_ckpt(&self) -> Value {
                if ARMED.swap(false, Ordering::SeqCst) {
                    panic!("journal serialization poisoned");
                }
                Value::Num(self.0)
            }
            fn from_ckpt(v: &Value) -> Option<Self> {
                v.as_f64().map(Poison)
            }
        }
        ARMED.store(true, Ordering::SeqCst);
        let units: Vec<ExecUnit<Poison>> = (0..6)
            .map(|i| ExecUnit::new(format!("p{i}"), move |_| Ok(Poison(i as f64))))
            .collect();
        let run = run_campaign(&cfg(2), &units, None, &[], None, None);
        assert_eq!(run.poisoned_workers, 1);
        assert_eq!(run.results.len(), 6, "every unit still reaches a terminal state");
        for (i, r) in run.results.iter().enumerate() {
            match &r.outcome {
                Outcome::Completed { value, .. } => assert_eq!(value.0, i as f64),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn stealing_rebalances_a_skewed_deal() {
        let units: Vec<ExecUnit<f64>> = (0..8)
            .map(|i| {
                ExecUnit::new(format!("s{i}"), move |_| {
                    // Unit 0 pins worker 0 long enough that worker 1
                    // must steal the rest of worker 0's queue.
                    if i == 0 {
                        thread::sleep(Duration::from_millis(80));
                    }
                    Ok(i as f64)
                })
            })
            .collect();
        let run = run_campaign(&cfg(2), &units, None, &[], None, None);
        assert_eq!(run.results.len(), 8);
        assert!(run.steals >= 1, "expected at least one steal, got {}", run.steals);
        assert_eq!(
            run.trace.instants_of(InstantKind::SupervisorSteal),
            run.steals,
            "steal instants mirror the steal count"
        );
    }

    #[test]
    fn sharded_journal_roundtrip_replays_without_rerunning() {
        let dir = tmpdir("roundtrip");
        let header = Header {
            seed: 11,
            fast: true,
            targets: (0..6).map(|i| format!("u{i}")).collect(),
        };
        let ran = Arc::new(AtomicUsize::new(0));
        let units: Vec<ExecUnit<f64>> = (0..6)
            .map(|i| {
                let ran = Arc::clone(&ran);
                ExecUnit::new(format!("u{i}"), move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    Ok(i as f64)
                })
            })
            .collect();
        let shards = create_shards(&dir, "m", &header, 3).unwrap();
        let first = run_campaign(&cfg(3), &units, Some(shards), &[], None, None);
        assert_eq!(first.results.len(), 6);
        assert_eq!(ran.load(Ordering::SeqCst), 6);

        // Resume with a different worker count: everything replays, the
        // closures never run again, and the values survive the journal.
        let (shards, merged) = resume_shards(&dir, "m", &header, 1).unwrap();
        assert_eq!(merged.len(), 6);
        let second = run_campaign(&cfg(1), &units, Some(shards), &merged, None, None);
        assert_eq!(ran.load(Ordering::SeqCst), 6, "no unit re-ran");
        assert_eq!(second.results.len(), 6);
        for (i, r) in second.results.iter().enumerate() {
            assert!(r.outcome.from_checkpoint());
            match &r.outcome {
                Outcome::Completed { value, .. } => assert_eq!(*value, i as f64),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(
            second.trace.instants_of(InstantKind::SupervisorResume),
            6
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_flag_stops_workers_at_unit_boundaries() {
        let cancel = AtomicBool::new(true);
        let units = value_units(10);
        let run = run_campaign(&cfg(4), &units, None, &[], Some(&cancel), None);
        assert!(run.interrupted);
        assert!(run.results.is_empty(), "pre-set cancel: nothing starts");
    }

    #[test]
    fn resolve_jobs_auto_detects_on_zero() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}
