//! The `ompvar-checkpoint/1` manifest: a JSONL journal of completed
//! campaign units, crash-safe at every instant so a `kill -9` leaves a
//! loadable manifest.
//!
//! Line 1 is the campaign header (seed, fast flag, target list); every
//! further line is one finished unit — its status (`ok`/`quarantined`),
//! attempt count, the retry ledger (error text, classification, backoff
//! delay), and for successful units the checkpointed result payload that
//! `--resume` replays instead of re-running the unit. Serialization goes
//! through [`ompvar_obs::json`]. The header is staged via
//! temp-file+rename ([`crate::fsio::atomic_write`]); entries are then
//! *appended* one line at a time and flushed, so journaling cost stays
//! O(1) per unit at 100k-unit campaign scale. A `kill -9` mid-append can
//! leave a truncated final line; [`Manifest::open_resume`] drops exactly
//! that torn tail (the unit re-runs) while still rejecting mid-file
//! corruption as fatal.
//!
//! A parallel campaign journals into one manifest *per worker shard*
//! ([`create_shards`] / [`resume_shards`]) so concurrent appenders never
//! contend on one file; on resume the shards are merged in deterministic
//! order regardless of worker count or steal schedule.

use crate::classify::Transience;
use crate::fsio::atomic_write;
use ompvar_obs::json::{self, Value};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Manifest schema identifier, bumped on breaking format changes.
pub const SCHEMA: &str = "ompvar-checkpoint/1";

/// The campaign identity a manifest belongs to. On `--resume` the header
/// must match the live invocation exactly — resuming a `--seed 1`
/// campaign with `--seed 2` would splice incompatible results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Campaign base seed.
    pub seed: u64,
    /// Whether the campaign ran with reduced repetitions.
    pub fast: bool,
    /// Unit names, in execution order.
    pub targets: Vec<String>,
}

/// One retry the supervisor performed before a unit finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryRecord {
    /// Attempt that failed (0-based).
    pub attempt: u32,
    /// Rendered error.
    pub error: String,
    /// How the error classified.
    pub transience: Transience,
    /// Backoff slept before the next attempt (ms, 0 for permanent).
    pub backoff_ms: u64,
}

/// Terminal state of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitStatus {
    /// Completed; `payload` holds the checkpointed result.
    Ok,
    /// Permanently failed or retry budget exhausted.
    Quarantined,
}

impl UnitStatus {
    /// Stable manifest name.
    pub const fn name(self) -> &'static str {
        match self {
            UnitStatus::Ok => "ok",
            UnitStatus::Quarantined => "quarantined",
        }
    }
}

/// One completed (or quarantined) unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Unit name (experiment id, or `experiment/cell` for sub-units).
    pub name: String,
    /// Terminal state.
    pub status: UnitStatus,
    /// Attempts consumed (≥ 1).
    pub attempts: u32,
    /// Failures that preceded the terminal state.
    pub retries: Vec<RetryRecord>,
    /// Checkpointed result for `Ok` units (replayed on resume).
    pub payload: Option<Value>,
}

/// Why a manifest could not be loaded for resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// A line was not a valid manifest record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The manifest belongs to a different campaign (seed/fast/targets).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint manifest I/O: {e}"),
            CheckpointError::Parse { line, msg } => {
                write!(f, "checkpoint manifest line {line}: {msg}")
            }
            CheckpointError::Mismatch(msg) => {
                write!(f, "checkpoint manifest does not match this campaign: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn header_json(h: &Header) -> String {
    let targets: Vec<String> = h
        .targets
        .iter()
        .map(|t| format!("\"{}\"", json::escape(t)))
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"kind\":\"campaign\",\"seed\":{},\"fast\":{},\"targets\":[{}]}}",
        h.seed,
        h.fast,
        targets.join(",")
    )
}

fn entry_json(e: &Entry) -> String {
    let retries: Vec<String> = e
        .retries
        .iter()
        .map(|r| {
            format!(
                "{{\"attempt\":{},\"error\":\"{}\",\"class\":\"{}\",\"backoff_ms\":{}}}",
                r.attempt,
                json::escape(&r.error),
                r.transience.name(),
                r.backoff_ms
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"kind\":\"unit\",\"name\":\"{}\",\"status\":\"{}\",\
         \"attempts\":{},\"retries\":[{}],\"payload\":{}}}",
        json::escape(&e.name),
        e.status.name(),
        e.attempts,
        retries.join(","),
        e.payload.as_ref().map_or_else(|| "null".to_string(), json::write),
    )
}

fn u64_of(v: &Value, key: &str) -> Option<u64> {
    let n = v.get(key)?.as_f64()?;
    (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
}

fn header_from(v: &Value) -> Option<Header> {
    if v.get("schema")?.as_str()? != SCHEMA || v.get("kind")?.as_str()? != "campaign" {
        return None;
    }
    let targets = v
        .get("targets")?
        .as_arr()?
        .iter()
        .map(|t| t.as_str().map(str::to_string))
        .collect::<Option<Vec<_>>>()?;
    Some(Header {
        seed: u64_of(v, "seed")?,
        fast: v.get("fast")?.as_bool()?,
        targets,
    })
}

fn entry_from(v: &Value) -> Option<Entry> {
    if v.get("schema")?.as_str()? != SCHEMA || v.get("kind")?.as_str()? != "unit" {
        return None;
    }
    let status = match v.get("status")?.as_str()? {
        "ok" => UnitStatus::Ok,
        "quarantined" => UnitStatus::Quarantined,
        _ => return None,
    };
    let retries = v
        .get("retries")?
        .as_arr()?
        .iter()
        .map(|r| {
            Some(RetryRecord {
                attempt: u64_of(r, "attempt")? as u32,
                error: r.get("error")?.as_str()?.to_string(),
                transience: Transience::from_name(r.get("class")?.as_str()?)?,
                backoff_ms: u64_of(r, "backoff_ms")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let payload = match v.get("payload")? {
        Value::Null => None,
        other => Some(other.clone()),
    };
    Some(Entry {
        name: v.get("name")?.as_str()?.to_string(),
        status,
        attempts: u64_of(v, "attempts")? as u32,
        retries,
        payload,
    })
}

/// A live manifest: the journal of one campaign run (or one worker
/// shard of a parallel campaign).
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    header: Header,
    entries: Vec<Entry>,
    /// Open append handle; re-opened on demand if an append fails.
    file: Option<File>,
    /// Whether `open_resume` dropped a torn final line (the unit it
    /// described will simply re-run).
    torn_tail: bool,
}

impl Manifest {
    /// Start a fresh campaign manifest at `path` (truncating any
    /// previous one) and persist the header line atomically.
    pub fn create(path: &Path, header: Header) -> io::Result<Manifest> {
        let mut doc = header_json(&header);
        doc.push('\n');
        atomic_write(path, doc.as_bytes())?;
        let file = OpenOptions::new().append(true).open(path).ok();
        Ok(Manifest { path: path.to_path_buf(), header, entries: Vec::new(), file, torn_tail: false })
    }

    /// Load an existing manifest for `--resume`, verifying it matches
    /// the live campaign `expect`ation.
    ///
    /// Torn-tail recovery: a `kill -9` mid-append leaves a truncated
    /// final line with no trailing newline. Exactly that — an
    /// unparseable *final* line that is not newline-terminated — is
    /// dropped (and truncated off the file, so later appends stay
    /// well-formed); the unit it described re-runs. Any malformed
    /// newline-terminated line is mid-file corruption and stays fatal:
    /// our appends always end in `\n`, so a complete garbage line can
    /// only mean outside interference.
    pub fn open_resume(path: &Path, expect: &Header) -> Result<Manifest, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        // Split off the torn-tail candidate: whatever follows the last
        // newline. A partially flushed append is always a strict prefix
        // of `<line>\n`, so it can never contain that final newline.
        let complete_len = if text.ends_with('\n') {
            text.len()
        } else {
            text.rfind('\n').map_or(0, |i| i + 1)
        };
        let (complete, tail) = text.split_at(complete_len);

        let mut lines = complete.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let parse_line = |i: usize, l: &str| {
            json::parse(l).map_err(|e| CheckpointError::Parse { line: i + 1, msg: e.to_string() })
        };
        let (i, first) = lines.next().ok_or(CheckpointError::Parse {
            line: 1,
            msg: "empty manifest".to_string(),
        })?;
        let header = header_from(&parse_line(i, first)?).ok_or(CheckpointError::Parse {
            line: i + 1,
            msg: "first line is not an ompvar-checkpoint/1 campaign header".to_string(),
        })?;
        if header != *expect {
            return Err(CheckpointError::Mismatch(format!(
                "manifest is for seed {} fast {} targets {:?}; \
                 this run is seed {} fast {} targets {:?}",
                header.seed, header.fast, header.targets, expect.seed, expect.fast, expect.targets
            )));
        }
        let mut entries = Vec::new();
        for (i, l) in lines {
            let v = parse_line(i, l)?;
            let e = entry_from(&v).ok_or(CheckpointError::Parse {
                line: i + 1,
                msg: "line is not an ompvar-checkpoint/1 unit record".to_string(),
            })?;
            entries.push(e);
        }

        let mut torn_tail = false;
        if !tail.trim().is_empty() {
            // An un-terminated final line. If it still parses as a
            // complete unit record, only the newline is missing — accept
            // the entry and restore the terminator so later appends
            // don't concatenate onto it.
            match json::parse(tail).ok().as_ref().and_then(entry_from) {
                Some(e) => {
                    entries.push(e);
                    let mut f = OpenOptions::new().append(true).open(path)?;
                    f.write_all(b"\n")?;
                }
                None => {
                    // The torn append of a killed run: drop it and
                    // truncate it off so future appends are well-formed.
                    eprintln!(
                        "warning: dropping torn final line ({} byte(s)) of {}; \
                         the interrupted unit will re-run",
                        tail.len(),
                        path.display()
                    );
                    OpenOptions::new()
                        .write(true)
                        .open(path)?
                        .set_len(complete_len as u64)?;
                    torn_tail = true;
                }
            }
        }

        let file = OpenOptions::new().append(true).open(path).ok();
        Ok(Manifest { path: path.to_path_buf(), header, entries, file, torn_tail })
    }

    /// Manifest location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Campaign identity.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Entries journaled so far, in completion order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Whether loading this manifest dropped a torn final line.
    pub fn recovered_torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// The journaled terminal state of `name`, if it already finished.
    pub fn completed(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Journal one finished unit: append one JSONL line and flush. A
    /// kill at any instant leaves either the complete line or a torn
    /// tail that [`Manifest::open_resume`] recovers from.
    pub fn append(&mut self, entry: Entry) -> io::Result<()> {
        let mut line = entry_json(&entry);
        line.push('\n');
        self.entries.push(entry);
        if self.file.is_none() {
            self.file = Some(OpenOptions::new().append(true).open(&self.path)?);
        }
        let f = self.file.as_mut().expect("just opened");
        f.write_all(line.as_bytes())?;
        f.flush()
    }

    /// Render the full JSONL document.
    pub fn render(&self) -> String {
        let mut out = header_json(&self.header);
        out.push('\n');
        for e in &self.entries {
            out.push_str(&entry_json(e));
            out.push('\n');
        }
        out
    }
}

/// Where worker shard `shard` of a sharded campaign journals. Shard 0
/// keeps the legacy single-manifest name, so a `--jobs 1` campaign's
/// on-disk layout is exactly the pre-sharding one.
pub fn shard_path(dir: &Path, base: &str, shard: usize) -> PathBuf {
    if shard == 0 {
        dir.join(format!("{base}.jsonl"))
    } else {
        dir.join(format!("{base}.shard-{shard}.jsonl"))
    }
}

/// Every shard manifest currently on disk for `base` under `dir`, as
/// `(shard index, path)` sorted by shard index.
pub fn existing_shards(dir: &Path, base: &str) -> Vec<(usize, PathBuf)> {
    let mut found = Vec::new();
    let p0 = shard_path(dir, base, 0);
    if p0.exists() {
        found.push((0, p0));
    }
    let prefix = format!("{base}.shard-");
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.filter_map(Result::ok) {
            let name = e.file_name().to_string_lossy().into_owned();
            if let Some(rest) = name.strip_prefix(&prefix).and_then(|r| r.strip_suffix(".jsonl")) {
                if let Ok(i) = rest.parse::<usize>() {
                    if i > 0 {
                        found.push((i, e.path()));
                    }
                }
            }
        }
    }
    found.sort_unstable_by_key(|(i, _)| *i);
    found
}

/// Start a fresh sharded campaign: one manifest per worker, all carrying
/// the same campaign header. Stale shard files from earlier runs (even
/// with a different worker count) are removed first, so a fresh campaign
/// can never replay another run's journal.
pub fn create_shards(
    dir: &Path,
    base: &str,
    header: &Header,
    shards: usize,
) -> io::Result<Vec<Manifest>> {
    for (_, p) in existing_shards(dir, base) {
        std::fs::remove_file(&p)?;
    }
    (0..shards.max(1))
        .map(|w| Manifest::create(&shard_path(dir, base, w), header.clone()))
        .collect()
}

/// Resume a sharded campaign: open every shard manifest on disk
/// (validating each against `expect`, recovering torn tails), create any
/// missing shards up to the live worker count, and merge the journaled
/// entries **deterministically** — shards in index order, entries in
/// file order, first occurrence of a unit name wins. The merge result is
/// a pure function of the on-disk shard set, so a resumed report is
/// byte-identical regardless of the worker count or steal schedule of
/// the run that crashed.
///
/// Shard 0 must exist (it is the legacy manifest a sequential campaign
/// writes); shards beyond `jobs` are merged but not returned, since no
/// live worker will append to them.
pub fn resume_shards(
    dir: &Path,
    base: &str,
    expect: &Header,
    jobs: usize,
) -> Result<(Vec<Manifest>, Vec<Entry>), CheckpointError> {
    let jobs = jobs.max(1);
    let on_disk = existing_shards(dir, base);
    if !on_disk.iter().any(|(i, _)| *i == 0) {
        return Err(CheckpointError::Io(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no manifest at {}", shard_path(dir, base, 0).display()),
        )));
    }
    let mut merged: Vec<Entry> = Vec::new();
    let mut opened: Vec<(usize, Manifest)> = Vec::new();
    for (i, p) in on_disk {
        let m = Manifest::open_resume(&p, expect)?;
        for e in m.entries() {
            if !merged.iter().any(|seen| seen.name == e.name) {
                merged.push(e.clone());
            }
        }
        if i < jobs {
            opened.push((i, m));
        }
    }
    let mut shards = Vec::with_capacity(jobs);
    for w in 0..jobs {
        match opened.iter().position(|(i, _)| *i == w) {
            Some(pos) => shards.push(opened.remove(pos).1),
            None => shards.push(Manifest::create(&shard_path(dir, base, w), expect.clone())?),
        }
    }
    Ok((shards, merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header { seed: 7, fast: true, targets: vec!["faults".into(), "campaign".into()] }
    }

    fn entry(name: &str) -> Entry {
        Entry {
            name: name.to_string(),
            status: UnitStatus::Ok,
            attempts: 3,
            retries: vec![RetryRecord {
                attempt: 0,
                error: "simulation deadlock at t=5ns: \"quoted\"".to_string(),
                transience: Transience::Transient,
                backoff_ms: 31,
            }],
            payload: Some(json::parse("{\"samples\":[1.5,2.25],\"n\":2}").unwrap()),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ompvar_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("manifest.jsonl")
    }

    #[test]
    fn roundtrips_header_entries_and_payload() {
        let path = tmp("roundtrip");
        let mut m = Manifest::create(&path, header()).unwrap();
        m.append(entry("faults")).unwrap();
        m.append(Entry {
            name: "campaign".into(),
            status: UnitStatus::Quarantined,
            attempts: 4,
            retries: vec![],
            payload: None,
        })
        .unwrap();
        let loaded = Manifest::open_resume(&path, &header()).unwrap();
        assert_eq!(loaded.header(), &header());
        assert_eq!(loaded.entries(), m.entries());
        let f = loaded.completed("faults").unwrap();
        assert_eq!(f.attempts, 3);
        assert_eq!(f.retries[0].transience, Transience::Transient);
        let p = f.payload.as_ref().unwrap();
        assert_eq!(p.get("n").and_then(Value::as_f64), Some(2.0));
        assert_eq!(
            p.get("samples").and_then(Value::as_arr).unwrap()[1].as_f64(),
            Some(2.25)
        );
        assert!(loaded.completed("missing").is_none());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn every_line_is_independent_json() {
        let path = tmp("jsonl");
        let mut m = Manifest::create(&path, header()).unwrap();
        m.append(entry("faults")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for l in text.lines() {
            let v = json::parse(l).expect("each line parses alone");
            assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn resume_rejects_mismatched_campaign() {
        let path = tmp("mismatch");
        Manifest::create(&path, header()).unwrap();
        let other = Header { seed: 8, ..header() };
        match Manifest::open_resume(&path, &other) {
            Err(CheckpointError::Mismatch(msg)) => {
                assert!(msg.contains("seed 7"), "{msg}");
                assert!(msg.contains("seed 8"), "{msg}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn resume_rejects_garbage_lines() {
        let path = tmp("garbage");
        let mut doc = header_json(&header());
        doc.push_str("\nnot json\n");
        std::fs::write(&path, doc).unwrap();
        match Manifest::open_resume(&path, &header()) {
            Err(CheckpointError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// Satellite regression: a kill -9 mid-append leaves a truncated
    /// final line with no trailing newline. Resume drops exactly that
    /// line (the unit re-runs), truncates it off the file, and further
    /// appends produce a well-formed journal.
    #[test]
    fn torn_final_line_is_recovered_and_truncated() {
        let path = tmp("torn");
        let mut m = Manifest::create(&path, header()).unwrap();
        m.append(entry("faults")).unwrap();
        drop(m);
        // Simulate the torn tail: half of the next entry's line.
        let full = entry_json(&entry("campaign"));
        let torn = &full[..full.len() / 2];
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(torn.as_bytes()).unwrap();
        drop(f);

        let mut m = Manifest::open_resume(&path, &header()).unwrap();
        assert!(m.recovered_torn_tail());
        assert_eq!(m.entries().len(), 1, "torn unit dropped");
        assert!(m.completed("campaign").is_none(), "torn unit must re-run");
        // The file was truncated back to the valid prefix, so the re-run
        // appends cleanly and a second resume sees both units.
        m.append(entry("campaign")).unwrap();
        drop(m);
        let m = Manifest::open_resume(&path, &header()).unwrap();
        assert!(!m.recovered_torn_tail());
        assert_eq!(m.entries().len(), 2);
        assert!(m.completed("campaign").is_some());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// Satellite regression: only the *final* line is recoverable.
    /// Mid-file corruption (a malformed line followed by more complete
    /// lines) stays fatal even when the file also ends without a
    /// newline.
    #[test]
    fn mid_file_corruption_stays_fatal() {
        let path = tmp("midfile");
        let mut doc = header_json(&header());
        doc.push_str("\n{\"schema\":\"ompvar-ch");
        doc.push('\n'); // newline-terminated garbage = complete line
        doc.push_str(&entry_json(&entry("faults")));
        doc.push('\n');
        std::fs::write(&path, &doc).unwrap();
        match Manifest::open_resume(&path, &header()) {
            Err(CheckpointError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        // Same, with an additional genuinely-torn tail after the valid
        // entry: the mid-file garbage is still what kills it.
        let mut doc2 = doc.clone();
        doc2.push_str("{\"schema\":\"ompv");
        std::fs::write(&path, &doc2).unwrap();
        assert!(matches!(
            Manifest::open_resume(&path, &header()),
            Err(CheckpointError::Parse { line: 2, .. })
        ));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// A complete unit record that merely lost its trailing newline is
    /// accepted, and the newline is restored on disk.
    #[test]
    fn unterminated_but_complete_final_line_is_accepted() {
        let path = tmp("noterm");
        let mut doc = header_json(&header());
        doc.push('\n');
        doc.push_str(&entry_json(&entry("faults"))); // no trailing \n
        std::fs::write(&path, doc).unwrap();
        let m = Manifest::open_resume(&path, &header()).unwrap();
        assert!(!m.recovered_torn_tail());
        assert!(m.completed("faults").is_some());
        drop(m);
        assert!(std::fs::read_to_string(&path).unwrap().ends_with('\n'));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// Appends are O(1): each completion adds exactly one line; the
    /// earlier lines are never rewritten.
    #[test]
    fn appends_grow_one_line_at_a_time() {
        let path = tmp("append");
        let mut m = Manifest::create(&path, header()).unwrap();
        let before = std::fs::read_to_string(&path).unwrap();
        m.append(entry("faults")).unwrap();
        let after = std::fs::read_to_string(&path).unwrap();
        assert!(after.starts_with(&before), "prefix preserved");
        assert_eq!(after.lines().count(), before.lines().count() + 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    fn shard_header(targets: &[&str]) -> Header {
        Header { seed: 7, fast: true, targets: targets.iter().map(|s| s.to_string()).collect() }
    }

    /// Shard manifests merge deterministically: shard order, file order,
    /// first name wins — independent of which worker journaled what.
    #[test]
    fn shard_merge_is_deterministic_and_deduped() {
        let path = tmp("shards");
        let dir = path.parent().unwrap().to_path_buf();
        let h = shard_header(&["a", "b", "c"]);
        let mut shards = create_shards(&dir, "m", &h, 3).unwrap();
        assert!(shard_path(&dir, "m", 0).ends_with("m.jsonl"), "legacy name for shard 0");
        // Workers journal out of canonical order and with a duplicate.
        shards[2].append(entry("c")).unwrap();
        shards[0].append(entry("b")).unwrap();
        shards[1].append(entry("b")).unwrap(); // duplicate: shard 0 wins
        drop(shards);

        let (reopened, merged) = resume_shards(&dir, "m", &h, 2).unwrap();
        assert_eq!(reopened.len(), 2, "only live shards returned");
        let names: Vec<&str> = merged.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b", "c"], "shard order, dedup by name");
        // Resuming with MORE workers than shards creates the missing one.
        let (reopened, merged) = resume_shards(&dir, "m", &h, 4).unwrap();
        assert_eq!(reopened.len(), 4);
        assert_eq!(merged.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A fresh sharded campaign removes every stale shard file, even
    /// those beyond the new worker count.
    #[test]
    fn create_shards_clears_stale_files() {
        let path = tmp("stale");
        let dir = path.parent().unwrap().to_path_buf();
        let h = shard_header(&["a"]);
        let mut shards = create_shards(&dir, "m", &h, 4).unwrap();
        shards[3].append(entry("a")).unwrap();
        drop(shards);
        let _ = create_shards(&dir, "m", &h, 1).unwrap();
        assert!(!shard_path(&dir, "m", 3).exists(), "stale shard removed");
        let (_, merged) = resume_shards(&dir, "m", &h, 1).unwrap();
        assert!(merged.is_empty(), "no stale entries resurface");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Resume without a shard-0 manifest is an I/O error (nothing to
    /// resume), matching the sequential behavior.
    #[test]
    fn resume_shards_requires_shard_zero() {
        let path = tmp("noshard0");
        let dir = path.parent().unwrap().to_path_buf();
        assert!(matches!(
            resume_shards(&dir, "m", &shard_header(&["a"]), 2),
            Err(CheckpointError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
