//! The `ompvar-checkpoint/1` manifest: a JSONL journal of completed
//! campaign units, written atomically after every completion so a
//! `kill -9` at any instant leaves a loadable manifest.
//!
//! Line 1 is the campaign header (seed, fast flag, target list); every
//! further line is one finished unit — its status (`ok`/`quarantined`),
//! attempt count, the retry ledger (error text, classification, backoff
//! delay), and for successful units the checkpointed result payload that
//! `--resume` replays instead of re-running the unit. Serialization goes
//! through [`ompvar_obs::json`]; each append rewrites the whole file via
//! temp-file+rename ([`crate::fsio::atomic_write`]) — manifests are a
//! few KB, and atomicity beats append-throughput here.

use crate::classify::Transience;
use crate::fsio::atomic_write;
use ompvar_obs::json::{self, Value};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest schema identifier, bumped on breaking format changes.
pub const SCHEMA: &str = "ompvar-checkpoint/1";

/// The campaign identity a manifest belongs to. On `--resume` the header
/// must match the live invocation exactly — resuming a `--seed 1`
/// campaign with `--seed 2` would splice incompatible results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Campaign base seed.
    pub seed: u64,
    /// Whether the campaign ran with reduced repetitions.
    pub fast: bool,
    /// Unit names, in execution order.
    pub targets: Vec<String>,
}

/// One retry the supervisor performed before a unit finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryRecord {
    /// Attempt that failed (0-based).
    pub attempt: u32,
    /// Rendered error.
    pub error: String,
    /// How the error classified.
    pub transience: Transience,
    /// Backoff slept before the next attempt (ms, 0 for permanent).
    pub backoff_ms: u64,
}

/// Terminal state of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitStatus {
    /// Completed; `payload` holds the checkpointed result.
    Ok,
    /// Permanently failed or retry budget exhausted.
    Quarantined,
}

impl UnitStatus {
    /// Stable manifest name.
    pub const fn name(self) -> &'static str {
        match self {
            UnitStatus::Ok => "ok",
            UnitStatus::Quarantined => "quarantined",
        }
    }
}

/// One completed (or quarantined) unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Unit name (experiment id, or `experiment/cell` for sub-units).
    pub name: String,
    /// Terminal state.
    pub status: UnitStatus,
    /// Attempts consumed (≥ 1).
    pub attempts: u32,
    /// Failures that preceded the terminal state.
    pub retries: Vec<RetryRecord>,
    /// Checkpointed result for `Ok` units (replayed on resume).
    pub payload: Option<Value>,
}

/// Why a manifest could not be loaded for resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// A line was not a valid manifest record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The manifest belongs to a different campaign (seed/fast/targets).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint manifest I/O: {e}"),
            CheckpointError::Parse { line, msg } => {
                write!(f, "checkpoint manifest line {line}: {msg}")
            }
            CheckpointError::Mismatch(msg) => {
                write!(f, "checkpoint manifest does not match this campaign: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn header_json(h: &Header) -> String {
    let targets: Vec<String> = h
        .targets
        .iter()
        .map(|t| format!("\"{}\"", json::escape(t)))
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"kind\":\"campaign\",\"seed\":{},\"fast\":{},\"targets\":[{}]}}",
        h.seed,
        h.fast,
        targets.join(",")
    )
}

fn entry_json(e: &Entry) -> String {
    let retries: Vec<String> = e
        .retries
        .iter()
        .map(|r| {
            format!(
                "{{\"attempt\":{},\"error\":\"{}\",\"class\":\"{}\",\"backoff_ms\":{}}}",
                r.attempt,
                json::escape(&r.error),
                r.transience.name(),
                r.backoff_ms
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"kind\":\"unit\",\"name\":\"{}\",\"status\":\"{}\",\
         \"attempts\":{},\"retries\":[{}],\"payload\":{}}}",
        json::escape(&e.name),
        e.status.name(),
        e.attempts,
        retries.join(","),
        e.payload.as_ref().map_or_else(|| "null".to_string(), json::write),
    )
}

fn u64_of(v: &Value, key: &str) -> Option<u64> {
    let n = v.get(key)?.as_f64()?;
    (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
}

fn header_from(v: &Value) -> Option<Header> {
    if v.get("schema")?.as_str()? != SCHEMA || v.get("kind")?.as_str()? != "campaign" {
        return None;
    }
    let targets = v
        .get("targets")?
        .as_arr()?
        .iter()
        .map(|t| t.as_str().map(str::to_string))
        .collect::<Option<Vec<_>>>()?;
    Some(Header {
        seed: u64_of(v, "seed")?,
        fast: v.get("fast")?.as_bool()?,
        targets,
    })
}

fn entry_from(v: &Value) -> Option<Entry> {
    if v.get("schema")?.as_str()? != SCHEMA || v.get("kind")?.as_str()? != "unit" {
        return None;
    }
    let status = match v.get("status")?.as_str()? {
        "ok" => UnitStatus::Ok,
        "quarantined" => UnitStatus::Quarantined,
        _ => return None,
    };
    let retries = v
        .get("retries")?
        .as_arr()?
        .iter()
        .map(|r| {
            Some(RetryRecord {
                attempt: u64_of(r, "attempt")? as u32,
                error: r.get("error")?.as_str()?.to_string(),
                transience: Transience::from_name(r.get("class")?.as_str()?)?,
                backoff_ms: u64_of(r, "backoff_ms")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let payload = match v.get("payload")? {
        Value::Null => None,
        other => Some(other.clone()),
    };
    Some(Entry {
        name: v.get("name")?.as_str()?.to_string(),
        status,
        attempts: u64_of(v, "attempts")? as u32,
        retries,
        payload,
    })
}

/// A live manifest: the journal of one campaign run.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    header: Header,
    entries: Vec<Entry>,
}

impl Manifest {
    /// Start a fresh campaign manifest at `path` (truncating any
    /// previous one) and persist the header line.
    pub fn create(path: &Path, header: Header) -> io::Result<Manifest> {
        let m = Manifest { path: path.to_path_buf(), header, entries: Vec::new() };
        m.flush()?;
        Ok(m)
    }

    /// Load an existing manifest for `--resume`, verifying it matches
    /// the live campaign `expect`ation.
    pub fn open_resume(path: &Path, expect: &Header) -> Result<Manifest, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (i, first) = lines.next().ok_or(CheckpointError::Parse {
            line: 1,
            msg: "empty manifest".to_string(),
        })?;
        let parse_line = |i: usize, l: &str| {
            json::parse(l).map_err(|e| CheckpointError::Parse { line: i + 1, msg: e.to_string() })
        };
        let header = header_from(&parse_line(i, first)?).ok_or(CheckpointError::Parse {
            line: i + 1,
            msg: "first line is not an ompvar-checkpoint/1 campaign header".to_string(),
        })?;
        if header != *expect {
            return Err(CheckpointError::Mismatch(format!(
                "manifest is for seed {} fast {} targets {:?}; \
                 this run is seed {} fast {} targets {:?}",
                header.seed, header.fast, header.targets, expect.seed, expect.fast, expect.targets
            )));
        }
        let mut entries = Vec::new();
        for (i, l) in lines {
            let v = parse_line(i, l)?;
            let e = entry_from(&v).ok_or(CheckpointError::Parse {
                line: i + 1,
                msg: "line is not an ompvar-checkpoint/1 unit record".to_string(),
            })?;
            entries.push(e);
        }
        Ok(Manifest { path: path.to_path_buf(), header, entries })
    }

    /// Manifest location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Campaign identity.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Entries journaled so far, in completion order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The journaled terminal state of `name`, if it already finished.
    pub fn completed(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Journal one finished unit and flush the whole manifest
    /// atomically.
    pub fn append(&mut self, entry: Entry) -> io::Result<()> {
        self.entries.push(entry);
        self.flush()
    }

    /// Render the full JSONL document.
    pub fn render(&self) -> String {
        let mut out = header_json(&self.header);
        out.push('\n');
        for e in &self.entries {
            out.push_str(&entry_json(e));
            out.push('\n');
        }
        out
    }

    fn flush(&self) -> io::Result<()> {
        atomic_write(&self.path, self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header { seed: 7, fast: true, targets: vec!["faults".into(), "campaign".into()] }
    }

    fn entry(name: &str) -> Entry {
        Entry {
            name: name.to_string(),
            status: UnitStatus::Ok,
            attempts: 3,
            retries: vec![RetryRecord {
                attempt: 0,
                error: "simulation deadlock at t=5ns: \"quoted\"".to_string(),
                transience: Transience::Transient,
                backoff_ms: 31,
            }],
            payload: Some(json::parse("{\"samples\":[1.5,2.25],\"n\":2}").unwrap()),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ompvar_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("manifest.jsonl")
    }

    #[test]
    fn roundtrips_header_entries_and_payload() {
        let path = tmp("roundtrip");
        let mut m = Manifest::create(&path, header()).unwrap();
        m.append(entry("faults")).unwrap();
        m.append(Entry {
            name: "campaign".into(),
            status: UnitStatus::Quarantined,
            attempts: 4,
            retries: vec![],
            payload: None,
        })
        .unwrap();
        let loaded = Manifest::open_resume(&path, &header()).unwrap();
        assert_eq!(loaded.header(), &header());
        assert_eq!(loaded.entries(), m.entries());
        let f = loaded.completed("faults").unwrap();
        assert_eq!(f.attempts, 3);
        assert_eq!(f.retries[0].transience, Transience::Transient);
        let p = f.payload.as_ref().unwrap();
        assert_eq!(p.get("n").and_then(Value::as_f64), Some(2.0));
        assert_eq!(
            p.get("samples").and_then(Value::as_arr).unwrap()[1].as_f64(),
            Some(2.25)
        );
        assert!(loaded.completed("missing").is_none());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn every_line_is_independent_json() {
        let path = tmp("jsonl");
        let mut m = Manifest::create(&path, header()).unwrap();
        m.append(entry("faults")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for l in text.lines() {
            let v = json::parse(l).expect("each line parses alone");
            assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn resume_rejects_mismatched_campaign() {
        let path = tmp("mismatch");
        Manifest::create(&path, header()).unwrap();
        let other = Header { seed: 8, ..header() };
        match Manifest::open_resume(&path, &other) {
            Err(CheckpointError::Mismatch(msg)) => {
                assert!(msg.contains("seed 7"), "{msg}");
                assert!(msg.contains("seed 8"), "{msg}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn resume_rejects_garbage_lines() {
        let path = tmp("garbage");
        let mut doc = header_json(&header());
        doc.push_str("\nnot json\n");
        std::fs::write(&path, doc).unwrap();
        match Manifest::open_resume(&path, &header()) {
            Err(CheckpointError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
