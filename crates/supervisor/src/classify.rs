//! Failure classification: the supervisor's transient/permanent split.
//!
//! Every error the runtime layers can produce maps onto exactly one
//! [`Transience`]; the matches below are deliberately exhaustive (no
//! wildcard arms), so adding a new error variant anywhere in the
//! taxonomy is a compile error here until its retry policy is decided.
//! The differential fuzzer holds the other end of the contract (oracle
//! #8): a *valid* program must never produce a permanently-classified
//! error on either backend — if it does, either the program slipped
//! through validation or the classification table drifted.
//!
//! | error                         | class     | rationale                              |
//! |-------------------------------|-----------|----------------------------------------|
//! | `SimError::Deadlock`          | transient | injected lost wakeups / fault storms   |
//! | `SimError::TimeLimitExceeded` | transient | timeout: noise storm may have passed   |
//! | `SimError::EventBudgetExceeded` | transient | runaway-event backstop, same as above |
//! | `SimError::ObjectTypeMismatch`| permanent | malformed program, retry cannot help   |
//! | `RtError::Timeout`            | transient | native spin deadline, scheduler noise  |
//! | `RtError::InvalidRegion`      | permanent | rejected before running (every
//!   `RegionError`, including the analyzer's `SelfNestedLock` and
//!   `SyncUnderLock` lock-hazard rejections)                             |
//! | panic payload                 | transient | treated like a crash of the worker     |

use ompvar_rt::region::RegionError;
use ompvar_rt::RtError;
use ompvar_sim::error::SimError;

/// Whether a failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transience {
    /// Environmental / injected: a retry (with a fresh attempt seed) may
    /// succeed. Retried with backoff up to the per-unit budget.
    Transient,
    /// Structural: the unit can never succeed as specified. Quarantined
    /// immediately, no retries.
    Permanent,
}

impl Transience {
    /// Stable lower-case name (used in checkpoint manifests).
    pub const fn name(self) -> &'static str {
        match self {
            Transience::Transient => "transient",
            Transience::Permanent => "permanent",
        }
    }

    /// Inverse of [`Transience::name`].
    pub fn from_name(s: &str) -> Option<Transience> {
        match s {
            "transient" => Some(Transience::Transient),
            "permanent" => Some(Transience::Permanent),
            _ => None,
        }
    }
}

/// Classify a simulated-engine error.
pub fn classify_sim(e: &SimError) -> Transience {
    match e {
        // A deadlock in a supervised campaign is assumed to come from an
        // injected lost wakeup (the only way the validated programs we
        // run can deadlock); the retry runs with a different attempt
        // seed, under which the injection may not fire.
        SimError::Deadlock { .. } => Transience::Transient,
        SimError::TimeLimitExceeded { .. } => Transience::Transient,
        SimError::EventBudgetExceeded { .. } => Transience::Transient,
        SimError::ObjectTypeMismatch { .. } => Transience::Permanent,
    }
}

/// Classify a region-validation error. Always permanent: validation is a
/// pure function of the spec, so re-running cannot change the verdict.
pub fn classify_region(e: &RegionError) -> Transience {
    match e {
        RegionError::ZeroThreads
        | RegionError::ZeroCountRepeat
        | RegionError::ZeroIterationLoop
        | RegionError::ZeroChunk
        | RegionError::InvalidWork { .. }
        | RegionError::UnmatchedMark { .. }
        | RegionError::RepeatedNowaitLoop
        | RegionError::SelfNestedLock { .. }
        | RegionError::SyncUnderLock { .. } => Transience::Permanent,
    }
}

/// Classify a runtime error from either backend.
pub fn classify(e: &RtError) -> Transience {
    match e {
        RtError::Sim(e) => classify_sim(e),
        RtError::Timeout { .. } => Transience::Transient,
        RtError::InvalidRegion(e) => classify_region(e),
    }
}

/// Classify a caught panic payload. Panics are treated as worker crashes
/// — transient, like a node falling over mid-run.
pub fn classify_panic(_payload: &str) -> Transience {
    Transience::Transient
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_sim::trace::SimReport;
    use std::time::Duration;

    #[test]
    fn timeouts_and_deadlocks_are_transient() {
        assert_eq!(
            classify(&RtError::Timeout {
                construct: "barrier",
                deadline: Duration::from_secs(1),
            }),
            Transience::Transient
        );
        assert_eq!(
            classify_sim(&SimError::Deadlock { time: 0, blocked: vec![] }),
            Transience::Transient
        );
        assert_eq!(
            classify_sim(&SimError::TimeLimitExceeded {
                limit: 10,
                partial: Box::new(SimReport::default()),
            }),
            Transience::Transient
        );
        assert_eq!(
            classify_sim(&SimError::EventBudgetExceeded {
                budget: 10,
                partial: Box::new(SimReport::default()),
            }),
            Transience::Transient
        );
        assert_eq!(classify_panic("index out of bounds"), Transience::Transient);
    }

    #[test]
    fn structural_errors_are_permanent() {
        assert_eq!(
            classify(&RtError::InvalidRegion(RegionError::ZeroThreads)),
            Transience::Permanent
        );
        assert_eq!(
            classify_sim(&SimError::ObjectTypeMismatch {
                op: "LockAcquire",
                obj: ompvar_sim::task::ObjId(0),
                expected: "lock",
                found: "barrier",
            }),
            Transience::Permanent
        );
        for e in [
            RegionError::ZeroThreads,
            RegionError::ZeroCountRepeat,
            RegionError::ZeroIterationLoop,
            RegionError::ZeroChunk,
            RegionError::InvalidWork { construct: "Tasks" },
            RegionError::UnmatchedMark { id: 3 },
            RegionError::RepeatedNowaitLoop,
            RegionError::SelfNestedLock { lock: 1 },
            RegionError::SyncUnderLock { construct: "Barrier" },
        ] {
            assert_eq!(classify_region(&e), Transience::Permanent, "{e}");
        }
    }

    #[test]
    fn names_roundtrip() {
        for t in [Transience::Transient, Transience::Permanent] {
            assert_eq!(Transience::from_name(t.name()), Some(t));
        }
        assert_eq!(Transience::from_name("flaky"), None);
    }
}
