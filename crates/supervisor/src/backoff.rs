//! Seeded, deterministic exponential backoff with jitter.
//!
//! The delay before retry `attempt` (0-based) is
//! `min(cap, base * factor^attempt)` scaled by a jitter factor in
//! `[0.5, 1.5)` drawn from a splitmix64 stream keyed on
//! `(seed, attempt)`. Everything is a pure function of the inputs, so a
//! replayed campaign reproduces the exact same schedule — which the
//! retry-determinism tests assert bit-for-bit.

/// Shape of the backoff curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffCfg {
    /// First delay, before jitter (milliseconds).
    pub base_ms: u64,
    /// Multiplier per attempt.
    pub factor: f64,
    /// Upper bound on the un-jittered delay (milliseconds).
    pub cap_ms: u64,
}

impl Default for BackoffCfg {
    fn default() -> Self {
        // Small enough that a quarantine costs well under a second of
        // sleeping in CI, large enough to be visible on a trace.
        BackoffCfg { base_ms: 25, factor: 2.0, cap_ms: 1_000 }
    }
}

/// splitmix64: the same tiny seeded generator the simulator's RNG layer
/// bootstraps from. One step, keyed on the full input.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic backoff schedule for one supervised unit.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    cfg: BackoffCfg,
    seed: u64,
}

impl Backoff {
    /// Schedule keyed on the supervisor seed and the unit's name hash.
    pub fn new(cfg: BackoffCfg, seed: u64) -> Backoff {
        Backoff { cfg, seed }
    }

    /// Delay in milliseconds before retry `attempt` (0-based: the delay
    /// between the first failure and the second attempt is `delay_ms(0)`).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self.cfg.factor.powi(attempt.min(63) as i32);
        let raw = ((self.cfg.base_ms as f64 * exp) as u64).min(self.cfg.cap_ms);
        // Jitter in [0.5, 1.5): decorrelates retries of parallel
        // campaigns without losing determinism per (seed, attempt).
        let draw = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0xa076_1d64_78bd_642f));
        let jitter = 0.5 + (draw >> 11) as f64 / (1u64 << 53) as f64;
        ((raw as f64) * jitter) as u64
    }

    /// The first `n` delays, in order.
    pub fn schedule(&self, n: u32) -> Vec<u64> {
        (0..n).map(|a| self.delay_ms(a)).collect()
    }
}

/// Hash a unit name into a seed component (FNV-1a, stable across runs).
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let b = Backoff::new(BackoffCfg::default(), 42);
        assert_eq!(b.schedule(8), b.schedule(8));
        let other = Backoff::new(BackoffCfg::default(), 43);
        assert_ne!(b.schedule(8), other.schedule(8), "seed must matter");
    }

    #[test]
    fn delays_grow_and_cap() {
        let cfg = BackoffCfg { base_ms: 10, factor: 2.0, cap_ms: 100 };
        let b = Backoff::new(cfg, 7);
        for a in 0..20 {
            let d = b.delay_ms(a);
            // Jitter is [0.5, 1.5) around min(cap, base * 2^a).
            let raw = (10u64 << a.min(32)).min(100) as f64;
            assert!(d as f64 >= raw * 0.5 - 1.0, "attempt {a}: {d}");
            assert!((d as f64) < raw * 1.5 + 1.0, "attempt {a}: {d}");
        }
    }

    #[test]
    fn name_seed_is_stable_and_distinguishes() {
        assert_eq!(name_seed("faults"), name_seed("faults"));
        assert_ne!(name_seed("faults"), name_seed("trace"));
    }

    proptest! {
        /// Determinism and bounds hold for arbitrary seeds and attempts
        /// (extends the PR 1 replay-determinism property tests to the
        /// supervisor layer).
        #[test]
        fn backoff_pure_function_of_inputs(seed in any::<u64>(), attempt in 0u32..64) {
            let b = Backoff::new(BackoffCfg::default(), seed);
            let d1 = b.delay_ms(attempt);
            let d2 = b.delay_ms(attempt);
            prop_assert_eq!(d1, d2);
            // Hard ceiling: cap * 1.5.
            prop_assert!(d1 <= 1_500);
        }
    }
}
