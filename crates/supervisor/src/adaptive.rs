//! Adaptive re-measurement: spend extra repetitions where variance lives.
//!
//! Long variability campaigns waste budget measuring stable cells to the
//! same depth as unstable ones. This module implements the opposite
//! policy: after the base repetitions, compute the dispersion of each
//! cell (coefficient of variation and the p99/p50 tail ratio) and keep
//! scheduling extra repetitions for cells that exceed the stability
//! target, up to a hard cap. The extra count is recorded so run reports
//! can show exactly where the budget went.

use ompvar_core::{percentile, Summary};

/// When is a cell "stable enough"?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityPolicy {
    /// A cell is stable once its coefficient of variation is at or
    /// below this.
    pub target_cov: f64,
    /// Hard cap on extra repetitions per cell.
    pub max_extra: usize,
    /// Don't judge stability on fewer samples than this.
    pub min_samples: usize,
}

impl Default for StabilityPolicy {
    fn default() -> Self {
        StabilityPolicy { target_cov: 0.05, max_extra: 16, min_samples: 3 }
    }
}

/// Dispersion of one cell's samples: `(cov, p99_over_p50)`. Both are 0
/// for samples of fewer than two points.
pub fn dispersion(samples: &[f64]) -> (f64, f64) {
    if samples.len() < 2 {
        return (0.0, if samples.is_empty() { 0.0 } else { 1.0 });
    }
    let s = Summary::of(samples);
    let p50 = percentile(samples, 50.0);
    let p99 = percentile(samples, 99.0);
    let tail = if p50 > 0.0 { p99 / p50 } else { 1.0 };
    (s.cv, tail)
}

/// Outcome of [`stabilize`].
#[derive(Debug, Clone, PartialEq)]
pub struct Stabilized {
    /// All samples: the base ones followed by the extras, in order.
    pub samples: Vec<f64>,
    /// Number of base samples (the prefix of `samples`).
    pub base: usize,
    /// Extra repetitions that were actually taken.
    pub extra: usize,
    /// Final coefficient of variation.
    pub cov: f64,
    /// Final p99/p50 tail ratio.
    pub p99_over_p50: f64,
    /// Whether the target was met (false = capped out still unstable).
    pub stable: bool,
}

/// Grow `base_samples` with extra repetitions until the cell meets
/// `policy` or the cap is hit. `more(i)` takes the i-th extra repetition
/// (0-based) and returns its sample, or `None` to stop early (e.g. the
/// repetition failed and the caller chose to degrade rather than abort).
pub fn stabilize(
    base_samples: Vec<f64>,
    policy: &StabilityPolicy,
    mut more: impl FnMut(usize) -> Option<f64>,
) -> Stabilized {
    let base = base_samples.len();
    let mut samples = base_samples;
    let mut extra = 0usize;
    loop {
        let (cov, tail) = dispersion(&samples);
        let enough = samples.len() >= policy.min_samples;
        let stable = enough && cov <= policy.target_cov;
        if stable || extra >= policy.max_extra {
            return Stabilized { samples, base, extra, cov, p99_over_p50: tail, stable };
        }
        match more(extra) {
            Some(x) => {
                samples.push(x);
                extra += 1;
            }
            None => {
                let (cov, tail) = dispersion(&samples);
                let stable = samples.len() >= policy.min_samples && cov <= policy.target_cov;
                return Stabilized { samples, base, extra, cov, p99_over_p50: tail, stable };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_cell_needs_no_extras() {
        let out = stabilize(vec![1.0, 1.0, 1.0, 1.0], &StabilityPolicy::default(), |_| {
            panic!("stable cell must not request extras")
        });
        assert_eq!(out.extra, 0);
        assert!(out.stable);
        assert_eq!(out.cov, 0.0);
    }

    #[test]
    fn unstable_cell_converges_with_extras() {
        // Noisy base (cov ≈ 0.47), then consistent extras pull cov down.
        let policy = StabilityPolicy { target_cov: 0.2, max_extra: 64, min_samples: 3 };
        let out = stabilize(vec![1.0, 2.0], &policy, |_| Some(1.5));
        assert!(out.stable, "cov = {}", out.cov);
        assert!(out.extra > 0);
        assert_eq!(out.base, 2);
        assert_eq!(out.samples.len(), 2 + out.extra);
        assert!(out.cov <= 0.2);
    }

    #[test]
    fn cap_bounds_the_extra_budget() {
        // Alternating samples never converge; must stop at the cap.
        let policy = StabilityPolicy { target_cov: 0.01, max_extra: 5, min_samples: 3 };
        let mut flip = false;
        let out = stabilize(vec![1.0, 3.0], &policy, |_| {
            flip = !flip;
            Some(if flip { 1.0 } else { 3.0 })
        });
        assert_eq!(out.extra, 5);
        assert!(!out.stable);
    }

    #[test]
    fn more_returning_none_degrades_gracefully() {
        let policy = StabilityPolicy { target_cov: 0.001, max_extra: 100, min_samples: 3 };
        let out = stabilize(vec![1.0, 2.0, 3.0], &policy, |i| if i < 2 { Some(2.0) } else { None });
        assert_eq!(out.extra, 2);
        assert!(!out.stable);
        assert_eq!(out.samples.len(), 5);
    }

    #[test]
    fn min_samples_forces_measurement_of_tiny_cells() {
        // A single sample has cov 0 but must still be grown to
        // min_samples before it can be declared stable.
        let policy = StabilityPolicy { target_cov: 0.5, max_extra: 10, min_samples: 3 };
        let out = stabilize(vec![1.0], &policy, |_| Some(1.0));
        assert!(out.samples.len() >= 3);
        assert!(out.stable);
    }

    #[test]
    fn dispersion_tail_ratio() {
        let (cov, tail) = dispersion(&[1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(cov > 1.0);
        assert!(tail > 5.0, "p99/p50 = {tail}");
        assert_eq!(dispersion(&[]), (0.0, 0.0));
        assert_eq!(dispersion(&[4.2]), (0.0, 1.0));
    }
}
