//! Campaign supervision for long variability experiments.
//!
//! The paper's measurement campaigns run for hours across many
//! (runtime, schedule, affinity) cells; a single transient failure — an
//! injected-fault storm, a timeout, a panicking repetition — should cost
//! one retry, not the whole campaign, and a `kill -9` should cost at
//! most the unit in flight. This crate provides the four pieces:
//!
//! - [`classify`]: maps every typed backend error ([`ompvar_sim::SimError`],
//!   [`ompvar_rt::RtError`], region validation) to *transient* (retry)
//!   or *permanent* (quarantine), with deliberately exhaustive matches
//!   so new error variants are a compile error here, not silent drift.
//! - [`backoff`]: seeded deterministic exponential backoff with jitter —
//!   a pure function of `(seed, attempt)`, so replays are bit-identical.
//! - [`checkpoint`]: the versioned `ompvar-checkpoint/1` JSONL manifest,
//!   flushed through [`fsio::atomic_write`] so readers never observe a
//!   torn file; `--resume` replays completed units from it.
//! - [`supervisor`]: the engine tying them together, emitting
//!   [`ompvar_obs`] attempt spans and supervisor instants so recovery
//!   history lands in the same Chrome traces as the runs themselves.
//! - [`adaptive`]: dispersion-driven re-measurement — extra repetitions
//!   for unstable cells only, capped and recorded.
//! - [`executor`]: the fault-tolerant parallel layer — a work-stealing
//!   pool of workers, each journaling into its own shard manifest, with
//!   a hang watchdog, per-worker panic isolation, and a deterministic
//!   shard merge on resume.

#![warn(missing_docs)]

pub mod adaptive;
pub mod backoff;
pub mod checkpoint;
pub mod classify;
pub mod executor;
pub mod fsio;
pub mod supervisor;

pub use adaptive::{dispersion, stabilize, Stabilized, StabilityPolicy};
pub use backoff::{name_seed, Backoff, BackoffCfg};
pub use checkpoint::{
    create_shards, existing_shards, resume_shards, shard_path, CheckpointError, Entry, Header,
    Manifest, RetryRecord, UnitStatus, SCHEMA,
};
pub use executor::{
    resolve_jobs, run_campaign, CampaignRun, ExecUnit, ExecutorConfig, Progress, UnitResult,
    Watchdog,
};
pub use classify::{classify, classify_panic, classify_region, classify_sim, Transience};
pub use fsio::atomic_write;
pub use supervisor::{
    attempt_seed, Checkpointable, Outcome, Supervisor, SupervisorConfig, UnitError,
};
