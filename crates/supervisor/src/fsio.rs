//! Crash-safe file writes: temp file in the target directory + rename.
//!
//! A reader can never observe a half-written artifact: until the final
//! `rename` the target keeps its previous content (or stays absent), and
//! rename within one directory is atomic on POSIX filesystems. This is
//! what the checkpoint manifest and the CLI's `--report-json` output go
//! through, so a `kill -9` mid-write leaves either the old complete file
//! or the new complete file — never a truncated one.

use std::fs;
use std::io;
use std::path::Path;

/// Write `contents` to `path` atomically. The parent directory is
/// created on demand; the temp file lives next to the target (rename
/// across filesystems is not atomic) and is removed on failure.
pub fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => {
            fs::create_dir_all(d)?;
            d.to_path_buf()
        }
        _ => std::path::PathBuf::from("."),
    };
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    // One temp name per process: concurrent *processes* don't collide,
    // and a leftover from a killed run is simply overwritten next time.
    let tmp = dir.join(format!(".{stem}.{}.tmp", std::process::id()));
    let write_and_rename = (|| {
        fs::write(&tmp, contents)?;
        fs::rename(&tmp, path)
    })();
    if write_and_rename.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    write_and_rename
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ompvar_fsio_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces_without_tmp_residue() {
        let d = tmpdir("ok");
        let p = d.join("report.json");
        atomic_write(&p, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"{\"v\":1}");
        atomic_write(&p, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"{\"v\":2}");
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let d = tmpdir("mkdir");
        let p = d.join("a/b/c.json");
        atomic_write(&p, b"x").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"x");
        let _ = fs::remove_dir_all(&d);
    }

    /// The regression the non-atomic `--report-json` path had: a failed
    /// write must leave any pre-existing target byte-identical (here the
    /// rename fails because the target is an occupied directory), and no
    /// temp file may survive.
    #[test]
    fn failed_write_leaves_target_and_no_residue() {
        let d = tmpdir("fail");
        let target = d.join("report.json");
        fs::create_dir_all(target.join("occupied")).unwrap();
        assert!(atomic_write(&target, b"new").is_err());
        assert!(target.join("occupied").exists(), "target untouched");
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&d);
    }
}
