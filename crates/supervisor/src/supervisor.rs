//! The campaign supervisor: retry, quarantine, checkpoint, resume.
//!
//! A campaign is a sequence of named *units* (experiments, or cells
//! within one). [`Supervisor::supervise`] runs one unit to a terminal
//! state: it calls the unit closure with an attempt number, classifies
//! every failure as transient or permanent ([`crate::classify`]),
//! retries transients after a seeded deterministic backoff
//! ([`crate::backoff`]) up to the per-unit budget, and quarantines units
//! that exhaust it or fail permanently. Each terminal state is journaled
//! to the checkpoint manifest before the outcome is returned, so a crash
//! at any instant loses at most the unit in flight; on resume, journaled
//! units are replayed from their checkpointed payload instead of
//! re-running.
//!
//! Everything the supervisor does is also a trace: each attempt is an
//! [`SpanKind::Attempt`] span and every retry / quarantine / resume /
//! checkpoint flush an instant event, on one timeline lane per unit —
//! exported through the usual Chrome-trace pipeline so a campaign's
//! recovery history is visible in Perfetto next to the runs themselves.

use crate::backoff::{name_seed, Backoff, BackoffCfg};
use crate::checkpoint::{Entry, Manifest, RetryRecord, UnitStatus};
use crate::classify::Transience;
use ompvar_obs::json::Value;
use ompvar_obs::{EventKind, InstantKind, SpanKind, Trace, TraceEvent, CORE_UNKNOWN};
use std::time::Instant;

/// A result type that can live in the checkpoint manifest.
pub trait Checkpointable: Sized {
    /// Serialize into a manifest payload.
    fn to_ckpt(&self) -> Value;
    /// Rebuild from a manifest payload; `None` marks a corrupt/alien
    /// payload (the unit then re-runs instead of replaying).
    fn from_ckpt(v: &Value) -> Option<Self>;
}

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Campaign seed: keys backoff jitter and attempt-seed derivation.
    pub seed: u64,
    /// Retries granted per unit after the first attempt.
    pub max_retries: u32,
    /// Backoff curve between attempts.
    pub backoff: BackoffCfg,
    /// Whether to actually sleep the backoff delays (tests disable this;
    /// the schedule is recorded either way).
    pub sleep: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            seed: 0,
            max_retries: 2,
            backoff: BackoffCfg::default(),
            sleep: true,
        }
    }
}

/// One unit failure, already classified by the caller (who has the typed
/// error in hand; the supervisor only needs the policy-relevant facts).
#[derive(Debug, Clone)]
pub struct UnitError {
    /// Rendered error, journaled verbatim.
    pub message: String,
    /// Retry policy class.
    pub transience: Transience,
    /// Whether the watchdog reaped this attempt for exceeding its
    /// wall-clock deadline (drives the `supervisor_timeout` instant).
    pub timed_out: bool,
}

impl UnitError {
    /// Classify-and-wrap a runtime error.
    pub fn from_rt(e: &ompvar_rt::RtError) -> UnitError {
        UnitError {
            message: e.to_string(),
            transience: crate::classify::classify(e),
            timed_out: false,
        }
    }

    /// Wrap a caught panic payload (transient by policy).
    pub fn from_panic(msg: String) -> UnitError {
        let transience = crate::classify::classify_panic(&msg);
        UnitError { message: format!("panic: {msg}"), transience, timed_out: false }
    }

    /// A watchdog-reaped hang. Timeouts are transient by policy: a hang
    /// on a loaded host is exactly the "noisy neighbor" class of failure
    /// the retry/backoff path exists for.
    pub fn timeout(msg: String) -> UnitError {
        UnitError { message: msg, transience: Transience::Transient, timed_out: true }
    }
}

/// Terminal state of one supervised unit.
#[derive(Debug)]
pub enum Outcome<R> {
    /// The unit produced a result.
    Completed {
        /// The unit's result (fresh or replayed).
        value: R,
        /// Attempts consumed (1 when it passed first try).
        attempts: u32,
        /// Retries that preceded success.
        retries: Vec<RetryRecord>,
        /// Whether the result was replayed from the checkpoint manifest.
        from_checkpoint: bool,
    },
    /// The unit failed permanently or exhausted its retry budget.
    Quarantined {
        /// Attempts consumed.
        attempts: u32,
        /// Every failure, in order; the last one is terminal.
        retries: Vec<RetryRecord>,
        /// Whether the verdict was replayed from the manifest.
        from_checkpoint: bool,
    },
}

impl<R> Outcome<R> {
    /// Attempts consumed either way.
    pub fn attempts(&self) -> u32 {
        match self {
            Outcome::Completed { attempts, .. } | Outcome::Quarantined { attempts, .. } => {
                *attempts
            }
        }
    }

    /// Whether the outcome came from the checkpoint manifest.
    pub fn from_checkpoint(&self) -> bool {
        match self {
            Outcome::Completed { from_checkpoint, .. }
            | Outcome::Quarantined { from_checkpoint, .. } => *from_checkpoint,
        }
    }
}

/// The seed a unit should use for `attempt`. Attempt 0 uses the base
/// seed unchanged — a never-retried supervised run is bit-identical to
/// an unsupervised one — and each retry gets a decorrelated derivative.
pub fn attempt_seed(base: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        base
    } else {
        let mut x = base ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// The campaign supervisor. See the module docs.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    manifest: Option<Manifest>,
    events: Vec<TraceEvent>,
    t0: Instant,
    lanes: u32,
    fixed_lane: Option<u32>,
}

impl Supervisor {
    /// Supervisor without a checkpoint journal (in-memory campaigns,
    /// tests).
    pub fn new(cfg: SupervisorConfig) -> Supervisor {
        Supervisor {
            cfg,
            manifest: None,
            events: Vec::new(),
            t0: Instant::now(),
            lanes: 0,
            fixed_lane: None,
        }
    }

    /// Attach a checkpoint manifest: completions are journaled, and
    /// units the manifest already holds are replayed.
    pub fn with_manifest(mut self, manifest: Manifest) -> Supervisor {
        self.manifest = Some(manifest);
        self
    }

    /// Pin every event this supervisor emits to one trace lane. The
    /// parallel executor gives each worker its own supervisor pinned to
    /// the worker index, so the merged Chrome trace shows one track per
    /// worker instead of one per unit.
    pub fn with_lane(mut self, lane: u32) -> Supervisor {
        self.fixed_lane = Some(lane);
        self
    }

    /// Re-base the trace clock on a shared campaign epoch so events from
    /// per-worker supervisors interleave correctly after merging.
    pub fn with_t0(mut self, t0: Instant) -> Supervisor {
        self.t0 = t0;
        self
    }

    /// The active policy.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// The attached manifest, if any.
    pub fn manifest(&self) -> Option<&Manifest> {
        self.manifest.as_ref()
    }

    /// Nanoseconds since the supervisor started (its trace clock).
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Drain the supervisor's own trace (attempt spans, retry /
    /// quarantine / resume / checkpoint instants) for Chrome export.
    pub fn take_trace(&mut self) -> Trace {
        Trace::new(std::mem::take(&mut self.events))
    }

    fn emit(&mut self, lane: u32, kind: EventKind) {
        let time_ns = self.now_ns();
        let lane = self.fixed_lane.unwrap_or(lane);
        self.events.push(TraceEvent { time_ns, thread: lane, core: CORE_UNKNOWN, kind });
    }

    /// Emit a free-standing instant on this supervisor's lane (lane 0
    /// unless pinned). The executor uses this for steal/interrupt marks
    /// that have no owning unit.
    pub fn emit_instant(&mut self, kind: InstantKind) {
        self.emit(0, EventKind::Instant(kind));
    }

    fn journal(&mut self, lane: u32, entry: Entry) {
        if let Some(m) = &mut self.manifest {
            match m.append(entry) {
                Ok(()) => self.emit(lane, EventKind::Instant(InstantKind::SupervisorCheckpoint)),
                // Journaling is best-effort: losing the checkpoint must
                // not fail the campaign, only its resumability.
                Err(e) => eprintln!(
                    "warning: could not flush checkpoint manifest {}: {e}",
                    m.path().display()
                ),
            }
        }
    }

    /// Run `name` to a terminal state. `run` is invoked with the attempt
    /// number (0-based); derive per-attempt seeds with [`attempt_seed`].
    pub fn supervise<R: Checkpointable>(
        &mut self,
        name: &str,
        mut run: impl FnMut(u32) -> Result<R, UnitError>,
    ) -> Outcome<R> {
        let lane = self.lanes;
        self.lanes += 1;

        // Resume path: replay a journaled terminal state.
        if let Some(entry) = self.manifest.as_ref().and_then(|m| m.completed(name)) {
            let entry = entry.clone();
            match entry.status {
                UnitStatus::Ok => {
                    if let Some(value) = entry.payload.as_ref().and_then(R::from_ckpt) {
                        self.emit(lane, EventKind::Instant(InstantKind::SupervisorResume));
                        return Outcome::Completed {
                            value,
                            attempts: entry.attempts,
                            retries: entry.retries,
                            from_checkpoint: true,
                        };
                    }
                    eprintln!(
                        "warning: checkpoint payload for {name} is unreadable; re-running"
                    );
                }
                UnitStatus::Quarantined => {
                    self.emit(lane, EventKind::Instant(InstantKind::SupervisorResume));
                    return Outcome::Quarantined {
                        attempts: entry.attempts,
                        retries: entry.retries,
                        from_checkpoint: true,
                    };
                }
            }
        }

        let backoff = Backoff::new(self.cfg.backoff, self.cfg.seed ^ name_seed(name));
        let mut retries: Vec<RetryRecord> = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            self.emit(lane, EventKind::Begin(SpanKind::Attempt));
            let result = run(attempt);
            self.emit(lane, EventKind::End(SpanKind::Attempt));
            match result {
                Ok(value) => {
                    self.journal(
                        lane,
                        Entry {
                            name: name.to_string(),
                            status: UnitStatus::Ok,
                            attempts: attempt + 1,
                            retries: retries.clone(),
                            payload: Some(value.to_ckpt()),
                        },
                    );
                    return Outcome::Completed {
                        value,
                        attempts: attempt + 1,
                        retries,
                        from_checkpoint: false,
                    };
                }
                Err(err) => {
                    if err.timed_out {
                        self.emit(lane, EventKind::Instant(InstantKind::SupervisorTimeout));
                    }
                    let retryable =
                        err.transience == Transience::Transient && attempt < self.cfg.max_retries;
                    if retryable {
                        let backoff_ms = backoff.delay_ms(attempt);
                        retries.push(RetryRecord {
                            attempt,
                            error: err.message,
                            transience: err.transience,
                            backoff_ms,
                        });
                        self.emit(lane, EventKind::Instant(InstantKind::SupervisorRetry));
                        if self.cfg.sleep {
                            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                        }
                        attempt += 1;
                    } else {
                        retries.push(RetryRecord {
                            attempt,
                            error: err.message,
                            transience: err.transience,
                            backoff_ms: 0,
                        });
                        self.emit(lane, EventKind::Instant(InstantKind::SupervisorQuarantine));
                        self.journal(
                            lane,
                            Entry {
                                name: name.to_string(),
                                status: UnitStatus::Quarantined,
                                attempts: attempt + 1,
                                retries: retries.clone(),
                                payload: None,
                            },
                        );
                        return Outcome::Quarantined {
                            attempts: attempt + 1,
                            retries,
                            from_checkpoint: false,
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Header;
    use ompvar_obs::json;

    impl Checkpointable for f64 {
        fn to_ckpt(&self) -> Value {
            Value::Num(*self)
        }
        fn from_ckpt(v: &Value) -> Option<Self> {
            v.as_f64()
        }
    }

    fn cfg() -> SupervisorConfig {
        SupervisorConfig { seed: 11, sleep: false, ..SupervisorConfig::default() }
    }

    fn transient(msg: &str) -> UnitError {
        UnitError { message: msg.into(), transience: Transience::Transient, timed_out: false }
    }

    fn permanent(msg: &str) -> UnitError {
        UnitError { message: msg.into(), transience: Transience::Permanent, timed_out: false }
    }

    #[test]
    fn first_try_success_consumes_one_attempt() {
        let mut sup = Supervisor::new(cfg());
        let out = sup.supervise("unit", |_| Ok(1.5f64));
        match out {
            Outcome::Completed { value, attempts, from_checkpoint, .. } => {
                assert_eq!(value, 1.5);
                assert_eq!(attempts, 1);
                assert!(!from_checkpoint);
            }
            other => panic!("{other:?}"),
        }
        let trace = sup.take_trace();
        assert_eq!(trace.count_of(SpanKind::Attempt), 1);
        assert_eq!(trace.instants_of(InstantKind::SupervisorRetry), 0);
    }

    #[test]
    fn transient_failures_retry_then_succeed() {
        let mut sup = Supervisor::new(cfg());
        let out = sup.supervise("flaky", |attempt| {
            if attempt < 2 {
                Err(transient("deadlock"))
            } else {
                Ok(2.0f64)
            }
        });
        match out {
            Outcome::Completed { attempts, retries, .. } => {
                assert_eq!(attempts, 3);
                assert_eq!(retries.len(), 2);
                assert!(retries.iter().all(|r| r.backoff_ms > 0));
            }
            other => panic!("{other:?}"),
        }
        let trace = sup.take_trace();
        assert_eq!(trace.count_of(SpanKind::Attempt), 3);
        assert_eq!(trace.instants_of(InstantKind::SupervisorRetry), 2);
    }

    #[test]
    fn permanent_failure_quarantines_without_retry() {
        let mut sup = Supervisor::new(cfg());
        let out = sup.supervise("broken", |_| -> Result<f64, UnitError> {
            Err(permanent("invalid region"))
        });
        match out {
            Outcome::Quarantined { attempts, retries, .. } => {
                assert_eq!(attempts, 1);
                assert_eq!(retries.len(), 1);
                assert_eq!(retries[0].backoff_ms, 0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sup.take_trace().instants_of(InstantKind::SupervisorQuarantine), 1);
    }

    #[test]
    fn budget_exhaustion_quarantines() {
        let mut sup = Supervisor::new(cfg());
        let mut calls = 0;
        let out = sup.supervise("doomed", |_| -> Result<f64, UnitError> {
            calls += 1;
            Err(transient("timeout"))
        });
        // max_retries = 2 → 3 attempts total.
        assert_eq!(calls, 3);
        assert!(matches!(out, Outcome::Quarantined { attempts: 3, .. }));
    }

    #[test]
    fn retry_schedule_is_deterministic_per_seed_and_name() {
        let run_campaign = || {
            let mut sup = Supervisor::new(cfg());
            let out = sup.supervise("flaky", |attempt| {
                if attempt < 2 {
                    Err(transient("storm"))
                } else {
                    Ok(1.0f64)
                }
            });
            match out {
                Outcome::Completed { retries, .. } => {
                    retries.iter().map(|r| r.backoff_ms).collect::<Vec<_>>()
                }
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(run_campaign(), run_campaign());
    }

    #[test]
    fn checkpoint_then_resume_replays_without_rerunning() {
        let dir = std::env::temp_dir()
            .join(format!("ompvar_sup_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.jsonl");
        let header = Header { seed: 11, fast: true, targets: vec!["a".into(), "b".into()] };

        // First run: "a" completes (with one retry), "b" quarantines;
        // the process "crashes" here.
        let m = Manifest::create(&path, header.clone()).unwrap();
        let mut sup = Supervisor::new(cfg()).with_manifest(m);
        sup.supervise("a", |attempt| {
            if attempt == 0 {
                Err(transient("noise"))
            } else {
                Ok(42.0f64)
            }
        });
        sup.supervise("b", |_| -> Result<f64, UnitError> {
            Err(permanent("bad"))
        });

        // Resumed run: both units replay from the journal; the closures
        // must not be called at all.
        let m = Manifest::open_resume(&path, &header).unwrap();
        let mut sup = Supervisor::new(cfg()).with_manifest(m);
        let a = sup.supervise("a", |_| -> Result<f64, UnitError> {
            panic!("unit a must replay from checkpoint")
        });
        match a {
            Outcome::Completed { value, attempts, retries, from_checkpoint } => {
                assert_eq!(value, 42.0);
                assert_eq!(attempts, 2);
                assert_eq!(retries.len(), 1);
                assert!(from_checkpoint);
            }
            other => panic!("{other:?}"),
        }
        let b = sup.supervise("b", |_| -> Result<f64, UnitError> {
            panic!("unit b must replay from checkpoint")
        });
        assert!(matches!(b, Outcome::Quarantined { from_checkpoint: true, .. }));
        let trace = sup.take_trace();
        assert_eq!(trace.instants_of(InstantKind::SupervisorResume), 2);
        assert_eq!(trace.count_of(SpanKind::Attempt), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeouts_emit_their_instant_and_ride_the_retry_path() {
        let mut sup = Supervisor::new(cfg());
        let out = sup.supervise("hung", |attempt| {
            if attempt == 0 {
                Err(UnitError::timeout("unit exceeded deadline".into()))
            } else {
                Ok(3.0f64)
            }
        });
        assert!(matches!(out, Outcome::Completed { attempts: 2, .. }));
        let trace = sup.take_trace();
        assert_eq!(trace.instants_of(InstantKind::SupervisorTimeout), 1);
        assert_eq!(trace.instants_of(InstantKind::SupervisorRetry), 1);
    }

    #[test]
    fn pinned_lane_routes_every_event_to_one_track() {
        let mut sup = Supervisor::new(cfg()).with_lane(5);
        sup.supervise("u1", |_| Ok(1.0f64));
        sup.supervise("u2", |_| Ok(2.0f64));
        sup.emit_instant(InstantKind::SupervisorSteal);
        let trace = sup.take_trace();
        assert!(!trace.events.is_empty());
        assert!(trace.events.iter().all(|e| e.thread == 5));
    }

    #[test]
    fn attempt_seed_keeps_base_for_first_attempt() {
        assert_eq!(attempt_seed(1234, 0), 1234);
        assert_ne!(attempt_seed(1234, 1), 1234);
        assert_ne!(attempt_seed(1234, 1), attempt_seed(1234, 2));
        // Deterministic.
        assert_eq!(attempt_seed(1234, 3), attempt_seed(1234, 3));
    }

    #[test]
    fn supervisor_trace_is_wellformed_chrome_exportable() {
        let mut sup = Supervisor::new(cfg());
        sup.supervise("u1", |a| if a == 0 { Err(transient("x")) } else { Ok(1.0f64) });
        sup.supervise("u2", |_| Ok(2.0f64));
        let trace = sup.take_trace();
        ompvar_obs::wellformed::check(&trace).expect("attempt spans pair up");
        let doc = ompvar_obs::chrome_trace(&trace, &[], "supervisor");
        json::parse(&doc).expect("valid chrome JSON");
        assert!(doc.contains("\"supervisor_retry\""), "{doc}");
    }
}
