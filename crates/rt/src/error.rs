//! Typed runtime errors shared by both backends.
//!
//! The simulated backend surfaces the engine's structured
//! [`SimError`] (deadlock diagnostics, virtual-time budget overruns,
//! malformed programs); the native backend surfaces wall-clock deadline
//! violations from its bounded spin waits. Either way a region run that
//! cannot complete returns an `Err` the caller can render, instead of
//! hanging or panicking.

use crate::region::RegionError;
use ompvar_sim::error::SimError;
use std::time::Duration;

/// Why a region run failed.
#[derive(Debug, Clone)]
pub enum RtError {
    /// The simulated engine stopped with a typed error (deadlock,
    /// time/event budget, malformed program).
    Sim(SimError),
    /// A native-backend wait did not complete within the configured
    /// deadline — the real-thread analogue of a simulated deadlock.
    Timeout {
        /// The construct kind that was waiting when the deadline hit.
        construct: &'static str,
        /// The configured deadline.
        deadline: Duration,
    },
    /// The region failed structural validation
    /// ([`crate::region::RegionSpec::validate`]) — it was rejected before
    /// either backend ran it.
    InvalidRegion(RegionError),
}

impl From<SimError> for RtError {
    fn from(e: SimError) -> Self {
        RtError::Sim(e)
    }
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Sim(e) => write!(f, "simulated run failed: {e}"),
            RtError::Timeout {
                construct,
                deadline,
            } => write!(
                f,
                "native run exceeded its {deadline:?} deadline waiting at a {construct}"
            ),
            RtError::InvalidRegion(e) => write!(f, "invalid region: {e}"),
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Sim(e) => Some(e),
            RtError::Timeout { .. } => None,
            RtError::InvalidRegion(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = RtError::Timeout {
            construct: "barrier",
            deadline: Duration::from_secs(3),
        };
        let s = e.to_string();
        assert!(s.contains("3s"), "{s}");
        assert!(s.contains("barrier"), "{s}");
    }

    #[test]
    fn sim_errors_convert_and_chain() {
        let sim = SimError::EventBudgetExceeded {
            budget: 10,
            partial: Box::default(),
        };
        let e: RtError = sim.into();
        assert!(e.to_string().contains("event budget"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
