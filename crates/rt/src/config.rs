//! Runtime configuration: the affinity environment of a team, mirroring
//! the `OMP_PLACES` / `OMP_PROC_BIND` environment variables, and the
//! result type shared by both backends.

use ompvar_obs::{MetricsRegistry, RunAttribution, SpanKind, SpanStats, Trace};
use ompvar_sim::trace::{Counters, FreqSample, SemanticEffects};
use ompvar_sim::task::TaskStats;
use ompvar_topology::{Places, ProcBind};
use std::collections::BTreeMap;

/// Affinity configuration of a team.
#[derive(Debug, Clone, PartialEq)]
pub struct RtConfig {
    /// Place list (`OMP_PLACES`).
    pub places: Places,
    /// Binding policy (`OMP_PROC_BIND`).
    pub bind: ProcBind,
}

impl RtConfig {
    /// Threads pinned one-per-place, close to the master — the paper's
    /// "after thread-pinning" configuration.
    pub fn pinned_close(places: Places) -> Self {
        RtConfig {
            places,
            bind: ProcBind::Close,
        }
    }

    /// Unbound threads (`OMP_PROC_BIND=false`) — the paper's "before
    /// thread-pinning" configuration; the OS places and migrates threads.
    pub fn unbound() -> Self {
        RtConfig {
            places: Places::Threads(None),
            bind: ProcBind::False,
        }
    }

    /// Parse from `OMP_PLACES`/`OMP_PROC_BIND`-style strings.
    pub fn from_env_strs(places: &str, bind: &str) -> Result<Self, String> {
        let places = Places::parse(places).map_err(|e| e.to_string())?;
        let bind =
            ProcBind::parse(bind).ok_or_else(|| format!("invalid OMP_PROC_BIND '{bind}'"))?;
        Ok(RtConfig { places, bind })
    }
}

/// Result of running a region on either backend.
#[derive(Debug, Clone, Default)]
pub struct RegionResult {
    /// Measured intervals, µs, keyed by marker-pair id: entry `k` holds
    /// the durations of every `MarkBegin(k)`/`MarkEnd(k)` pair on the
    /// master thread, in execution order.
    pub intervals_us: BTreeMap<u32, Vec<f64>>,
    /// Wall time of the whole region, µs.
    pub wall_us: f64,
    /// Frequency-logger samples (simulated backend only, when enabled).
    pub freq_samples: Vec<FreqSample>,
    /// Engine counters (simulated backend only).
    pub counters: Option<Counters>,
    /// Per-team-thread execution statistics, indexed by rank (simulated
    /// backend only): busy/wait/preempted time, migrations, preemptions —
    /// the raw material for straggler analyses.
    pub thread_stats: Vec<TaskStats>,
    /// Schedule-independent semantic effects of the run, harvested from
    /// the backend's sync-object counters. Both backends fill this, which
    /// is what makes runs differentially comparable (see `ompvar-qcheck`).
    pub effects: SemanticEffects,
    /// Construct span/instant timeline; `Some` iff the backend ran with
    /// tracing enabled. Export with `ompvar_obs::chrome_trace` or fold
    /// into percentiles with [`RegionResult::span_stats`].
    pub trace: Option<Trace>,
    /// Causal time-attribution ledger: each thread's wall time charged to
    /// typed sources (preemption, migration, SMT co-run, sub-nominal
    /// frequency, sync wait, …) plus useful compute, with a per-thread
    /// conservation invariant. `Some` iff the backend ran with
    /// attribution enabled.
    pub attribution: Option<RunAttribution>,
}

impl RegionResult {
    /// The per-repetition times (µs) of the default measured interval 0.
    ///
    /// # Panics
    ///
    /// Panics if the region recorded no interval 0.
    pub fn reps(&self) -> &[f64] {
        self.intervals_us
            .get(&0)
            .expect("region recorded no measured interval 0")
    }

    /// Per-construct latency percentiles (p50/p95/p99/max), computed from
    /// the recorded trace. Empty when the run was not traced or recorded
    /// no spans of any kind.
    pub fn span_stats(&self) -> Vec<(SpanKind, SpanStats)> {
        self.trace
            .as_ref()
            .map(|t| MetricsRegistry::from_trace(t).snapshot())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_round_trip() {
        let c = RtConfig::from_env_strs("cores(4)", "close").unwrap();
        assert_eq!(c.bind, ProcBind::Close);
        assert_eq!(c.places, Places::Cores(Some(4)));
        assert!(RtConfig::from_env_strs("cores(4)", "sideways").is_err());
        assert!(RtConfig::from_env_strs("corez", "close").is_err());
    }

    #[test]
    fn unbound_has_no_binding() {
        assert_eq!(RtConfig::unbound().bind, ProcBind::False);
    }

    #[test]
    #[should_panic(expected = "no measured interval")]
    fn reps_panics_without_interval() {
        RegionResult::default().reps();
    }
}
