//! The simulated backend: lowers a [`RegionSpec`] onto the
//! `ompvar-sim` discrete-event engine and runs it on a modeled machine.
//!
//! All ranks execute the same construct list, so lowering walks the tree
//! twice with identical traversal order: once to allocate the shared sync
//! objects (one barrier per barrier construct, one lock per critical,
//! etc.), then once per rank to emit that rank's op program, consuming the
//! allocation sequence by index.

use crate::config::{RegionResult, RtConfig};
use crate::error::RtError;
use crate::region::{delay_cycles, Construct, RegionSpec, Schedule};
use ompvar_sim::engine::Simulator;
use ompvar_sim::fault::FaultPlan;
use ompvar_sim::params::SimParams;
use ompvar_sim::sync::{LoopSchedule, LoopSpec};
use ompvar_sim::task::{CorunClass, ObjId, Op, Program, TaskId};
use ompvar_sim::trace::{ObjEffects, SemanticEffects, SimReport};
use ompvar_sim::time::{Time, SEC, US};
use ompvar_topology::{assign_places, MachineSpec, ProcBind};
use std::collections::{BTreeMap, BTreeSet};

/// Frequency-logger configuration for simulated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqLoggerCfg {
    /// Hardware thread hosting the logger (costs CPU there), or `None`
    /// for a free observer.
    pub cpu: Option<usize>,
    /// Sampling period.
    pub period: Time,
    /// CPU cost per sample.
    pub cost: Time,
}

impl FreqLoggerCfg {
    /// The paper's setup: a Python logger on a dedicated spare core,
    /// sampling every 50 ms at ~60 µs of CPU per sweep.
    pub fn on_spare_core(cpu: usize) -> Self {
        FreqLoggerCfg {
            cpu: Some(cpu),
            period: 50_000 * US,
            cost: 60 * US,
        }
    }
}

/// Simulated OpenMP-style runtime.
#[derive(Debug, Clone)]
pub struct SimRuntime {
    /// Machine model to run on.
    pub machine: MachineSpec,
    /// Simulator parameters (noise, DVFS, scheduler, sync costs).
    pub params: SimParams,
    /// Team affinity configuration.
    pub config: RtConfig,
    /// Optional frequency logger.
    pub freq_logger: Option<FreqLoggerCfg>,
    /// Virtual-time budget for one region run.
    pub time_limit: Time,
    /// Fault injections delivered during every run (empty: none).
    pub faults: FaultPlan,
    /// Record construct span timelines into [`RegionResult::trace`].
    /// Tracing never perturbs virtual time: traced and untraced runs of
    /// the same seed are time-identical.
    pub tracing: bool,
    /// Charge every nanosecond of each thread's wall time to a typed
    /// cause ([`RegionResult::attribution`]). Like tracing, attribution
    /// never perturbs virtual time: attributed and plain runs of the
    /// same seed are time-identical.
    pub attribution: bool,
    /// Route runs through the engine's *reference path*: the
    /// pre-optimization binary-heap event queue and naive topology
    /// lookups. Slower, independently implemented, and required to be
    /// observably identical to the optimized path — the yardstick for
    /// qcheck oracle #11 and the CI perf gate's machine normalization.
    pub reference_engine: bool,
}

impl SimRuntime {
    /// Runtime for `machine` with its calibrated parameters.
    pub fn new(machine: MachineSpec, config: RtConfig) -> Self {
        let params = SimParams::for_machine(&machine);
        SimRuntime {
            machine,
            params,
            config,
            freq_logger: None,
            time_limit: 3_000 * SEC,
            faults: FaultPlan::new(),
            tracing: false,
            attribution: false,
            reference_engine: false,
        }
    }

    /// Override the simulator parameters.
    pub fn with_params(mut self, params: SimParams) -> Self {
        self.params = params;
        self
    }

    /// Enable the frequency logger.
    pub fn with_freq_logger(mut self, cfg: FreqLoggerCfg) -> Self {
        self.freq_logger = Some(cfg);
        self
    }

    /// Inject `faults` into every run of this runtime.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override the virtual-time budget for one region run.
    pub fn with_time_limit(mut self, limit: Time) -> Self {
        self.time_limit = limit;
        self
    }

    /// Enable or disable span tracing (see [`SimRuntime::tracing`]).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enable or disable causal time attribution (see
    /// [`SimRuntime::attribution`]).
    pub fn with_attribution(mut self, on: bool) -> Self {
        self.attribution = on;
        self
    }

    /// Route runs through the engine's reference path (see
    /// [`SimRuntime::reference_engine`]).
    pub fn with_reference_engine(mut self, on: bool) -> Self {
        self.reference_engine = on;
        self
    }

    /// Topology contention multiplier for a team bound as configured.
    fn span_factor(&self, region: &RegionSpec) -> f64 {
        let cross = self.params.sync.cross_socket_factor;
        if self.config.bind == ProcBind::False {
            // Unbound threads roam the whole node: worst case.
            return cross;
        }
        let assignment = assign_places(
            &self.machine,
            &self.config.places,
            self.config.bind,
            region.n_threads,
        );
        let hws: Vec<_> = assignment
            .iter_bound()
            .map(|(_, p)| p.first())
            .collect();
        if self.machine.sockets_touched(&hws) > 1 {
            cross
        } else if self.machine.numas_touched(&hws) > 1 {
            (1.0 + cross) / 2.0
        } else {
            1.0
        }
    }

    /// Run `region`, deterministically from `seed`.
    ///
    /// Returns [`RtError::Sim`] when the engine stops early: a deadlock
    /// (with per-task blocked-on diagnostics), the virtual-time budget
    /// in [`SimRuntime::time_limit`], or a malformed program.
    pub fn run(&self, region: &RegionSpec, seed: u64) -> Result<RegionResult, RtError> {
        let (sim, allocs, marker_pairs, master) = self.prepare(region, seed)?;
        let mut report = sim.run(self.time_limit).map_err(RtError::Sim)?;
        let trace = report.trace.take();
        let attribution = report.attribution.take();
        let mut result = RegionResult {
            wall_us: report.final_time as f64 / 1e3,
            freq_samples: report.freq_samples.clone(),
            counters: Some(report.counters),
            thread_stats: report.task_stats.iter().map(|&(_, s)| s).collect(),
            effects: harvest_effects(&allocs, &report),
            trace,
            attribution,
            ..Default::default()
        };
        for k in marker_pairs {
            let us: Vec<f64> = report
                .intervals(master, 2 * k, 2 * k + 1)
                .into_iter()
                .map(|t| t as f64 / 1e3)
                .collect();
            result.intervals_us.insert(k, us);
        }
        Ok(result)
    }

    /// Run `region` like [`SimRuntime::run`], but return the engine's raw
    /// [`SimReport`] instead of folding it into a [`RegionResult`].
    ///
    /// This is the surface the determinism golden suite digests: every
    /// field of the report (final time, markers, counters, per-task
    /// stats, object effects, frequency samples, trace) must be
    /// bit-identical across replays and across the optimized/reference
    /// engine paths.
    ///
    /// # Errors
    ///
    /// Same contract as [`SimRuntime::run`].
    pub fn run_report(&self, region: &RegionSpec, seed: u64) -> Result<SimReport, RtError> {
        let (sim, _, _, _) = self.prepare(region, seed)?;
        sim.run(self.time_limit).map_err(RtError::Sim)
    }

    /// Validate, lower, and configure one run: the shared front half of
    /// [`SimRuntime::run`] and [`SimRuntime::run_report`].
    #[allow(clippy::type_complexity)]
    fn prepare(
        &self,
        region: &RegionSpec,
        seed: u64,
    ) -> Result<(Simulator, Vec<Alloc>, BTreeSet<u32>, TaskId), RtError> {
        region.validate().map_err(RtError::InvalidRegion)?;
        let mut sim = Simulator::new(self.machine.clone(), self.params.clone(), seed);
        let span = self.span_factor(region);
        let mut lower = Lowerer {
            sim: &mut sim,
            machine: &self.machine,
            n_threads: region.n_threads,
            span,
            allocs: Vec::new(),
            next: 0,
            marker_pairs: BTreeSet::new(),
            named_locks: BTreeMap::new(),
            combine_ns: 0.0,
        };
        lower.combine_ns = self.params.sync.reduction_combine_ns;
        lower.allocate(&region.constructs);
        let marker_pairs = lower.marker_pairs.clone();
        let allocs = lower.allocs.clone();

        let assignment = assign_places(
            &self.machine,
            &self.config.places,
            self.config.bind,
            region.n_threads,
        );
        let mut master: Option<TaskId> = None;
        for rank in 0..region.n_threads {
            lower.next = 0;
            let mut ops = Vec::new();
            lower.emit(&region.constructs, rank, &mut ops);
            let program = Program::new(ops);
            let pin = assignment.place_of(rank).cloned();
            let tid = lower.sim.spawn_user(rank, program, pin);
            if rank == 0 {
                master = Some(tid);
            }
        }
        drop(lower);
        if let Some(cfg) = self.freq_logger {
            sim.enable_freq_logger(cfg.cpu, cfg.period, cfg.cost);
        }
        if !self.faults.is_empty() {
            sim.inject_faults(&self.faults);
        }
        if self.tracing {
            sim.enable_tracing();
        }
        if self.attribution {
            sim.enable_attribution();
        }
        if self.reference_engine {
            sim.use_reference_engine();
        }
        let master = master.expect("team is non-empty");
        Ok((sim, allocs, marker_pairs, master))
    }
}

/// Fold the engine's per-object effect counters into a
/// [`SemanticEffects`] summary, using the allocation sequence to recover
/// which construct each object served (the same lock object means
/// "critical section" under [`Alloc::Lock`] but "reduction combine" under
/// [`Alloc::LockWithBarrier`]).
fn harvest_effects(allocs: &[Alloc], report: &SimReport) -> SemanticEffects {
    let mut fx = SemanticEffects::default();
    let get = |id: ObjId| report.obj_effects[id.0 as usize];
    let barrier = |fx: &mut SemanticEffects, id: ObjId| {
        let ObjEffects::Barrier { arrivals } = get(id) else {
            unreachable!("allocation table out of sync: {id:?} is not a barrier");
        };
        fx.barrier_arrivals += arrivals;
    };
    for a in allocs {
        match *a {
            Alloc::None => {}
            Alloc::Barrier(b) => barrier(&mut fx, b),
            Alloc::Lock(l) => {
                let ObjEffects::Lock { entries } = get(l) else {
                    unreachable!("allocation table out of sync: {l:?} is not a lock");
                };
                fx.lock_entries += entries;
            }
            Alloc::Atomic(a) => {
                let ObjEffects::Atomic { ops } = get(a) else {
                    unreachable!("allocation table out of sync: {a:?} is not an atomic");
                };
                fx.atomic_ops += ops;
            }
            Alloc::LoopWithBarrier(l, b) => {
                let ObjEffects::Loop {
                    iters,
                    passes,
                    ordered_done,
                } = get(l)
                else {
                    unreachable!("allocation table out of sync: {l:?} is not a loop");
                };
                fx.loop_iters += iters;
                fx.loop_passes += passes;
                fx.ordered_entries += ordered_done;
                if let Some(b) = b {
                    barrier(&mut fx, b);
                }
            }
            Alloc::SingleWithBarrier(s, b) => {
                let ObjEffects::Single { entries, winners } = get(s) else {
                    unreachable!("allocation table out of sync: {s:?} is not a single");
                };
                fx.single_entries += entries;
                fx.single_winners += winners;
                barrier(&mut fx, b);
            }
            Alloc::LockWithBarrier(l, b) => {
                let ObjEffects::Lock { entries } = get(l) else {
                    unreachable!("allocation table out of sync: {l:?} is not a lock");
                };
                fx.reduction_combines += entries;
                barrier(&mut fx, b);
            }
            Alloc::RegionBarriers(entry, exit) => {
                barrier(&mut fx, entry);
                barrier(&mut fx, exit);
            }
            Alloc::PoolWithBarrier(p, b) => {
                let ObjEffects::TaskPool { spawned, executed } = get(p) else {
                    unreachable!("allocation table out of sync: {p:?} is not a pool");
                };
                fx.tasks_spawned += spawned;
                fx.tasks_executed += executed;
                barrier(&mut fx, b);
            }
            Alloc::NamedLock(l, first) => {
                // Later sites alias the first site's object; count once.
                if first {
                    let ObjEffects::Lock { entries } = get(l) else {
                        unreachable!("allocation table out of sync: {l:?} is not a lock");
                    };
                    fx.lock_entries += entries;
                }
            }
        }
    }
    fx
}

/// Objects allocated for one construct instance, in traversal order.
#[derive(Debug, Clone, Copy)]
enum Alloc {
    None,
    Barrier(ObjId),
    Lock(ObjId),
    Atomic(ObjId),
    LoopWithBarrier(ObjId, Option<ObjId>),
    SingleWithBarrier(ObjId, ObjId),
    LockWithBarrier(ObjId, ObjId),
    RegionBarriers(ObjId, ObjId),
    PoolWithBarrier(ObjId, ObjId),
    /// A named-lock scope. Equal lock ids share one object, so the flag
    /// marks the *first* allocation site per id — harvesting counts a
    /// shared object's entries once.
    NamedLock(ObjId, bool),
}

struct Lowerer<'a> {
    sim: &'a mut Simulator,
    machine: &'a MachineSpec,
    n_threads: usize,
    span: f64,
    allocs: Vec<Alloc>,
    next: usize,
    marker_pairs: BTreeSet<u32>,
    named_locks: BTreeMap<u32, ObjId>,
    combine_ns: f64,
}

impl Lowerer<'_> {
    /// Pick the dynamic-loop batching factor: cap the number of grabs per
    /// thread per loop pass at ~256 so event counts stay tractable without
    /// distorting load balancing at realistic granularity.
    fn batch_for(&self, schedule: Schedule, total_iters: u64) -> u32 {
        match schedule {
            Schedule::Dynamic { chunk } => {
                let per_thread_chunks = total_iters / (self.n_threads as u64 * chunk).max(1);
                (per_thread_chunks / 256).clamp(1, 64) as u32
            }
            _ => 1,
        }
    }

    fn allocate(&mut self, cs: &[Construct]) {
        for c in cs {
            let alloc = match c {
                Construct::DelayUs(_)
                | Construct::Compute { .. }
                | Construct::StreamBytes(_)
                | Construct::Atomic
                | Construct::MarkBegin(_)
                | Construct::MarkEnd(_) => match c {
                    Construct::Atomic => Alloc::Atomic(self.sim.add_atomic(self.span)),
                    Construct::MarkBegin(k) => {
                        self.marker_pairs.insert(*k);
                        Alloc::None
                    }
                    _ => Alloc::None,
                },
                Construct::Barrier => {
                    Alloc::Barrier(self.sim.add_barrier(self.n_threads, self.span))
                }
                Construct::Critical { .. } => Alloc::Lock(self.sim.add_lock(self.span)),
                Construct::LockUnlock { .. } => Alloc::Lock(self.sim.add_lock(self.span)),
                Construct::Single { .. } => Alloc::SingleWithBarrier(
                    self.sim.add_single(self.n_threads),
                    self.sim.add_barrier(self.n_threads, self.span),
                ),
                Construct::Reduction { .. } => Alloc::LockWithBarrier(
                    self.sim.add_lock(self.span),
                    self.sim.add_barrier(self.n_threads, self.span),
                ),
                Construct::Tasks { master_only, .. } => {
                    // Pool + post-spawn barrier + final barrier: the
                    // allocation helper only carries two ids, so pack the
                    // two barriers as consecutive allocations.
                    let spawners = if *master_only { 1 } else { self.n_threads };
                    let pool = self.sim.add_task_pool(self.span, self.n_threads, spawners);
                    let after_spawn = self.sim.add_barrier(self.n_threads, self.span);
                    self.allocs.push(Alloc::PoolWithBarrier(pool, after_spawn));
                    let fin = self.sim.add_barrier(self.n_threads, self.span);
                    Alloc::Barrier(fin)
                }
                Construct::ParallelFor {
                    schedule,
                    total_iters,
                    body_us,
                    ordered_us,
                    nowait,
                } => {
                    let loop_sched = match schedule {
                        Schedule::Static { chunk } => LoopSchedule::Static { chunk: *chunk },
                        Schedule::Dynamic { chunk } => LoopSchedule::Dynamic { chunk: *chunk },
                        Schedule::Guided { min_chunk } => LoopSchedule::Guided {
                            min_chunk: *min_chunk,
                        },
                    };
                    let spec = LoopSpec {
                        schedule: loop_sched,
                        total_iters: *total_iters,
                        n_threads: self.n_threads,
                        body_cycles: delay_cycles(*body_us, self.machine.clock.max_ghz),
                        body_class: CorunClass::Latency,
                        ordered_section_ns: ordered_us.map(|us| us * 1e3),
                        batch: self.batch_for(*schedule, *total_iters),
                        span_factor: self.span,
                    };
                    let lp = self.sim.add_loop(spec);
                    let bar = if *nowait {
                        None
                    } else {
                        Some(self.sim.add_barrier(self.n_threads, self.span))
                    };
                    Alloc::LoopWithBarrier(lp, bar)
                }
                Construct::ParallelRegion { body } => {
                    let entry = self.sim.add_barrier(self.n_threads, self.span);
                    let exit = self.sim.add_barrier(self.n_threads, self.span);
                    self.allocs.push(Alloc::RegionBarriers(entry, exit));
                    self.allocate(body);
                    continue;
                }
                Construct::Locked { lock, body } => {
                    let (obj, first) = match self.named_locks.get(lock) {
                        Some(&o) => (o, false),
                        None => {
                            let o = self.sim.add_lock(self.span);
                            self.named_locks.insert(*lock, o);
                            (o, true)
                        }
                    };
                    self.allocs.push(Alloc::NamedLock(obj, first));
                    self.allocate(body);
                    continue;
                }
                Construct::Repeat { body, .. } => {
                    self.allocs.push(Alloc::None);
                    self.allocate(body);
                    continue;
                }
            };
            self.allocs.push(alloc);
        }
    }

    fn emit(&mut self, cs: &[Construct], rank: usize, ops: &mut Vec<Op>) {
        let max_ghz = self.machine.clock.max_ghz;
        for c in cs {
            let alloc = self.allocs[self.next];
            self.next += 1;
            match c {
                Construct::DelayUs(us) => {
                    if *us > 0.0 {
                        ops.push(Op::Compute {
                            cycles: delay_cycles(*us, max_ghz),
                            class: CorunClass::Latency,
                        });
                    }
                }
                Construct::Compute { cycles, class } => {
                    ops.push(Op::Compute {
                        cycles: *cycles,
                        class: *class,
                    });
                }
                Construct::StreamBytes(b) => {
                    ops.push(Op::MemStream { bytes: *b });
                }
                Construct::Barrier => {
                    let Alloc::Barrier(b) = alloc else { unreachable!() };
                    ops.push(Op::Barrier { obj: b });
                }
                Construct::Critical { body_us } | Construct::LockUnlock { body_us } => {
                    let Alloc::Lock(l) = alloc else { unreachable!() };
                    ops.push(Op::LockAcquire { obj: l });
                    if *body_us > 0.0 {
                        ops.push(Op::Compute {
                            cycles: delay_cycles(*body_us, max_ghz),
                            class: CorunClass::Latency,
                        });
                    }
                    ops.push(Op::LockRelease { obj: l });
                }
                Construct::Atomic => {
                    let Alloc::Atomic(a) = alloc else { unreachable!() };
                    ops.push(Op::AtomicOp { obj: a });
                }
                Construct::Single { body_us } => {
                    let Alloc::SingleWithBarrier(s, b) = alloc else {
                        unreachable!()
                    };
                    ops.push(Op::Single {
                        obj: s,
                        body_cycles: delay_cycles(*body_us, max_ghz),
                    });
                    ops.push(Op::Barrier { obj: b });
                }
                Construct::Reduction { body_us } => {
                    let Alloc::LockWithBarrier(l, b) = alloc else {
                        unreachable!()
                    };
                    if *body_us > 0.0 {
                        ops.push(Op::Compute {
                            cycles: delay_cycles(*body_us, max_ghz),
                            class: CorunClass::Latency,
                        });
                    }
                    ops.push(Op::LockAcquire { obj: l });
                    ops.push(Op::Busy {
                        ns: self.combine_ns,
                    });
                    ops.push(Op::LockRelease { obj: l });
                    ops.push(Op::Barrier { obj: b });
                }
                Construct::ParallelFor { .. } => {
                    let Alloc::LoopWithBarrier(lp, bar) = alloc else {
                        unreachable!()
                    };
                    ops.push(Op::ForLoop { obj: lp });
                    if let Some(b) = bar {
                        ops.push(Op::Barrier { obj: b });
                    }
                }
                Construct::ParallelRegion { body } => {
                    let Alloc::RegionBarriers(entry, exit) = alloc else {
                        unreachable!()
                    };
                    ops.push(Op::Barrier { obj: entry });
                    self.emit(body, rank, ops);
                    ops.push(Op::Barrier { obj: exit });
                }
                Construct::Tasks {
                    per_spawner,
                    body_us,
                    master_only,
                } => {
                    // Two allocations were made for this construct: the
                    // pool + post-spawn barrier, then the final barrier.
                    let Alloc::PoolWithBarrier(pool, after_spawn) = alloc else {
                        unreachable!()
                    };
                    let fin = self.allocs[self.next];
                    self.next += 1;
                    let Alloc::Barrier(fin) = fin else { unreachable!() };
                    if !master_only || rank == 0 {
                        ops.push(Op::TaskSpawn {
                            obj: pool,
                            count: *per_spawner,
                            body_cycles: delay_cycles(*body_us, max_ghz),
                        });
                    }
                    // All spawns published before anyone drains: the
                    // post-spawn barrier is the scheduling point.
                    ops.push(Op::Barrier { obj: after_spawn });
                    ops.push(Op::TaskWait { obj: pool });
                    ops.push(Op::Barrier { obj: fin });
                }
                Construct::MarkBegin(k) => {
                    if rank == 0 {
                        ops.push(Op::Mark { marker: 2 * k });
                    }
                }
                Construct::MarkEnd(k) => {
                    if rank == 0 {
                        ops.push(Op::Mark { marker: 2 * k + 1 });
                    }
                }
                Construct::Locked { body, .. } => {
                    let Alloc::NamedLock(l, _) = alloc else { unreachable!() };
                    ops.push(Op::LockAcquire { obj: l });
                    self.emit(body, rank, ops);
                    ops.push(Op::LockRelease { obj: l });
                }
                Construct::Repeat { count, body } => {
                    ops.push(Op::LoopBegin { count: *count });
                    self.emit(body, rank, ops);
                    ops.push(Op::LoopEnd);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_topology::Places;

    fn small_runtime() -> SimRuntime {
        let machine = MachineSpec::vera();
        let config = RtConfig::pinned_close(Places::Threads(Some(8)));
        SimRuntime::new(machine, config).with_params(SimParams::sterile())
    }

    #[test]
    fn measured_region_produces_rep_times() {
        let rt = small_runtime();
        let region = RegionSpec::measured(8, 5, 10, vec![Construct::Barrier]);
        let res = rt.run(&region, 1).expect("region completes");
        assert_eq!(res.reps().len(), 5);
        assert!(res.reps().iter().all(|&r| r > 0.0));
        assert!(res.wall_us > 0.0);
    }

    #[test]
    fn sterile_runs_are_identical_and_stable() {
        let rt = small_runtime();
        let region = RegionSpec::measured(8, 6, 10, vec![Construct::Reduction { body_us: 0.1 }]);
        let a = rt.run(&region, 1).expect("region completes");
        let b = rt.run(&region, 2).expect("region completes");
        // With no noise, different seeds give identical results.
        assert_eq!(a.reps(), b.reps());
        // And repetitions are essentially constant.
        let reps = a.reps();
        let spread = reps.iter().cloned().fold(f64::MIN, f64::max)
            / reps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.01, "sterile spread {spread}");
    }

    #[test]
    fn reduction_costs_more_than_barrier() {
        let rt = small_runtime();
        let bar = RegionSpec::measured(8, 3, 20, vec![Construct::Barrier]);
        let red = RegionSpec::measured(8, 3, 20, vec![Construct::Reduction { body_us: 0.1 }]);
        let tb = rt.run(&bar, 1).expect("region completes").reps()[1];
        let tr = rt.run(&red, 1).expect("region completes").reps()[1];
        assert!(tr > tb, "reduction {tr} vs barrier {tb}");
    }

    #[test]
    fn schedbench_style_loop_runs() {
        let rt = small_runtime();
        let region = RegionSpec::measured(
            8,
            3,
            1,
            vec![Construct::ParallelFor {
                schedule: Schedule::Dynamic { chunk: 1 },
                total_iters: 8 * 128,
                body_us: 15.0,
                ordered_us: None,
                nowait: false,
            }],
        );
        let res = rt.run(&region, 7).expect("region completes");
        // 128 iters/thread × ~15.9 µs ≈ 2 ms per rep.
        for &r in res.reps() {
            assert!(r > 1_500.0 && r < 3_500.0, "rep {r} µs");
        }
    }

    #[test]
    fn unbound_config_still_completes() {
        let machine = MachineSpec::vera();
        let rt = SimRuntime::new(machine, RtConfig::unbound())
            .with_params(SimParams::sterile());
        let region = RegionSpec::measured(8, 3, 5, vec![Construct::Barrier]);
        let res = rt.run(&region, 3).expect("region completes");
        assert_eq!(res.reps().len(), 3);
    }

    #[test]
    fn freq_logger_collects_samples() {
        let machine = MachineSpec::vera();
        let config = RtConfig::pinned_close(Places::Threads(Some(8)));
        let rt = SimRuntime::new(machine, config)
            .with_params(SimParams::sterile())
            .with_freq_logger(FreqLoggerCfg {
                cpu: Some(31),
                period: 100 * US,
                cost: 0,
            });
        let region =
            RegionSpec::measured(8, 3, 3, vec![Construct::DelayUs(100.0), Construct::Barrier]);
        let res = rt.run(&region, 1).expect("region completes");
        assert!(!res.freq_samples.is_empty());
    }

    #[test]
    fn parallel_region_adds_overhead() {
        let rt = small_runtime();
        let plain = RegionSpec::measured(8, 3, 10, vec![Construct::DelayUs(1.0)]);
        let wrapped = RegionSpec::measured(
            8,
            3,
            10,
            vec![Construct::ParallelRegion {
                body: vec![Construct::DelayUs(1.0)],
            }],
        );
        let tp = rt.run(&plain, 1).expect("region completes").reps()[1];
        let tw = rt.run(&wrapped, 1).expect("region completes").reps()[1];
        assert!(tw > tp, "wrapped {tw} vs plain {tp}");
    }
}
