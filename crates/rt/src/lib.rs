#![warn(missing_docs)]

//! # ompvar-rt — an OpenMP-semantics runtime with two backends
//!
//! This crate provides the runtime layer of the `ompvar` study. A
//! benchmark describes its parallel region once, as a tree of
//! [`region::Construct`]s (work-shared loops with static/dynamic/guided
//! schedules, barriers, critical sections, locks, atomics, `single`,
//! `ordered`, reductions, and EPCC-style measurement markers), and runs it
//! on either backend:
//!
//! * [`native::NativeRuntime`] — real OS threads using this crate's own
//!   synchronization primitives (sense-reversing barrier, atomic chunk
//!   dispatch, ticket-ordered sections) and `sched_setaffinity` pinning.
//!   Functionally complete on any host, but limited to the host's scale.
//! * [`simrt::SimRuntime`] — lowers the same region onto the
//!   `ompvar-sim` discrete-event machine model, enabling 256-hardware-
//!   thread experiments with OS noise, DVFS and SMT on any host,
//!   deterministically.
//!
//! Affinity is configured through [`config::RtConfig`], mirroring
//! `OMP_PLACES`/`OMP_PROC_BIND`.

pub mod config;
pub mod error;
pub mod native;
pub mod runner;
pub mod simrt;

/// The construct IR, re-exported from `ompvar-analyze`: the IR lives
/// next to the static analyzer so the analyzer can be the single
/// authority on program well-formedness; both backends consume its
/// verdict through [`region::RegionSpec::validate`].
pub use ompvar_analyze::region;

pub use config::{RegionResult, RtConfig};
pub use error::RtError;
pub use native::NativeRuntime;
pub use self::region::{Construct, RegionSpec, Schedule};
pub use runner::RegionRunner;
pub use simrt::{FreqLoggerCfg, SimRuntime};
