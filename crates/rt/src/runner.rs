//! Backend abstraction: anything that can execute a region.

use crate::config::RegionResult;
use crate::error::RtError;
use crate::native::NativeRuntime;
use crate::region::RegionSpec;
use crate::simrt::SimRuntime;

/// A runtime backend capable of executing a [`RegionSpec`].
pub trait RegionRunner {
    /// Execute `region`. `seed` determines all stochastic behaviour on
    /// the simulated backend and is ignored by the native backend (real
    /// hardware provides its own entropy).
    ///
    /// A run that cannot complete — simulated deadlock, exhausted
    /// virtual-time budget, native deadline violation — returns a typed
    /// [`RtError`] instead of hanging or panicking.
    fn run_region(&self, region: &RegionSpec, seed: u64) -> Result<RegionResult, RtError>;

    /// Short backend label for reports.
    fn backend_name(&self) -> &'static str;
}

impl RegionRunner for SimRuntime {
    fn run_region(&self, region: &RegionSpec, seed: u64) -> Result<RegionResult, RtError> {
        self.run(region, seed)
    }

    fn backend_name(&self) -> &'static str {
        "sim"
    }
}

impl RegionRunner for NativeRuntime {
    fn run_region(&self, region: &RegionSpec, _seed: u64) -> Result<RegionResult, RtError> {
        self.run(region)
    }

    fn backend_name(&self) -> &'static str {
        "native"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RtConfig;
    use crate::region::Construct;
    use ompvar_sim::params::SimParams;
    use ompvar_topology::{MachineSpec, Places};

    #[test]
    fn both_backends_run_the_same_region() {
        let region = RegionSpec::measured(2, 2, 2, vec![Construct::Barrier]);
        let sim = SimRuntime::new(
            MachineSpec::vera(),
            RtConfig::pinned_close(Places::Threads(Some(2))),
        )
        .with_params(SimParams::sterile());
        let nat = NativeRuntime::new(RtConfig::unbound());
        for (res, name) in [
            (sim.run_region(&region, 1), sim.backend_name()),
            (nat.run_region(&region, 1), nat.backend_name()),
        ] {
            let res = res.unwrap_or_else(|e| panic!("{name} backend failed: {e}"));
            assert_eq!(res.reps().len(), 2, "{name}");
        }
    }
}
