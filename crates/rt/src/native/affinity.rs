//! Thread pinning for the native runtime (Linux `sched_setaffinity`).

use ompvar_topology::Place;

/// Pin the calling thread to the hardware threads of `place`.
///
/// Returns `true` on success. On non-Linux platforms, or when the target
/// CPUs do not exist on the host (e.g. pinning a 128-core place list on a
/// laptop), this degrades to a no-op returning `false` — the runtime still
/// runs, just unpinned, which is the honest fallback.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(place: &Place) -> bool {
    // SAFETY: cpu_set_t is a plain bitset; we only set bits for CPUs that
    // exist on this host, and pass the correct size to the syscall.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        let online = libc::sysconf(libc::_SC_NPROCESSORS_ONLN);
        if online <= 0 {
            return false;
        }
        let mut any = false;
        for &hw in place.hw_threads() {
            if (hw.0 as i64) < online as i64 {
                libc::CPU_SET(hw.0, &mut set);
                any = true;
            }
        }
        if !any {
            return false;
        }
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

/// Non-Linux fallback: pinning is unsupported.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_place: &Place) -> bool {
    false
}

/// The set of CPUs the calling thread may currently run on (Linux), or
/// `None` where unsupported.
#[cfg(target_os = "linux")]
pub fn current_affinity() -> Option<Vec<usize>> {
    // SAFETY: as above; we read back the kernel-filled bitset.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        if libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set) != 0 {
            return None;
        }
        let online = libc::sysconf(libc::_SC_NPROCESSORS_ONLN).max(0) as usize;
        Some(
            (0..online.min(libc::CPU_SETSIZE as usize))
                .filter(|&c| libc::CPU_ISSET(c, &set))
                .collect(),
        )
    }
}

/// Non-Linux fallback.
#[cfg(not(target_os = "linux"))]
pub fn current_affinity() -> Option<Vec<usize>> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_topology::HwThreadId;

    #[test]
    #[cfg(target_os = "linux")]
    fn pin_to_cpu0_succeeds_and_is_visible() {
        let ok = pin_current_thread(&Place::single(HwThreadId(0)));
        assert!(ok, "pinning to cpu0 should succeed on Linux");
        let aff = current_affinity().unwrap();
        assert_eq!(aff, vec![0]);
    }

    #[test]
    fn pin_to_nonexistent_cpu_degrades_gracefully() {
        let ok = pin_current_thread(&Place::single(HwThreadId(100_000)));
        assert!(!ok);
    }
}
