//! A shared wall-clock deadline for one native region run.
//!
//! Every spinning wait in the native backend (barrier, ordered ticket,
//! task-pool drain) periodically consults the run's [`RunGuard`]. When
//! the absolute deadline passes — or any teammate has already tripped
//! the guard — the wait gives up and the run reports a typed timeout
//! instead of hanging forever on a lost ticket or a crashed teammate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Deadline state shared by all threads of one region run.
#[derive(Debug)]
pub struct RunGuard {
    deadline: Option<Instant>,
    budget: Option<Duration>,
    tripped: AtomicBool,
}

impl RunGuard {
    /// Guard expiring `budget` from now (`None`: never expires).
    pub fn new(budget: Option<Duration>) -> Self {
        RunGuard {
            deadline: budget.map(|d| Instant::now() + d),
            budget,
            tripped: AtomicBool::new(false),
        }
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Whether the run is out of time. Once true for one thread it is
    /// true for every thread, so a whole stuck team bails out together.
    pub fn expired(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.tripped.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_guard_never_expires() {
        let g = RunGuard::new(None);
        assert!(!g.expired());
        assert_eq!(g.budget(), None);
    }

    #[test]
    fn expiry_is_sticky_across_threads() {
        let g = RunGuard::new(Some(Duration::ZERO));
        assert!(g.expired());
        std::thread::scope(|s| {
            s.spawn(|| assert!(g.expired()));
        });
    }
}
