//! Calibrated busy-wait delay — the native analogue of EPCC's `delay()`.
//!
//! EPCC benchmarks burn a configurable amount of work per iteration with a
//! dependency-chain spin loop. We calibrate the chain's iterations-per-
//! microsecond once per process and reuse it, exactly like the EPCC
//! drivers do at startup.

use std::hint::black_box;
use std::sync::OnceLock;
use std::time::Instant;

/// One unit of the dependency chain: cheap, non-optimizable-away work.
#[inline]
fn chain_step(x: u64) -> u64 {
    // xorshift-ish step: a serial dependency the compiler cannot collapse.
    let mut v = x;
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    v
}

/// Run `iters` chain steps.
#[inline]
pub fn burn(iters: u64) -> u64 {
    let mut v = 0x9E3779B97F4A7C15u64;
    for _ in 0..iters {
        v = chain_step(v);
    }
    black_box(v)
}

fn calibrate() -> f64 {
    // Warm up, then measure a block large enough to dwarf timer overhead.
    burn(100_000);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let iters = 2_000_000u64;
        let t0 = Instant::now();
        burn(iters);
        let dt = t0.elapsed().as_secs_f64() * 1e6; // µs
        if dt > 0.0 {
            best = best.min(dt / iters as f64); // µs per iter
        }
    }
    assert!(best.is_finite() && best > 0.0, "delay calibration failed");
    1.0 / best // iters per µs
}

/// Iterations of the delay chain per microsecond on this host.
pub fn iters_per_us() -> f64 {
    static CAL: OnceLock<f64> = OnceLock::new();
    *CAL.get_or_init(calibrate)
}

/// Busy-wait for approximately `us` microseconds of CPU work.
#[inline]
pub fn delay(us: f64) {
    if us <= 0.0 {
        return;
    }
    let iters = (us * iters_per_us()).ceil() as u64;
    burn(iters);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn calibration_is_positive_and_cached() {
        let a = iters_per_us();
        let b = iters_per_us();
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn delay_takes_roughly_the_requested_time() {
        delay(100.0); // warm
        let t0 = Instant::now();
        delay(2_000.0);
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        // Shared CI machines jitter; accept a wide band.
        assert!(
            dt > 1_000.0 && dt < 20_000.0,
            "delay(2000us) took {dt} µs"
        );
    }

    #[test]
    fn zero_and_negative_delays_return_immediately() {
        let t0 = Instant::now();
        delay(0.0);
        delay(-5.0);
        assert!(t0.elapsed().as_micros() < 5_000);
    }
}
