//! Native work-sharing loop state: static/dynamic/guided chunk dispatch
//! with `ordered` tickets, reusable across repetitions.

use crate::region::Schedule;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shared state of one work-shared loop construct.
///
/// The object is reusable across repetitions: when every team thread has
/// observed exhaustion, the last one resets the shared counters and bumps
/// the generation. A repetition must be separated from the next by the
/// loop's implicit barrier (i.e. `nowait` loops must not be repeated).
#[derive(Debug)]
pub struct NativeLoop {
    /// Schedule kind.
    pub schedule: Schedule,
    /// Total iterations.
    pub total: u64,
    /// Team size.
    pub n_threads: usize,
    /// Next unassigned iteration (dynamic/guided).
    next: AtomicU64,
    /// Threads that observed exhaustion this generation.
    finished: AtomicUsize,
    /// Generation counter.
    generation: AtomicU64,
    /// Ordered-section ticket: next iteration allowed in.
    pub ticket: AtomicU64,
    /// Effect counter: iterations handed out across all generations.
    iters: AtomicU64,
    /// Effect counter: completed passes (generation resets).
    passes: AtomicU64,
    /// Effect counter: completed ordered sections.
    ordered_done: AtomicU64,
    /// Ordered-sequence oracle: entries whose ticket did not match.
    ordered_violations: AtomicU64,
}

/// Per-thread cursor into a [`NativeLoop`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopCursor {
    generation: u64,
    pos: u64,
    entered: bool,
}

impl NativeLoop {
    /// New loop state.
    pub fn new(schedule: Schedule, total: u64, n_threads: usize) -> Self {
        assert!(total > 0 && n_threads > 0);
        NativeLoop {
            schedule,
            total,
            n_threads,
            next: AtomicU64::new(0),
            finished: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            ticket: AtomicU64::new(0),
            iters: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            ordered_done: AtomicU64::new(0),
            ordered_violations: AtomicU64::new(0),
        }
    }

    /// Effect counters: `(iters, passes, ordered_done, ordered_violations)`.
    pub fn effect_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.iters.load(Ordering::Acquire),
            self.passes.load(Ordering::Acquire),
            self.ordered_done.load(Ordering::Acquire),
            self.ordered_violations.load(Ordering::Acquire),
        )
    }

    /// Record entry into the ordered section for iteration `iter`,
    /// checking the sequence oracle: the ticket must equal `iter` at
    /// entry, otherwise two sections are overlapping or out of order.
    pub fn note_ordered_entry(&self, iter: u64) {
        if self.ticket.load(Ordering::Acquire) != iter {
            self.ordered_violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Grab the next `(first_iter, len)` range for team rank `rank`.
    /// Returns `None` on exhaustion; the caller must then call
    /// [`NativeLoop::observe_exhausted`] exactly once before re-entering.
    pub fn grab(&self, rank: usize, cursor: &mut LoopCursor) -> Option<(u64, u64)> {
        let g = self.grab_inner(rank, cursor);
        if let Some((_, len)) = g {
            self.iters.fetch_add(len, Ordering::Relaxed);
        }
        g
    }

    fn grab_inner(&self, rank: usize, cursor: &mut LoopCursor) -> Option<(u64, u64)> {
        let gen = self.generation.load(Ordering::Acquire);
        if !cursor.entered || cursor.generation != gen {
            cursor.generation = gen;
            cursor.pos = 0;
            cursor.entered = true;
        }
        let n = self.n_threads as u64;
        match self.schedule {
            Schedule::Static { chunk } => {
                let total_chunks = self.total.div_ceil(chunk);
                let chunk_idx = cursor.pos * n + rank as u64;
                if chunk_idx >= total_chunks {
                    return None;
                }
                cursor.pos += 1;
                let first = chunk_idx * chunk;
                Some((first, chunk.min(self.total - first)))
            }
            Schedule::Dynamic { chunk } => {
                let first = self.next.fetch_add(chunk, Ordering::AcqRel);
                if first >= self.total {
                    return None;
                }
                Some((first, chunk.min(self.total - first)))
            }
            Schedule::Guided { min_chunk } => loop {
                let cur = self.next.load(Ordering::Acquire);
                if cur >= self.total {
                    return None;
                }
                let remaining = self.total - cur;
                let size = remaining.div_ceil(2 * n).max(min_chunk).min(remaining);
                if self
                    .next
                    .compare_exchange_weak(cur, cur + size, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Some((cur, size));
                }
            },
        }
    }

    /// Record that one thread observed exhaustion; the last thread resets
    /// the loop for the next repetition.
    pub fn observe_exhausted(&self, cursor: &mut LoopCursor) {
        cursor.entered = false;
        if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.n_threads {
            self.passes.fetch_add(1, Ordering::Relaxed);
            self.next.store(0, Ordering::Relaxed);
            self.ticket.store(0, Ordering::Relaxed);
            self.finished.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        }
    }

    /// Spin until iteration `iter` may enter its ordered section.
    pub fn wait_ticket(&self, iter: u64) {
        let ok = self.wait_ticket_impl(iter, None);
        debug_assert!(ok, "unbounded ticket wait cannot fail");
    }

    /// Deadline-bounded ticket wait: returns `false` once `guard`
    /// expires; the run must then be abandoned.
    #[must_use]
    pub fn wait_ticket_bounded(&self, iter: u64, guard: &super::guard::RunGuard) -> bool {
        self.wait_ticket_impl(iter, Some(guard))
    }

    fn wait_ticket_impl(&self, iter: u64, guard: Option<&super::guard::RunGuard>) -> bool {
        let mut spins = 0u32;
        while self.ticket.load(Ordering::Acquire) != iter {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(512) {
                if let Some(g) = guard {
                    if g.expired() {
                        return false;
                    }
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        true
    }

    /// Leave the ordered section: allow the next iteration in.
    pub fn ticket_done(&self) {
        self.ordered_done.fetch_add(1, Ordering::Relaxed);
        self.ticket.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as SharedCounter;

    fn drain_single_threaded(l: &NativeLoop) -> u64 {
        // One thread plays all ranks round-robin.
        let n = l.n_threads;
        let mut cursors = vec![LoopCursor::default(); n];
        let mut covered = vec![false; l.total as usize];
        let mut done = vec![false; n];
        let mut total = 0;
        while done.iter().any(|d| !d) {
            for r in 0..n {
                if done[r] {
                    continue;
                }
                match l.grab(r, &mut cursors[r]) {
                    Some((first, len)) => {
                        total += len;
                        for i in first..first + len {
                            assert!(!covered[i as usize], "iter {i} twice");
                            covered[i as usize] = true;
                        }
                    }
                    None => {
                        done[r] = true;
                        l.observe_exhausted(&mut cursors[r]);
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
        total
    }

    #[test]
    fn all_schedules_partition_exactly() {
        for sched in [
            Schedule::Static { chunk: 3 },
            Schedule::Dynamic { chunk: 2 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            let l = NativeLoop::new(sched, 101, 4);
            assert_eq!(drain_single_threaded(&l), 101);
            // And again after reset.
            assert_eq!(drain_single_threaded(&l), 101);
        }
    }

    #[test]
    fn concurrent_dynamic_covers_all_iterations() {
        let l = NativeLoop::new(Schedule::Dynamic { chunk: 5 }, 10_000, 4);
        let sum = SharedCounter::new(0);
        std::thread::scope(|s| {
            for rank in 0..4 {
                let l = &l;
                let sum = &sum;
                s.spawn(move || {
                    let mut cur = LoopCursor::default();
                    while let Some((_, len)) = l.grab(rank, &mut cur) {
                        sum.fetch_add(len, Ordering::Relaxed);
                    }
                    l.observe_exhausted(&mut cur);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn tickets_enforce_order() {
        let l = NativeLoop::new(Schedule::Static { chunk: 1 }, 4, 1);
        l.wait_ticket(0); // immediate
        l.ticket_done();
        l.wait_ticket(1); // immediate after done
        l.ticket_done();
        assert_eq!(l.ticket.load(Ordering::Relaxed), 2);
    }
}
