//! The native backend: interprets a [`RegionSpec`] with real OS threads.
//!
//! Every team thread executes the construct list SPMD-style, using the
//! crate's own synchronization primitives ([`SenseBarrier`], atomic chunk
//! dispatch, ticket-ordered sections) — the same algorithms the simulated
//! backend models. Thread pinning uses `sched_setaffinity` where the host
//! supports it.
//!
//! On small hosts this backend is functionally correct but cannot
//! reproduce the paper's scale; the simulated backend exists for that.

pub mod affinity;
pub mod barrier;
pub mod delay;
pub mod guard;
pub mod workshare;

use crate::config::{RegionResult, RtConfig};
use crate::error::RtError;
use crate::region::{Construct, RegionSpec};
use ompvar_obs::EventKind as TraceKind;
use ompvar_obs::{SpanKind, TeamRecorder, ThreadRecorder, TraceEvent, TraceSink, CORE_UNKNOWN};
use ompvar_sim::trace::SemanticEffects;
use barrier::SenseBarrier;
use delay::delay;
use guard::RunGuard;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use workshare::{LoopCursor, NativeLoop};

/// A mutex plus mutual-exclusion instrumentation: entries are counted
/// and an occupancy check records a violation whenever two threads are
/// observed inside the protected section at once (the oracle for
/// `critical`/lock constructs and reduction combines).
struct NativeLock {
    inner: Mutex<f64>,
    entries: AtomicU64,
    occupancy: std::sync::atomic::AtomicUsize,
    violations: AtomicU64,
}

impl NativeLock {
    fn new() -> Self {
        NativeLock {
            inner: Mutex::new(0.0),
            entries: AtomicU64::new(0),
            occupancy: std::sync::atomic::AtomicUsize::new(0),
            violations: AtomicU64::new(0),
        }
    }

    /// Run `f` on the protected value, recording the entry and checking
    /// mutual exclusion.
    fn section(&self, f: impl FnOnce(&mut f64)) {
        let mut g = self.inner.lock();
        if self.occupancy.fetch_add(1, Ordering::AcqRel) != 0 {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        self.entries.fetch_add(1, Ordering::Relaxed);
        f(&mut g);
        self.occupancy.fetch_sub(1, Ordering::AcqRel);
    }
}

/// `single` construct state: entry count plus a winner tally.
struct NativeSingle {
    count: AtomicU64,
    wins: AtomicU64,
}

impl NativeSingle {
    fn new() -> Self {
        NativeSingle {
            count: AtomicU64::new(0),
            wins: AtomicU64::new(0),
        }
    }

    /// Register an entry; `true` for the round's winner (entry `k` wins
    /// iff `k % n == 0`, rounds being separated by the implicit barrier).
    fn enter(&self, n: u64) -> bool {
        let win = self.count.fetch_add(1, Ordering::AcqRel).is_multiple_of(n);
        if win {
            self.wins.fetch_add(1, Ordering::Relaxed);
        }
        win
    }
}

/// Shared state of a native explicit-task pool.
struct NativePool {
    queue: Mutex<std::collections::VecDeque<f64>>,
    outstanding: std::sync::atomic::AtomicUsize,
    spawned: AtomicU64,
    executed: AtomicU64,
}

impl NativePool {
    fn new() -> Self {
        NativePool {
            queue: Mutex::new(std::collections::VecDeque::new()),
            outstanding: std::sync::atomic::AtomicUsize::new(0),
            spawned: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    fn spawn(&self, body_us: f64, count: u32) {
        let mut q = self.queue.lock();
        for _ in 0..count {
            q.push_back(body_us);
        }
        self.spawned.fetch_add(u64::from(count), Ordering::Relaxed);
        self.outstanding
            .fetch_add(count as usize, Ordering::AcqRel);
    }

    /// Execute queued tasks until the pool drains, then wait for every
    /// outstanding task to complete. Returns `false` once `guard`
    /// expires while tasks are still outstanding.
    #[must_use]
    fn exec_and_wait(&self, guard: &RunGuard, trace: &mut Tracer) -> bool {
        loop {
            let job = self.queue.lock().pop_front();
            match job {
                Some(us) => {
                    trace.begin(SpanKind::Task);
                    delay(us);
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    self.outstanding.fetch_sub(1, Ordering::AcqRel);
                    trace.end(SpanKind::Task);
                }
                None => break,
            }
        }
        let mut spins = 0u32;
        while self.outstanding.load(Ordering::Acquire) > 0 {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(512) {
                if guard.expired() {
                    return false;
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            // Help out if new work appeared.
            if let Some(us) = self.queue.lock().pop_front() {
                trace.begin(SpanKind::Task);
                delay(us);
                self.executed.fetch_add(1, Ordering::Relaxed);
                self.outstanding.fetch_sub(1, Ordering::AcqRel);
                trace.end(SpanKind::Task);
            }
        }
        true
    }
}

/// One allocated native sync object, aligned with the construct traversal.
enum NObj {
    None,
    Barrier(SenseBarrier),
    Lock(NativeLock),
    Atomic(AtomicU64),
    LoopWithBarrier(NativeLoop, Option<SenseBarrier>, Option<f64>),
    SingleWithBarrier(NativeSingle, SenseBarrier),
    LockWithBarrier(NativeLock, SenseBarrier),
    RegionBarriers(SenseBarrier, SenseBarrier),
    PoolWithBarrier(NativePool, SenseBarrier),
}

/// Fold the object table's counters into a [`SemanticEffects`] summary
/// (the native mirror of the simulated backend's harvest — the same
/// construct→object mapping, read back from atomics).
fn harvest_effects(objs: &[NObj]) -> SemanticEffects {
    let mut fx = SemanticEffects::default();
    for o in objs {
        match o {
            NObj::None => {}
            NObj::Barrier(b) => fx.barrier_arrivals += b.arrivals(),
            NObj::Lock(l) => {
                fx.lock_entries += l.entries.load(Ordering::Acquire);
                fx.mutex_violations += l.violations.load(Ordering::Acquire);
            }
            NObj::Atomic(a) => fx.atomic_ops += a.load(Ordering::Acquire),
            NObj::LoopWithBarrier(lp, bar, _) => {
                let (iters, passes, ordered_done, violations) = lp.effect_counts();
                fx.loop_iters += iters;
                fx.loop_passes += passes;
                fx.ordered_entries += ordered_done;
                fx.ordered_violations += violations;
                if let Some(b) = bar {
                    fx.barrier_arrivals += b.arrivals();
                }
            }
            NObj::SingleWithBarrier(s, b) => {
                fx.single_entries += s.count.load(Ordering::Acquire);
                fx.single_winners += s.wins.load(Ordering::Acquire);
                fx.barrier_arrivals += b.arrivals();
            }
            NObj::LockWithBarrier(l, b) => {
                fx.reduction_combines += l.entries.load(Ordering::Acquire);
                fx.mutex_violations += l.violations.load(Ordering::Acquire);
                fx.barrier_arrivals += b.arrivals();
            }
            NObj::RegionBarriers(entry, exit) => {
                fx.barrier_arrivals += entry.arrivals() + exit.arrivals();
            }
            NObj::PoolWithBarrier(p, b) => {
                fx.tasks_spawned += p.spawned.load(Ordering::Acquire);
                fx.tasks_executed += p.executed.load(Ordering::Acquire);
                fx.barrier_arrivals += b.arrivals();
            }
        }
    }
    fx
}

/// Per-thread span recorder for the native backend: monotonic wall-clock
/// timestamps (ns since region start), buffered locally and merged into a
/// [`TeamRecorder`] when the thread finishes — no cross-thread
/// synchronization on the recording path.
struct Tracer {
    rec: Option<ThreadRecorder>,
    rank: u32,
    t0: Instant,
}

impl Tracer {
    /// Recorder for `rank`; records nothing when `on` is false.
    fn new(on: bool, rank: usize, t0: Instant) -> Self {
        Tracer {
            rec: on.then(ThreadRecorder::new),
            rank: rank as u32,
            t0,
        }
    }

    #[inline]
    fn event(&mut self, kind: TraceKind) {
        if let Some(rec) = &mut self.rec {
            rec.record(TraceEvent {
                time_ns: self.t0.elapsed().as_nanos() as u64,
                thread: self.rank,
                core: CORE_UNKNOWN,
                kind,
            });
        }
    }

    #[inline]
    fn begin(&mut self, kind: SpanKind) {
        self.event(TraceKind::Begin(kind));
    }

    #[inline]
    fn end(&mut self, kind: SpanKind) {
        self.event(TraceKind::End(kind));
    }
}

/// Native OpenMP-style runtime.
#[derive(Debug, Clone)]
pub struct NativeRuntime {
    /// Affinity configuration applied to the team.
    pub config: RtConfig,
    /// Wall-clock budget for one region run. Spinning waits (barriers,
    /// ordered tickets, task-pool drains) give up once it passes and the
    /// run returns [`RtError::Timeout`] instead of hanging; `None`
    /// disables the watchdog.
    pub deadline: Option<Duration>,
    /// Record construct span timelines into [`RegionResult::trace`].
    pub tracing: bool,
}

impl NativeRuntime {
    /// New runtime with the given affinity configuration and the
    /// default 60 s region deadline.
    pub fn new(config: RtConfig) -> Self {
        NativeRuntime {
            config,
            deadline: Some(Duration::from_secs(60)),
            tracing: false,
        }
    }

    /// Override the region deadline (`None` disables it).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enable or disable span tracing (see [`NativeRuntime::tracing`]).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Execute `region` with real threads and return the measured result.
    pub fn run(&self, region: &RegionSpec) -> Result<RegionResult, RtError> {
        region.validate().map_err(RtError::InvalidRegion)?;
        let n = region.n_threads;
        let mut objs = Vec::new();
        // Named locks are shared across construct sites (equal ids alias
        // one lock object), so they live in a side table keyed by id
        // rather than in the traversal-ordered object table.
        let mut named_locks: BTreeMap<u32, NativeLock> = BTreeMap::new();
        allocate(&region.constructs, n, &mut objs, &mut named_locks);

        // Host topology for pinning: build a machine the size of this
        // host so place resolution has something to bind against. Places
        // beyond the host degrade to unpinned threads.
        let assignment = host_assignment(&self.config, n);

        let guard = RunGuard::new(self.deadline);
        let t0 = Instant::now();
        let marks: Mutex<Vec<(u32, f64)>> = Mutex::new(Vec::new());
        let first_timeout: Mutex<Option<&'static str>> = Mutex::new(None);
        let team_trace = TeamRecorder::new();
        let tracing = self.tracing;
        std::thread::scope(|s| {
            for rank in 0..n {
                let objs = &objs;
                let named_locks = &named_locks;
                let constructs = &region.constructs;
                let marks = &marks;
                let guard = &guard;
                let first_timeout = &first_timeout;
                let team_trace = &team_trace;
                let place = assignment.get(rank).cloned().flatten();
                s.spawn(move || {
                    if let Some(p) = place {
                        affinity::pin_current_thread(&p);
                    }
                    let mut ctx = ThreadCtx {
                        rank,
                        // Two sense flags per object: slot 2k for the
                        // object's (entry) barrier, 2k+1 for an exit
                        // barrier (ParallelRegion).
                        sense: vec![false; objs.len() * 2],
                        cursor: vec![LoopCursor::default(); objs.len()],
                        local_marks: Vec::new(),
                        t0,
                        guard,
                        named: named_locks,
                        trace: Tracer::new(tracing, rank, t0),
                    };
                    ctx.trace.begin(SpanKind::Region);
                    if let Err(construct) = interpret(constructs, objs, &mut ctx, &mut 0) {
                        let mut slot = first_timeout.lock();
                        slot.get_or_insert(construct);
                        return;
                    }
                    ctx.trace.end(SpanKind::Region);
                    if let Some(rec) = ctx.trace.rec.take() {
                        team_trace.submit(rec);
                    }
                    if rank == 0 {
                        marks.lock().extend(ctx.local_marks);
                    }
                });
            }
        });
        if let Some(construct) = first_timeout.into_inner() {
            return Err(RtError::Timeout {
                construct,
                deadline: guard.budget().unwrap_or_default(),
            });
        }
        let wall_us = t0.elapsed().as_secs_f64() * 1e6;

        // Pair up begin/end marks per id.
        let mut begins: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        let mut ends: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for (m, t) in marks.into_inner() {
            if m % 2 == 0 {
                begins.entry(m / 2).or_default().push(t);
            } else {
                ends.entry(m / 2).or_default().push(t);
            }
        }
        let mut intervals_us = BTreeMap::new();
        for (k, b) in begins {
            let e = ends.remove(&k).unwrap_or_default();
            assert_eq!(b.len(), e.len(), "unpaired markers for interval {k}");
            intervals_us.insert(k, b.iter().zip(&e).map(|(b, e)| e - b).collect());
        }
        let mut effects = harvest_effects(&objs);
        for l in named_locks.values() {
            effects.lock_entries += l.entries.load(Ordering::Acquire);
            effects.mutex_violations += l.violations.load(Ordering::Acquire);
        }
        Ok(RegionResult {
            intervals_us,
            wall_us,
            freq_samples: Vec::new(),
            counters: None,
            thread_stats: Vec::new(),
            effects,
            trace: tracing.then(|| team_trace.finish()),
            // The native backend cannot see inside the host kernel; the
            // causal ledger is a simulator-only capability.
            attribution: None,
        })
    }
}

/// Resolve the thread→place assignment against a host-sized machine.
fn host_assignment(
    config: &RtConfig,
    n_threads: usize,
) -> Vec<Option<ompvar_topology::Place>> {
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let machine = ompvar_topology::MachineSpec::generic(1, host_cpus, 1);
    // Resolution panics when the place list exceeds the host; in that
    // case run unpinned (the honest fallback on small hosts).
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ompvar_topology::assign_places(&machine, &config.places, config.bind, n_threads)
    }));
    match result {
        Ok(a) => (0..n_threads)
            .map(|r| a.place_of(r).cloned())
            .collect(),
        Err(_) => vec![None; n_threads],
    }
}

struct ThreadCtx<'a> {
    rank: usize,
    /// Per-object local sense flags (indexed like the object table).
    sense: Vec<bool>,
    /// Per-object loop cursors.
    cursor: Vec<LoopCursor>,
    /// Master-thread timestamps: (marker, µs since region start).
    local_marks: Vec<(u32, f64)>,
    t0: Instant,
    /// Shared run deadline consulted by every bounded wait.
    guard: &'a RunGuard,
    /// Named-lock table shared by every `Locked` site with the same id.
    named: &'a BTreeMap<u32, NativeLock>,
    /// Per-thread span recorder (a no-op when tracing is off).
    trace: Tracer,
}

impl ThreadCtx<'_> {
    fn now_us(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e6
    }
}

/// Allocate the object table in traversal order (mirrors the simulated
/// backend's lowering so both execute identical structures).
fn allocate(
    cs: &[Construct],
    n: usize,
    out: &mut Vec<NObj>,
    named: &mut BTreeMap<u32, NativeLock>,
) {
    for c in cs {
        match c {
            Construct::DelayUs(_)
            | Construct::Compute { .. }
            | Construct::StreamBytes(_)
            | Construct::MarkBegin(_)
            | Construct::MarkEnd(_) => out.push(NObj::None),
            Construct::Atomic => out.push(NObj::Atomic(AtomicU64::new(0))),
            Construct::Barrier => out.push(NObj::Barrier(SenseBarrier::new(n))),
            Construct::Critical { .. } | Construct::LockUnlock { .. } => {
                out.push(NObj::Lock(NativeLock::new()))
            }
            Construct::Single { .. } => out.push(NObj::SingleWithBarrier(
                NativeSingle::new(),
                SenseBarrier::new(n),
            )),
            Construct::Reduction { .. } => {
                out.push(NObj::LockWithBarrier(NativeLock::new(), SenseBarrier::new(n)))
            }
            Construct::ParallelFor {
                schedule,
                total_iters,
                ordered_us,
                nowait,
                ..
            } => out.push(NObj::LoopWithBarrier(
                NativeLoop::new(*schedule, *total_iters, n),
                if *nowait { None } else { Some(SenseBarrier::new(n)) },
                *ordered_us,
            )),
            Construct::Tasks { .. } => {
                out.push(NObj::PoolWithBarrier(
                    NativePool::new(),
                    SenseBarrier::new(n),
                ));
                out.push(NObj::Barrier(SenseBarrier::new(n)));
            }
            Construct::ParallelRegion { body } => {
                out.push(NObj::RegionBarriers(
                    SenseBarrier::new(n),
                    SenseBarrier::new(n),
                ));
                allocate(body, n, out, named);
            }
            Construct::Locked { lock, body } => {
                // The lock lives in the shared named table; the traversal
                // slot stays occupied to keep indices aligned.
                out.push(NObj::None);
                named.entry(*lock).or_insert_with(NativeLock::new);
                allocate(body, n, out, named);
            }
            Construct::Repeat { body, .. } => {
                out.push(NObj::None);
                allocate(body, n, out, named);
            }
        }
    }
}

/// Interpret the construct list for one thread. `idx` walks the object
/// table in the same order as [`allocate`]. Returns the construct kind
/// that was waiting when the run deadline expired, if it did.
fn interpret(
    cs: &[Construct],
    objs: &[NObj],
    ctx: &mut ThreadCtx<'_>,
    idx: &mut usize,
) -> Result<(), &'static str> {
    for c in cs {
        let my = *idx;
        *idx += 1;
        match c {
            Construct::DelayUs(us) => delay(*us),
            Construct::Compute { cycles, .. } => {
                // Interpret "cycles" at a nominal 1 GHz equivalent via the
                // calibrated delay: cycles → ns of chain work.
                delay(*cycles / 1e3 / 3.0);
            }
            Construct::StreamBytes(bytes) => {
                stream_bytes(*bytes as usize);
            }
            Construct::Barrier => {
                let NObj::Barrier(b) = &objs[my] else { unreachable!() };
                ctx.trace.begin(SpanKind::Barrier);
                if !b.wait_bounded(&mut ctx.sense[2 * my], ctx.guard) {
                    return Err("barrier");
                }
                ctx.trace.end(SpanKind::Barrier);
            }
            Construct::Critical { body_us } | Construct::LockUnlock { body_us } => {
                let NObj::Lock(l) = &objs[my] else { unreachable!() };
                // As in the simulated backend, the critical span includes
                // the wait to acquire the lock.
                ctx.trace.begin(SpanKind::Critical);
                l.section(|v| {
                    delay(*body_us);
                    *v += 1.0;
                });
                ctx.trace.end(SpanKind::Critical);
            }
            Construct::Atomic => {
                let NObj::Atomic(a) = &objs[my] else { unreachable!() };
                a.fetch_add(1, Ordering::AcqRel);
            }
            Construct::Single { body_us } => {
                let NObj::SingleWithBarrier(single, b) = &objs[my] else {
                    unreachable!()
                };
                ctx.trace.begin(SpanKind::Single);
                if single.enter(b.team_size() as u64) {
                    delay(*body_us);
                }
                ctx.trace.end(SpanKind::Single);
                ctx.trace.begin(SpanKind::Barrier);
                if !b.wait_bounded(&mut ctx.sense[2 * my], ctx.guard) {
                    return Err("single");
                }
                ctx.trace.end(SpanKind::Barrier);
            }
            Construct::Reduction { body_us } => {
                let NObj::LockWithBarrier(acc, b) = &objs[my] else {
                    unreachable!()
                };
                delay(*body_us);
                let rank = ctx.rank as f64;
                // The combine serializes through a lock, as the simulated
                // backend models it: a critical span.
                ctx.trace.begin(SpanKind::Critical);
                acc.section(|v| *v += rank + 1.0);
                ctx.trace.end(SpanKind::Critical);
                ctx.trace.begin(SpanKind::Barrier);
                if !b.wait_bounded(&mut ctx.sense[2 * my], ctx.guard) {
                    return Err("reduction");
                }
                ctx.trace.end(SpanKind::Barrier);
            }
            Construct::ParallelFor { body_us, .. } => {
                let NObj::LoopWithBarrier(lp, bar, ordered) = &objs[my] else {
                    unreachable!()
                };
                ctx.trace.begin(SpanKind::Workshare);
                loop {
                    let Some((first, len)) = lp.grab(ctx.rank, &mut ctx.cursor[my]) else {
                        lp.observe_exhausted(&mut ctx.cursor[my]);
                        break;
                    };
                    ctx.trace.begin(SpanKind::Chunk);
                    match ordered {
                        None => {
                            for _ in 0..len {
                                delay(*body_us);
                            }
                        }
                        Some(section_us) => {
                            for i in first..first + len {
                                delay(*body_us);
                                ctx.trace.begin(SpanKind::Ordered);
                                if !lp.wait_ticket_bounded(i, ctx.guard) {
                                    return Err("ordered section");
                                }
                                lp.note_ordered_entry(i);
                                delay(*section_us);
                                lp.ticket_done();
                                ctx.trace.end(SpanKind::Ordered);
                            }
                        }
                    }
                    ctx.trace.end(SpanKind::Chunk);
                }
                ctx.trace.end(SpanKind::Workshare);
                if let Some(b) = bar {
                    ctx.trace.begin(SpanKind::Barrier);
                    if !b.wait_bounded(&mut ctx.sense[2 * my], ctx.guard) {
                        return Err("loop barrier");
                    }
                    ctx.trace.end(SpanKind::Barrier);
                }
            }
            Construct::ParallelRegion { body } => {
                let NObj::RegionBarriers(entry, exit) = &objs[my] else {
                    unreachable!()
                };
                ctx.trace.begin(SpanKind::Barrier);
                if !entry.wait_bounded(&mut ctx.sense[2 * my], ctx.guard) {
                    return Err("region entry barrier");
                }
                ctx.trace.end(SpanKind::Barrier);
                interpret(body, objs, ctx, idx)?;
                ctx.trace.begin(SpanKind::Barrier);
                if !exit.wait_bounded(&mut ctx.sense[2 * my + 1], ctx.guard) {
                    return Err("region exit barrier");
                }
                ctx.trace.end(SpanKind::Barrier);
            }
            Construct::Tasks {
                per_spawner,
                body_us,
                master_only,
            } => {
                let NObj::PoolWithBarrier(pool, after_spawn) = &objs[my] else {
                    unreachable!()
                };
                let fin_idx = *idx;
                *idx += 1;
                let NObj::Barrier(fin) = &objs[fin_idx] else {
                    unreachable!()
                };
                if !master_only || ctx.rank == 0 {
                    pool.spawn(*body_us, *per_spawner);
                }
                ctx.trace.begin(SpanKind::Barrier);
                if !after_spawn.wait_bounded(&mut ctx.sense[2 * my], ctx.guard) {
                    return Err("task spawn barrier");
                }
                ctx.trace.end(SpanKind::Barrier);
                if !pool.exec_and_wait(ctx.guard, &mut ctx.trace) {
                    return Err("taskwait");
                }
                ctx.trace.begin(SpanKind::Barrier);
                if !fin.wait_bounded(&mut ctx.sense[2 * fin_idx], ctx.guard) {
                    return Err("task final barrier");
                }
                ctx.trace.end(SpanKind::Barrier);
            }
            Construct::MarkBegin(k) => {
                if ctx.rank == 0 {
                    ctx.local_marks.push((2 * k, ctx.now_us()));
                }
            }
            Construct::MarkEnd(k) => {
                if ctx.rank == 0 {
                    ctx.local_marks.push((2 * k + 1, ctx.now_us()));
                }
            }
            Construct::Locked { lock, body } => {
                let named = ctx.named;
                let l = &named[lock];
                // The locked span includes the wait to acquire, like a
                // critical section. A blocking lock() would turn a missed
                // static-deadlock prediction into a process hang, so spin
                // on try_lock under the run guard instead.
                ctx.trace.begin(SpanKind::Critical);
                let mut spins = 0u32;
                let g = loop {
                    if let Some(g) = l.inner.try_lock() {
                        break g;
                    }
                    spins = spins.wrapping_add(1);
                    if spins.is_multiple_of(512) {
                        if ctx.guard.expired() {
                            ctx.trace.end(SpanKind::Critical);
                            return Err("locked scope");
                        }
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                };
                if l.occupancy.fetch_add(1, Ordering::AcqRel) != 0 {
                    l.violations.fetch_add(1, Ordering::Relaxed);
                }
                l.entries.fetch_add(1, Ordering::Relaxed);
                let r = interpret(body, objs, ctx, idx);
                l.occupancy.fetch_sub(1, Ordering::AcqRel);
                drop(g);
                ctx.trace.end(SpanKind::Critical);
                r?;
            }
            Construct::Repeat { count, body } => {
                let body_start = *idx;
                for _ in 0..*count {
                    *idx = body_start;
                    interpret(body, objs, ctx, idx)?;
                }
            }
        }
    }
    Ok(())
}

/// Touch `bytes` of memory with a streaming pattern (BabelStream-style
/// triad on a thread-local buffer).
fn stream_bytes(bytes: usize) {
    let n = (bytes / 8 / 3).max(1); // three arrays of f64
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    for i in 0..n {
        c[i] = a[i] + 0.4 * b[i];
    }
    std::hint::black_box(&c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Schedule;

    fn rt() -> NativeRuntime {
        NativeRuntime::new(RtConfig::unbound())
    }

    #[test]
    fn measured_barrier_region_runs() {
        let region = RegionSpec::measured(2, 4, 5, vec![Construct::Barrier]);
        let res = rt().run(&region).expect("native region completes");
        assert_eq!(res.reps().len(), 4);
        assert!(res.reps().iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn parallel_for_all_schedules_complete() {
        for sched in [
            Schedule::Static { chunk: 1 },
            Schedule::Dynamic { chunk: 1 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            let region = RegionSpec::measured(
                2,
                2,
                1,
                vec![Construct::ParallelFor {
                    schedule: sched,
                    total_iters: 64,
                    body_us: 1.0,
                    ordered_us: None,
                    nowait: false,
                }],
            );
            let res = rt().run(&region).expect("native region completes");
            assert_eq!(res.reps().len(), 2);
            // On an oversubscribed host a single rep interval can be tiny
            // (the other thread may drain a dynamic loop before the
            // master's timestamp), but the wall time must cover the work:
            // 2 reps × 64 iterations × 1 µs of delay.
            assert!(res.wall_us > 100.0, "{sched:?}: wall {} µs", res.wall_us);
        }
    }

    #[test]
    fn ordered_loop_completes() {
        let region = RegionSpec::measured(
            2,
            2,
            1,
            vec![Construct::ParallelFor {
                schedule: Schedule::Static { chunk: 1 },
                total_iters: 8,
                body_us: 1.0,
                ordered_us: Some(1.0),
                nowait: false,
            }],
        );
        let res = rt().run(&region).expect("native region completes");
        assert_eq!(res.reps().len(), 2);
    }

    #[test]
    fn sync_constructs_complete() {
        let region = RegionSpec::measured(
            2,
            3,
            4,
            vec![
                Construct::Critical { body_us: 1.0 },
                Construct::Atomic,
                Construct::Single { body_us: 1.0 },
                Construct::Reduction { body_us: 1.0 },
                Construct::LockUnlock { body_us: 1.0 },
            ],
        );
        let res = rt().run(&region).expect("native region completes");
        assert_eq!(res.reps().len(), 3);
    }

    #[test]
    fn parallel_region_wrapper_completes() {
        let region = RegionSpec::measured(
            2,
            3,
            2,
            vec![Construct::ParallelRegion {
                body: vec![Construct::DelayUs(2.0)],
            }],
        );
        let res = rt().run(&region).expect("native region completes");
        assert_eq!(res.reps().len(), 3);
    }

    #[test]
    fn stream_bytes_touches_memory() {
        stream_bytes(1 << 16);
    }

    #[test]
    fn expired_deadline_reports_timeout_instead_of_hanging() {
        let rt = rt().with_deadline(Some(Duration::ZERO));
        let region = RegionSpec::measured(2, 2, 2, vec![Construct::Barrier]);
        match rt.run(&region) {
            Err(RtError::Timeout { construct, .. }) => {
                assert!(!construct.is_empty());
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn disabled_deadline_still_completes() {
        let rt = rt().with_deadline(None);
        let region = RegionSpec::measured(2, 2, 2, vec![Construct::Barrier]);
        let res = rt.run(&region).expect("region completes");
        assert_eq!(res.reps().len(), 2);
    }
}
