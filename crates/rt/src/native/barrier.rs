//! A sense-reversing centralized barrier for the native runtime.
//!
//! Built from two atomics following the classic construction (see *Rust
//! Atomics and Locks*, ch. 4/9): arrivals decrement a counter; the last
//! arriver resets it and flips the global sense; everyone else spins on
//! the sense with a per-thread expected value. Spinning threads
//! `spin_loop()` and periodically `yield_now()` so oversubscribed hosts
//! (like CI containers) still make progress.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Centralized sense-reversing barrier for a fixed-size team.
#[derive(Debug)]
pub struct SenseBarrier {
    n: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
    arrivals: AtomicU64,
}

impl SenseBarrier {
    /// Barrier for a team of `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        SenseBarrier {
            n,
            remaining: AtomicUsize::new(n),
            sense: AtomicBool::new(false),
            arrivals: AtomicU64::new(0),
        }
    }

    /// Team size.
    pub fn team_size(&self) -> usize {
        self.n
    }

    /// Effect counter: total per-thread arrivals across all rounds.
    pub fn arrivals(&self) -> u64 {
        self.arrivals.load(Ordering::Acquire)
    }

    /// Wait at the barrier. `local_sense` is the caller's per-thread sense
    /// flag; it must start `false` and be passed by reference to every
    /// wait on this barrier.
    pub fn wait(&self, local_sense: &mut bool) {
        let ok = self.wait_impl(local_sense, None);
        debug_assert!(ok, "unbounded barrier wait cannot fail");
    }

    /// Deadline-bounded wait: like [`SenseBarrier::wait`], but gives up
    /// and returns `false` once `guard` expires. A `false` return leaves
    /// the barrier corrupt for this team — callers must abandon the run
    /// (the guard's stickiness makes every teammate do the same).
    #[must_use]
    pub fn wait_bounded(&self, local_sense: &mut bool, guard: &super::guard::RunGuard) -> bool {
        self.wait_impl(local_sense, Some(guard))
    }

    fn wait_impl(&self, local_sense: &mut bool, guard: Option<&super::guard::RunGuard>) -> bool {
        self.arrivals.fetch_add(1, Ordering::Relaxed);
        *local_sense = !*local_sense;
        let expected = *local_sense;
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset and release the team.
            self.remaining.store(self.n, Ordering::Relaxed);
            self.sense.store(expected, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != expected {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(1024) {
                    if let Some(g) = guard {
                        if g.expired() {
                            return false;
                        }
                    }
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_a_noop() {
        let b = SenseBarrier::new(1);
        let mut sense = false;
        for _ in 0..10 {
            b.wait(&mut sense);
        }
    }

    #[test]
    fn barrier_synchronizes_phases() {
        // Each thread increments a phase counter then hits the barrier;
        // after each barrier, the counter must equal n × phase.
        let n = 4;
        let b = Arc::new(SenseBarrier::new(n));
        let counter = Arc::new(AtomicU64::new(0));
        let phases = 50;
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let mut sense = false;
                    for p in 1..=phases {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait(&mut sense);
                        let v = counter.load(Ordering::Relaxed);
                        assert!(
                            v >= (n as u64) * p && v <= (n as u64) * (p + 1),
                            "phase {p}: counter {v}"
                        );
                        b.wait(&mut sense);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), n as u64 * phases);
    }
}
