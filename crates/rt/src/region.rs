//! The construct IR: a backend-independent description of an OpenMP-style
//! parallel region.
//!
//! Benchmarks (EPCC, BabelStream) describe their work as a tree of
//! [`Construct`]s executed SPMD-style by every thread of the team. The
//! same description runs on the [native backend](crate::native) (real
//! threads) and on the [simulated backend](crate::simrt) (virtual time on
//! a modeled machine), which is what makes measurements comparable.

use ompvar_sim::task::CorunClass;

/// Loop schedule, mirroring `omp for schedule(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static, chunk)`.
    Static {
        /// Chunk size (iterations).
        chunk: u64,
    },
    /// `schedule(dynamic, chunk)`.
    Dynamic {
        /// Chunk size (iterations).
        chunk: u64,
    },
    /// `schedule(guided, min_chunk)`.
    Guided {
        /// Minimum chunk size (iterations).
        min_chunk: u64,
    },
}

impl Schedule {
    /// Parse the `OMP_SCHEDULE` syntax: `kind[,chunk]` with kind one of
    /// `static`, `dynamic`, `guided` (case-insensitive). A missing chunk
    /// defaults to 1 for dynamic/guided and to 1 for static (this
    /// runtime's `static` is always chunked; a chunk of 0 is rejected).
    pub fn parse(s: &str) -> Option<Schedule> {
        let mut it = s.split(',');
        let kind = it.next()?.trim().to_ascii_lowercase();
        let chunk: u64 = match it.next() {
            Some(c) => c.trim().parse().ok()?,
            None => 1,
        };
        if it.next().is_some() || chunk == 0 {
            return None;
        }
        match kind.as_str() {
            "static" => Some(Schedule::Static { chunk }),
            "dynamic" => Some(Schedule::Dynamic { chunk }),
            "guided" => Some(Schedule::Guided { min_chunk: chunk }),
            _ => None,
        }
    }

    /// Short label used in reports, e.g. `dynamic_1`.
    pub fn label(&self) -> String {
        match self {
            Schedule::Static { chunk } => format!("static_{chunk}"),
            Schedule::Dynamic { chunk } => format!("dynamic_{chunk}"),
            Schedule::Guided { min_chunk } => format!("guided_{min_chunk}"),
        }
    }
}

/// One construct executed by every thread of the team, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum Construct {
    /// Spin-compute for the given number of microseconds of *nominal*
    /// (max-frequency, uncontended) time — the EPCC `delay()` primitive.
    DelayUs(f64),
    /// Compute a fixed cycle count with an explicit SMT class.
    Compute {
        /// Cycles of work.
        cycles: f64,
        /// SMT co-run class.
        class: CorunClass,
    },
    /// Stream this many bytes of memory traffic per thread.
    StreamBytes(f64),
    /// Work-shared loop: `total_iters` iterations of `delay(body_us)`
    /// distributed by `schedule`, followed by the implicit end-of-loop
    /// barrier unless `nowait`.
    ParallelFor {
        /// Schedule kind and chunking.
        schedule: Schedule,
        /// Total loop iterations across the team.
        total_iters: u64,
        /// Per-iteration body duration (µs of nominal time).
        body_us: f64,
        /// Per-iteration ordered section (µs), if this is an ordered loop.
        ordered_us: Option<f64>,
        /// Skip the implicit barrier at loop end.
        nowait: bool,
    },
    /// Explicit team barrier.
    Barrier,
    /// `omp critical` around `delay(body_us)`.
    Critical {
        /// Critical-section body (µs).
        body_us: f64,
    },
    /// Explicit lock/unlock around `delay(body_us)` (EPCC LOCK/UNLOCK).
    LockUnlock {
        /// Locked-section body (µs).
        body_us: f64,
    },
    /// `omp atomic` update of a shared scalar.
    Atomic,
    /// `omp single` with a `delay(body_us)` body (implicit barrier).
    Single {
        /// Single-region body (µs).
        body_us: f64,
    },
    /// `omp parallel`-style enclosed region: models fork/join around the
    /// body (a barrier on entry and exit).
    ParallelRegion {
        /// Constructs executed inside the region.
        body: Vec<Construct>,
    },
    /// Reduction: every thread computes `delay(body_us)` then combines
    /// into a shared accumulator (serialized), then the team barrier.
    Reduction {
        /// Per-thread local work (µs).
        body_us: f64,
    },
    /// Explicit tasking (`omp task` + `taskwait`): spawners create
    /// `per_spawner` tasks of `delay(body_us)` each; the whole team then
    /// reaches a task-scheduling point, executes the queued tasks, waits
    /// for completion, and synchronizes (EPCC taskbench style).
    Tasks {
        /// Tasks created by each spawning thread.
        per_spawner: u32,
        /// Task body duration (µs of nominal time).
        body_us: f64,
        /// Only the master spawns (EPCC "MASTER TASK"); otherwise every
        /// thread spawns (EPCC "PARALLEL TASK").
        master_only: bool,
    },
    /// Master-only timestamp: begin of measured interval `id`.
    MarkBegin(u32),
    /// Master-only timestamp: end of measured interval `id`.
    MarkEnd(u32),
    /// Repeat `body` `count` times.
    Repeat {
        /// Repetition count.
        count: u32,
        /// Repeated constructs.
        body: Vec<Construct>,
    },
}

/// A full region specification: the team size and the construct list.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Number of OpenMP threads in the team.
    pub n_threads: usize,
    /// Construct list, executed SPMD by every thread.
    pub constructs: Vec<Construct>,
}

impl RegionSpec {
    /// Convenience constructor.
    pub fn new(n_threads: usize, constructs: Vec<Construct>) -> Self {
        assert!(n_threads > 0, "team needs at least one thread");
        RegionSpec {
            n_threads,
            constructs,
        }
    }

    /// The canonical EPCC-style measurement wrapper: two *unmeasured*
    /// warm-up repetitions (letting thread placement and the frequency
    /// governor settle, as a real run does before its first timestamp),
    /// then `outer_reps` repetitions of {barrier; mark-begin; `inner` ×
    /// body; mark-end}, measured as interval 0.
    pub fn measured(
        n_threads: usize,
        outer_reps: u32,
        inner_reps: u32,
        body: Vec<Construct>,
    ) -> Self {
        let warmup = Construct::Repeat {
            count: 2,
            body: vec![
                Construct::Barrier,
                Construct::Repeat {
                    count: inner_reps,
                    body: body.clone(),
                },
            ],
        };
        RegionSpec::new(
            n_threads,
            vec![
                warmup,
                Construct::Repeat {
                    count: outer_reps,
                    body: vec![
                        Construct::Barrier,
                        Construct::MarkBegin(0),
                        Construct::Repeat {
                            count: inner_reps,
                            body,
                        },
                        Construct::MarkEnd(0),
                    ],
                },
            ],
        )
    }
}

/// Nominal cycles for `delay(us)` on a machine with the given max
/// frequency: EPCC calibrates its delay loop at full turbo.
pub fn delay_cycles(us: f64, max_ghz: f64) -> f64 {
    us * 1e3 * max_ghz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_labels() {
        assert_eq!(Schedule::Static { chunk: 1 }.label(), "static_1");
        assert_eq!(Schedule::Dynamic { chunk: 8 }.label(), "dynamic_8");
        assert_eq!(Schedule::Guided { min_chunk: 4 }.label(), "guided_4");
    }

    #[test]
    fn schedule_parsing() {
        assert_eq!(Schedule::parse("dynamic,1"), Some(Schedule::Dynamic { chunk: 1 }));
        assert_eq!(Schedule::parse("STATIC, 8"), Some(Schedule::Static { chunk: 8 }));
        assert_eq!(Schedule::parse("guided"), Some(Schedule::Guided { min_chunk: 1 }));
        assert_eq!(Schedule::parse("auto"), None);
        assert_eq!(Schedule::parse("dynamic,0"), None);
        assert_eq!(Schedule::parse("dynamic,1,2"), None);
    }

    #[test]
    fn measured_wrapper_shape() {
        let r = RegionSpec::measured(4, 10, 5, vec![Construct::Barrier]);
        // Warm-up block first, unmeasured.
        let Construct::Repeat { count, body } = &r.constructs[0] else {
            panic!("measured() must emit a warm-up Repeat first, got {:?}", r.constructs[0])
        };
        assert_eq!(*count, 2);
        assert!(!body
            .iter()
            .any(|c| matches!(c, Construct::MarkBegin(_) | Construct::MarkEnd(_))));
        // Then the measured block.
        let Construct::Repeat { count, body } = &r.constructs[1] else {
            panic!("measured() must emit the measured Repeat second, got {:?}", r.constructs[1])
        };
        assert_eq!(*count, 10);
        assert!(matches!(body[0], Construct::Barrier));
        assert!(matches!(body[1], Construct::MarkBegin(0)));
        assert!(matches!(body[3], Construct::MarkEnd(0)));
    }

    #[test]
    fn delay_cycles_scale_with_frequency() {
        assert_eq!(delay_cycles(15.0, 3.4), 51_000.0);
        assert_eq!(delay_cycles(0.1, 3.7), 370.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        RegionSpec::new(0, vec![]);
    }
}
