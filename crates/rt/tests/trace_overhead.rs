//! Tracing overhead guarantees, on both backends.
//!
//! The simulated backend must be *time-identical* with tracing on or off:
//! span recording happens outside virtual time and the marker micro-ops
//! are free, so enabling the recorder may never change a result. The
//! native backend's recorder is a plain per-thread `Vec` push, so a
//! traced run must stay within a generous factor of an untraced one, and
//! a disabled recorder must leave no trace behind at all.

use ompvar_obs::{wellformed, SpanKind};
use ompvar_rt::config::RtConfig;
use ompvar_rt::native::NativeRuntime;
use ompvar_rt::region::{Construct, RegionSpec, Schedule};
use ompvar_rt::simrt::SimRuntime;
use ompvar_topology::{MachineSpec, Places};

/// A region touching every traced construct kind.
fn mixed_region(n: usize, reps: u32) -> RegionSpec {
    RegionSpec::measured(
        n,
        reps,
        1,
        vec![
            Construct::Barrier,
            Construct::ParallelFor {
                schedule: Schedule::Dynamic { chunk: 1 },
                total_iters: 64,
                body_us: 0.5,
                ordered_us: Some(0.1),
                nowait: false,
            },
            Construct::Critical { body_us: 0.2 },
            Construct::Single { body_us: 0.2 },
            Construct::Tasks {
                per_spawner: 4,
                body_us: 0.2,
                master_only: false,
            },
        ],
    )
}

fn sim_rt() -> SimRuntime {
    let machine = MachineSpec::vera();
    let config = RtConfig::pinned_close(Places::Threads(Some(4)));
    SimRuntime::new(machine, config)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

#[test]
fn sim_virtual_time_is_identical_traced_and_untraced() {
    let region = mixed_region(4, 4);
    // Default (noisy) parameters: determinism per seed must make the
    // traced run reproduce the untraced one exactly, noise and all.
    let off = sim_rt().run(&region, 42).expect("untraced run completes");
    let on = sim_rt()
        .with_tracing(true)
        .run(&region, 42)
        .expect("traced run completes");
    assert_eq!(off.reps(), on.reps(), "tracing changed repetition times");
    assert_eq!(off.wall_us, on.wall_us, "tracing changed wall time");
    assert_eq!(off.counters, on.counters, "tracing changed engine counters");
    assert!(off.trace.is_none(), "untraced run carries a trace");
    let trace = on.trace.as_ref().expect("traced run records a trace");
    assert!(!trace.is_empty());
}

#[test]
fn sim_trace_is_well_formed_and_covers_constructs() {
    let region = mixed_region(4, 3);
    let res = sim_rt()
        .with_tracing(true)
        .run(&region, 7)
        .expect("traced run completes");
    let trace = res.trace.as_ref().expect("trace recorded");
    let spans = wellformed::check(trace)
        .unwrap_or_else(|errs| panic!("sim trace malformed: {errs:?}"));
    assert!(!spans.is_empty());
    assert_eq!(trace.count_of(SpanKind::Region), 4, "one region span per thread");
    for kind in [
        SpanKind::Barrier,
        SpanKind::Workshare,
        SpanKind::Chunk,
        SpanKind::Ordered,
        SpanKind::Critical,
        SpanKind::Single,
        SpanKind::Task,
    ] {
        assert!(
            trace.count_of(kind) > 0,
            "no {} spans in sim trace",
            kind.name()
        );
    }
    // The metrics registry sees the same spans.
    let stats = res.span_stats();
    assert!(stats.iter().any(|(k, s)| *k == SpanKind::Barrier && s.count > 0));
}

#[test]
fn native_disabled_recorder_leaves_no_trace_and_does_not_distort_medians() {
    let region = mixed_region(2, 8);
    let rt_off = NativeRuntime::new(RtConfig::unbound());
    let rt_on = rt_off.clone().with_tracing(true);
    let off = rt_off.run(&region).expect("untraced native run completes");
    let on = rt_on.run(&region).expect("traced native run completes");
    assert!(off.trace.is_none(), "disabled recorder left a trace");
    let trace = on.trace.as_ref().expect("traced run records a trace");
    let spans = wellformed::check(trace)
        .unwrap_or_else(|errs| panic!("native trace malformed: {errs:?}"));
    assert!(!spans.is_empty());
    // Generous bound: recording is a Vec push per event, so even a noisy
    // CI host must keep the traced median within 10× + 1 ms of the
    // untraced one. This guards against accidental locking or I/O on the
    // recording path, not against cache effects.
    let m_off = median(off.reps().to_vec());
    let m_on = median(on.reps().to_vec());
    assert!(
        m_on <= m_off * 10.0 + 1_000.0,
        "tracing distorted the median: {m_off} µs -> {m_on} µs"
    );
}

#[test]
fn native_trace_covers_constructs() {
    let region = mixed_region(2, 2);
    let res = NativeRuntime::new(RtConfig::unbound())
        .with_tracing(true)
        .run(&region)
        .expect("traced native run completes");
    let trace = res.trace.as_ref().expect("trace recorded");
    assert_eq!(trace.count_of(SpanKind::Region), 2, "one region span per thread");
    for kind in [
        SpanKind::Barrier,
        SpanKind::Workshare,
        SpanKind::Chunk,
        SpanKind::Ordered,
        SpanKind::Critical,
        SpanKind::Single,
        SpanKind::Task,
    ] {
        assert!(
            trace.count_of(kind) > 0,
            "no {} spans in native trace",
            kind.name()
        );
    }
}
