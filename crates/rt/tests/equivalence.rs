//! Cross-backend equivalence matrix: one test per `Construct` variant.
//!
//! Every test builds a small region exercising one construct, runs it on
//! the simulated backend (modeled Vera node, sterile parameters) and the
//! native thread backend, and asserts that both report exactly the
//! semantic effects predicted by `RegionSpec::expected_effects` — and
//! that both produce the same measured-interval shape. Timing differs
//! between a model and real threads by design; the semantic effects must
//! not.

use ompvar_rt::region::{Construct, RegionSpec, Schedule};
use ompvar_rt::{NativeRuntime, RtConfig, SimRuntime};
use ompvar_sim::params::SimParams;
use ompvar_sim::time::SEC;
use ompvar_topology::{MachineSpec, Places};
use std::time::Duration;

const SEED: u64 = 9;

/// Run `region` on both backends and hold each to the predicted
/// semantic effects; also compare interval shapes across backends.
fn assert_equivalent(region: &RegionSpec) {
    let want = region.expected_effects();
    let sim = SimRuntime::new(
        MachineSpec::vera(),
        RtConfig::pinned_close(Places::Threads(Some(region.n_threads))),
    )
    .with_params(SimParams::sterile())
    .with_time_limit(300 * SEC);
    let s = sim.run(region, SEED).expect("sim backend completes");
    assert_eq!(s.effects, want, "sim effects diverge from prediction");

    let native = NativeRuntime::new(RtConfig::unbound()).with_deadline(Some(Duration::from_secs(30)));
    let n = native.run(region).expect("native backend completes");
    assert_eq!(n.effects, want, "native effects diverge from prediction");
    assert_eq!(n.effects.mutex_violations, 0);
    assert_eq!(n.effects.ordered_violations, 0);

    let shape = |r: &ompvar_rt::RegionResult| -> Vec<(u32, usize)> {
        r.intervals_us.iter().map(|(k, v)| (*k, v.len())).collect()
    };
    assert_eq!(shape(&s), shape(&n), "interval shapes differ across backends");
}

fn region(constructs: Vec<Construct>) -> RegionSpec {
    RegionSpec::new(2, constructs).expect("test region is valid")
}

fn pfor(schedule: Schedule, ordered: bool, nowait: bool) -> Construct {
    Construct::ParallelFor {
        schedule,
        total_iters: 12,
        body_us: 0.2,
        ordered_us: ordered.then_some(0.1),
        nowait,
    }
}

#[test]
fn delay() {
    assert_equivalent(&region(vec![Construct::DelayUs(1.5)]));
}

#[test]
fn compute() {
    assert_equivalent(&region(vec![Construct::Compute {
        cycles: 3000.0,
        class: ompvar_sim::task::CorunClass::Latency,
    }]));
}

#[test]
fn stream_bytes() {
    assert_equivalent(&region(vec![Construct::StreamBytes(4096.0)]));
}

#[test]
fn parallel_for_static() {
    assert_equivalent(&region(vec![pfor(Schedule::Static { chunk: 1 }, false, false)]));
}

#[test]
fn parallel_for_static_chunked() {
    assert_equivalent(&region(vec![pfor(Schedule::Static { chunk: 5 }, false, false)]));
}

#[test]
fn parallel_for_dynamic() {
    assert_equivalent(&region(vec![pfor(Schedule::Dynamic { chunk: 2 }, false, false)]));
}

#[test]
fn parallel_for_guided() {
    assert_equivalent(&region(vec![pfor(Schedule::Guided { min_chunk: 1 }, false, false)]));
}

#[test]
fn parallel_for_ordered() {
    assert_equivalent(&region(vec![pfor(Schedule::Dynamic { chunk: 1 }, true, false)]));
}

#[test]
fn parallel_for_nowait() {
    // A trailing barrier keeps the region's end rendezvous explicit.
    assert_equivalent(&region(vec![
        pfor(Schedule::Dynamic { chunk: 2 }, false, true),
        Construct::Barrier,
    ]));
}

#[test]
fn back_to_back_loops() {
    // Two distinct workshares in one region: regression shape for the
    // loop-cursor aliasing bug found by fuzzing (qcheck seed 46).
    assert_equivalent(&region(vec![
        pfor(Schedule::Static { chunk: 3 }, false, false),
        pfor(Schedule::Static { chunk: 1 }, false, false),
    ]));
}

#[test]
fn barrier() {
    assert_equivalent(&region(vec![Construct::Barrier, Construct::Barrier]));
}

#[test]
fn critical() {
    assert_equivalent(&region(vec![Construct::Critical { body_us: 0.3 }]));
}

#[test]
fn lock_unlock() {
    assert_equivalent(&region(vec![Construct::LockUnlock { body_us: 0.3 }]));
}

#[test]
fn atomic() {
    assert_equivalent(&region(vec![Construct::Atomic, Construct::Atomic]));
}

#[test]
fn single() {
    assert_equivalent(&region(vec![Construct::Single { body_us: 0.3 }]));
}

#[test]
fn reduction() {
    assert_equivalent(&region(vec![Construct::Reduction { body_us: 0.3 }]));
}

#[test]
fn tasks_all_spawn() {
    assert_equivalent(&region(vec![Construct::Tasks {
        per_spawner: 3,
        body_us: 0.2,
        master_only: false,
    }]));
}

#[test]
fn tasks_master_only() {
    assert_equivalent(&region(vec![Construct::Tasks {
        per_spawner: 3,
        body_us: 0.2,
        master_only: true,
    }]));
}

#[test]
fn locked_scope() {
    assert_equivalent(&region(vec![Construct::Locked {
        lock: 0,
        body: vec![Construct::DelayUs(0.3), Construct::Atomic],
    }]));
}

#[test]
fn locked_nested_distinct_locks() {
    // Consistent acquisition order over two distinct named locks.
    assert_equivalent(&region(vec![Construct::Locked {
        lock: 0,
        body: vec![Construct::Locked {
            lock: 1,
            body: vec![Construct::Critical { body_us: 0.1 }],
        }],
    }]));
}

#[test]
fn locked_same_lock_across_sites() {
    // Two scopes naming the same lock id alias one lock object; entry
    // counts must not be double-harvested.
    assert_equivalent(&region(vec![
        Construct::Locked {
            lock: 2,
            body: vec![Construct::DelayUs(0.1)],
        },
        Construct::Barrier,
        Construct::Locked {
            lock: 2,
            body: vec![Construct::DelayUs(0.1)],
        },
    ]));
}

#[test]
fn locked_inside_repeat() {
    assert_equivalent(&region(vec![Construct::Repeat {
        count: 3,
        body: vec![Construct::Locked {
            lock: 1,
            body: vec![Construct::Atomic],
        }],
    }]));
}

#[test]
fn parallel_region_nested() {
    assert_equivalent(&region(vec![Construct::ParallelRegion {
        body: vec![Construct::Critical { body_us: 0.2 }, Construct::Barrier],
    }]));
}

#[test]
fn marks() {
    assert_equivalent(&region(vec![
        Construct::MarkBegin(3),
        Construct::DelayUs(1.0),
        Construct::MarkEnd(3),
    ]));
}

#[test]
fn repeat() {
    assert_equivalent(&region(vec![Construct::Repeat {
        count: 3,
        body: vec![
            pfor(Schedule::Dynamic { chunk: 2 }, false, false),
            Construct::Single { body_us: 0.2 },
        ],
    }]));
}

#[test]
fn repeat_with_marks_and_reduction() {
    assert_equivalent(&region(vec![Construct::Repeat {
        count: 2,
        body: vec![
            Construct::MarkBegin(1),
            Construct::Reduction { body_us: 0.2 },
            Construct::MarkEnd(1),
        ],
    }]));
}

#[test]
fn mixed_kitchen_sink() {
    assert_equivalent(&region(vec![
        Construct::Barrier,
        pfor(Schedule::Guided { min_chunk: 2 }, false, false),
        Construct::Critical { body_us: 0.1 },
        Construct::Single { body_us: 0.1 },
        Construct::Tasks {
            per_spawner: 2,
            body_us: 0.1,
            master_only: false,
        },
        Construct::Repeat {
            count: 2,
            body: vec![Construct::Atomic, Construct::Reduction { body_us: 0.1 }],
        },
    ]));
}
