//! The five BabelStream kernels and the region builder.

use ompvar_rt::region::{Construct, RegionSpec};

/// BabelStream configuration (upstream defaults, as used in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Elements per array (doubles). The paper uses 2²⁵.
    pub array_elems: u64,
    /// Timed iterations per run (upstream default 100).
    pub iterations: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            array_elems: 1 << 25,
            iterations: 100,
        }
    }
}

impl StreamConfig {
    /// Reduced-size configuration for tests and quick runs.
    pub fn small() -> Self {
        StreamConfig {
            array_elems: 1 << 18,
            iterations: 10,
        }
    }
}

/// The five kernels, in BabelStream's reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = scalar * c[i]`
    Mul,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + scalar * c[i]`
    Triad,
    /// `sum += a[i] * b[i]`
    Dot,
}

impl StreamKernel {
    /// All kernels in order.
    pub const ALL: [StreamKernel; 5] = [
        StreamKernel::Copy,
        StreamKernel::Mul,
        StreamKernel::Add,
        StreamKernel::Triad,
        StreamKernel::Dot,
    ];

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            StreamKernel::Copy => "copy",
            StreamKernel::Mul => "mul",
            StreamKernel::Add => "add",
            StreamKernel::Triad => "triad",
            StreamKernel::Dot => "dot",
        }
    }

    /// Marker-pair id used for this kernel in the region.
    pub fn marker(&self) -> u32 {
        match self {
            StreamKernel::Copy => 0,
            StreamKernel::Mul => 1,
            StreamKernel::Add => 2,
            StreamKernel::Triad => 3,
            StreamKernel::Dot => 4,
        }
    }

    /// Bytes moved per kernel invocation for `elems`-element arrays
    /// (BabelStream's accounting: reads + writes of 8-byte doubles).
    pub fn bytes_moved(&self, elems: u64) -> f64 {
        let arrays = match self {
            StreamKernel::Copy | StreamKernel::Mul | StreamKernel::Dot => 2.0,
            StreamKernel::Add | StreamKernel::Triad => 3.0,
        };
        arrays * 8.0 * elems as f64
    }

    /// Whether the kernel ends in a reduction (dot product).
    pub fn has_reduction(&self) -> bool {
        matches!(self, StreamKernel::Dot)
    }
}

/// Attainable bandwidth implied by a kernel time (GB/s, decimal giga).
pub fn bandwidth_gbs(kernel: StreamKernel, cfg: &StreamConfig, time_us: f64) -> f64 {
    kernel.bytes_moved(cfg.array_elems) / (time_us * 1e3)
}

/// Build the BabelStream region: per iteration, each kernel is timed with
/// its own marker pair; kernels are separated by team barriers (each is
/// its own `parallel for` in the original).
pub fn region(cfg: &StreamConfig, n_threads: usize) -> RegionSpec {
    let mut body = Vec::new();
    for k in StreamKernel::ALL {
        let per_thread = k.bytes_moved(cfg.array_elems) / n_threads as f64;
        // BabelStream reads the timer on the master *before* forking the
        // kernel's parallel region (so a delayed master lengthens, never
        // shortens, the measured interval), then times until after the
        // join.
        body.push(Construct::MarkBegin(k.marker()));
        body.push(Construct::Barrier);
        body.push(Construct::StreamBytes(per_thread));
        if k.has_reduction() {
            // Dot's final combine: serialized accumulation + barrier.
            body.push(Construct::Reduction { body_us: 0.0 });
        } else {
            body.push(Construct::Barrier);
        }
        body.push(Construct::MarkEnd(k.marker()));
    }
    RegionSpec::new(
        n_threads,
        vec![Construct::Repeat {
            count: cfg.iterations,
            body,
        }],
    )
    .expect("BabelStream region is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_accounting_matches_babelstream() {
        let e = 1 << 25;
        assert_eq!(StreamKernel::Copy.bytes_moved(e), 2.0 * 8.0 * e as f64);
        assert_eq!(StreamKernel::Triad.bytes_moved(e), 3.0 * 8.0 * e as f64);
        assert_eq!(StreamKernel::Dot.bytes_moved(e), 2.0 * 8.0 * e as f64);
    }

    #[test]
    fn markers_are_distinct_and_ordered() {
        let ms: Vec<u32> = StreamKernel::ALL.iter().map(|k| k.marker()).collect();
        assert_eq!(ms, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn region_contains_all_kernels() {
        let r = region(&StreamConfig::small(), 4);
        let Construct::Repeat { count, body } = &r.constructs[0] else {
            panic!()
        };
        assert_eq!(*count, 10);
        let streams = body
            .iter()
            .filter(|c| matches!(c, Construct::StreamBytes(_)))
            .count();
        assert_eq!(streams, 5);
    }

    #[test]
    fn bandwidth_computation() {
        let cfg = StreamConfig::default();
        // 512 MiB copy in 10 ms → ~53.7 GB/s.
        let gbs = bandwidth_gbs(StreamKernel::Copy, &cfg, 10_000.0);
        assert!((gbs - 53.687).abs() < 0.1, "{gbs}");
    }

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = StreamConfig::default();
        assert_eq!(cfg.array_elems, 1 << 25);
        assert_eq!(cfg.iterations, 100);
    }
}
