//! BabelStream result extraction: per-kernel min/avg/max and the paper's
//! normalized-extremes presentation.

use crate::kernels::StreamKernel;
use ompvar_core::Summary;
use ompvar_rt::config::RegionResult;
use std::collections::BTreeMap;

/// Per-kernel timing statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelStats {
    /// Minimum iteration time, µs.
    pub min_us: f64,
    /// Average iteration time, µs.
    pub avg_us: f64,
    /// Maximum iteration time, µs.
    pub max_us: f64,
}

impl KernelStats {
    /// Minimum normalized to the average (≤ 1).
    pub fn norm_min(&self) -> f64 {
        self.min_us / self.avg_us
    }

    /// Maximum normalized to the average (≥ 1).
    pub fn norm_max(&self) -> f64 {
        self.max_us / self.avg_us
    }
}

/// Extract per-kernel stats from one run's [`RegionResult`]. The first
/// iteration is discarded as warm-up, as BabelStream does.
pub fn kernel_stats(res: &RegionResult) -> BTreeMap<StreamKernel, KernelStats> {
    let mut out = BTreeMap::new();
    for k in StreamKernel::ALL {
        let times = res
            .intervals_us
            .get(&k.marker())
            .unwrap_or_else(|| panic!("missing kernel interval {}", k.label()));
        assert!(
            times.len() >= 2,
            "need ≥2 iterations to discard warm-up for {}",
            k.label()
        );
        let steady = &times[1..];
        let s = Summary::of(steady);
        out.insert(
            k,
            KernelStats {
                min_us: s.min,
                avg_us: s.mean,
                max_us: s.max,
            },
        );
    }
    out
}

/// The paper's Figures 3–5 presentation for BabelStream: per kernel, the
/// normalized (min, max) of each of the given runs.
pub fn normalized_extremes(
    runs: &[BTreeMap<StreamKernel, KernelStats>],
) -> BTreeMap<StreamKernel, Vec<(f64, f64)>> {
    let mut out: BTreeMap<StreamKernel, Vec<(f64, f64)>> = BTreeMap::new();
    for r in runs {
        for (k, s) in r {
            out.entry(*k).or_default().push((s.norm_min(), s.norm_max()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{region, StreamConfig};
    use ompvar_rt::config::RtConfig;
    use ompvar_rt::runner::RegionRunner;
    use ompvar_rt::simrt::SimRuntime;
    use ompvar_sim::params::SimParams;
    use ompvar_topology::{MachineSpec, Places};

    fn run(n: usize, sterile: bool) -> RegionResult {
        let machine = MachineSpec::vera();
        let params = if sterile {
            SimParams::sterile()
        } else {
            SimParams::for_machine(&machine)
        };
        let rt = SimRuntime::new(machine, RtConfig::pinned_close(Places::Threads(Some(n))))
            .with_params(params);
        rt.run_region(&region(&StreamConfig::small(), n), 11)
            .expect("stream region completes")
    }

    #[test]
    fn all_kernels_reported() {
        let stats = kernel_stats(&run(8, true));
        assert_eq!(stats.len(), 5);
        for (k, s) in &stats {
            assert!(s.min_us > 0.0, "{}", k.label());
            // Allow a few ulps: sterile iterations are identical and the
            // mean can differ from min/max in the last bit.
            let eps = 1e-9 * s.avg_us;
            assert!(s.min_us <= s.avg_us + eps && s.avg_us <= s.max_us + eps);
        }
    }

    #[test]
    fn add_and_triad_move_more_bytes_than_copy() {
        let stats = kernel_stats(&run(8, true));
        let copy = stats[&StreamKernel::Copy].avg_us;
        let add = stats[&StreamKernel::Add].avg_us;
        let triad = stats[&StreamKernel::Triad].avg_us;
        assert!(add > copy * 1.2, "add {add} vs copy {copy}");
        assert!(triad > copy * 1.2, "triad {triad} vs copy {copy}");
    }

    #[test]
    fn more_threads_reduce_time() {
        let t2 = kernel_stats(&run(2, true))[&StreamKernel::Triad].avg_us;
        let t16 = kernel_stats(&run(16, true))[&StreamKernel::Triad].avg_us;
        assert!(t16 < t2, "triad time should shrink: {t2} → {t16}");
    }

    #[test]
    fn normalized_extremes_bracket_one() {
        let runs: Vec<_> = (0..3).map(|_| kernel_stats(&run(8, false))).collect();
        let ext = normalized_extremes(&runs);
        for (_, series) in ext {
            assert_eq!(series.len(), 3);
            for (lo, hi) in series {
                assert!(lo <= 1.0 + 1e-12 && hi >= 1.0 - 1e-12);
            }
        }
    }
}
