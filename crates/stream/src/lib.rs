#![warn(missing_docs)]

//! # ompvar-bench-stream — BabelStream port
//!
//! The BabelStream memory-bandwidth benchmark: five vector kernels (copy,
//! mul, add, triad, dot) over arrays of 2²⁵ doubles, repeated for a
//! configurable number of iterations. Per kernel, each run reports the
//! minimum, average and maximum execution time; the paper normalizes min
//! and max to the average to depict run-to-run variation.

pub mod kernels;
pub mod results;

pub use kernels::{region, StreamConfig, StreamKernel};
pub use results::{kernel_stats, normalized_extremes, KernelStats};
