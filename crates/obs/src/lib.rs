#![warn(missing_docs)]

//! # ompvar-obs — unified tracing & telemetry
//!
//! The observability layer shared by both runtime backends. The paper's
//! method is *attribution* — explaining run-to-run variability by lining
//! timing distributions up against frequency logs and placement — and
//! that requires seeing *which* barrier, workshare pass, or noise burst
//! inside a run produced an outlier, not just aggregate counters.
//!
//! This crate is dependency-free and backend-agnostic:
//!
//! * [`event`] — the typed event vocabulary: span kinds
//!   ([`SpanKind`]: region, workshare, chunk, barrier, single, critical,
//!   ordered, task), instant kinds ([`InstantKind`]: noise preemption,
//!   fault injection, frequency retarget), and the flat [`TraceEvent`]
//!   record (timestamp, thread, core).
//! * [`record`] — the [`TraceSink`] trait plus a lock-free-ish
//!   per-thread buffered recorder ([`ThreadRecorder`]/[`TeamRecorder`]):
//!   the hot path is a plain vector push; the only lock is taken once
//!   per thread at submission time.
//! * [`wellformed`] — structural validation (every begin matched by an
//!   end, per-thread LIFO nesting, per-thread monotone timestamps) and
//!   span recovery.
//! * [`metrics`] — a log-bucketed [`LatencyHistogram`] and the
//!   per-construct [`MetricsRegistry`] (p50/p95/p99/max).
//! * [`attr`] — the causal time-attribution vocabulary: the typed
//!   [`AttrSource`] ledger ([`RunAttribution`]) the sim engine charges
//!   every preemption, migration, SMT co-run, DVFS droop, sync wait and
//!   fault stall to, with a per-thread conservation invariant.
//! * [`sketch`] — streaming mergeable statistics ([`QuantileSketch`],
//!   [`VarAccum`]) whose integer merges are exactly associative and
//!   commutative, so sharded campaigns aggregate byte-identically at
//!   any worker count.
//! * [`chrome`] — hand-rolled Chrome trace-event JSON export, loadable
//!   in Perfetto / `chrome://tracing`, with frequency samples exported
//!   as counter tracks.
//! * [`json`] — a minimal JSON value model, parser and string escaper,
//!   used for machine-readable run reports and output validation.
//!
//! Timestamps are plain `u64` nanoseconds: virtual time on the simulated
//! backend, a monotonic clock on the native one. The two backends thus
//! produce structurally identical traces that all downstream tooling
//! consumes uniformly.

pub mod attr;
pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod record;
pub mod sketch;
pub mod wellformed;

pub use attr::{AttrSample, AttrSource, RunAttribution, ThreadAttribution, N_SOURCES};
pub use chrome::{attr_counter_events, chrome_trace, chrome_trace_attr, chrome_trace_lanes};
pub use event::{
    EventKind, InstantKind, Span, SpanKind, Trace, TraceEvent, CORE_UNKNOWN, THREAD_GLOBAL,
};
pub use metrics::{LatencyHistogram, MetricsRegistry, SpanStats};
pub use record::{NullSink, TeamRecorder, ThreadRecorder, TraceSink};
pub use sketch::{QuantileSketch, VarAccum};
