//! The typed trace-event vocabulary shared by both backends.

/// Construct categories that produce spans (begin/end pairs).
///
/// The discriminant doubles as a dense index (see [`SpanKind::index`]),
/// so per-kind tables can be plain arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One thread's participation in the parallel region, birth to join.
    Region,
    /// One thread's pass over a work-shared loop (first grab attempt to
    /// observing exhaustion).
    Workshare,
    /// One dispatched chunk of a work-shared loop (dispatch + body).
    Chunk,
    /// Barrier episode: arrival to release (the wait is inside the span).
    Barrier,
    /// `single` construct: arrival to body completion (losers get a
    /// zero-ish span covering just the arbitration).
    Single,
    /// Critical/lock section: acquisition attempt to release (the
    /// acquire wait is inside the span).
    Critical,
    /// `ordered` section: ticket wait to ticket handoff.
    Ordered,
    /// One explicit task's execution (steal to completion).
    Task,
    /// One supervised attempt of a campaign unit (supervisor timeline,
    /// not a runtime construct — see [`SpanKind::is_construct`]).
    Attempt,
}

impl SpanKind {
    /// Every kind, in display order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Region,
        SpanKind::Workshare,
        SpanKind::Chunk,
        SpanKind::Barrier,
        SpanKind::Single,
        SpanKind::Critical,
        SpanKind::Ordered,
        SpanKind::Task,
        SpanKind::Attempt,
    ];

    /// Stable lower-case name; also the Chrome trace-event name.
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::Region => "region",
            SpanKind::Workshare => "workshare",
            SpanKind::Chunk => "chunk",
            SpanKind::Barrier => "barrier",
            SpanKind::Single => "single",
            SpanKind::Critical => "critical",
            SpanKind::Ordered => "ordered",
            SpanKind::Task => "task",
            SpanKind::Attempt => "attempt",
        }
    }

    /// Dense index into per-kind arrays (`0..SpanKind::ALL.len()`).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether this kind is emitted by the runtime backends (an OpenMP
    /// construct). [`SpanKind::Attempt`] lives on the campaign
    /// supervisor's timeline instead, so backend-coverage checks must
    /// not demand it.
    pub const fn is_construct(self) -> bool {
        !matches!(self, SpanKind::Attempt)
    }
}

/// Point events: things that happen *to* a run rather than *in* it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstantKind {
    /// A kernel-noise arrival preempted a user thread.
    NoisePreemption,
    /// A fault-plan injection fired.
    FaultInjection,
    /// The DVFS governor retargeted a socket frequency.
    FreqRetarget,
    /// The campaign supervisor scheduled a retry of a failed unit
    /// (after a classified-transient failure).
    SupervisorRetry,
    /// The campaign supervisor quarantined a unit (permanent failure or
    /// exhausted retry budget).
    SupervisorQuarantine,
    /// The campaign supervisor replayed a completed unit from the
    /// checkpoint manifest instead of re-running it.
    SupervisorResume,
    /// The campaign supervisor flushed the checkpoint manifest.
    SupervisorCheckpoint,
    /// The executor's watchdog reaped a unit attempt that exceeded its
    /// wall-clock deadline.
    SupervisorTimeout,
    /// An executor worker stole a unit from another worker's queue.
    SupervisorSteal,
}

impl InstantKind {
    /// Every kind, in display order.
    pub const ALL: [InstantKind; 9] = [
        InstantKind::NoisePreemption,
        InstantKind::FaultInjection,
        InstantKind::FreqRetarget,
        InstantKind::SupervisorRetry,
        InstantKind::SupervisorQuarantine,
        InstantKind::SupervisorResume,
        InstantKind::SupervisorCheckpoint,
        InstantKind::SupervisorTimeout,
        InstantKind::SupervisorSteal,
    ];

    /// Stable lower-case name; also the Chrome trace-event name.
    pub const fn name(self) -> &'static str {
        match self {
            InstantKind::NoisePreemption => "noise_preemption",
            InstantKind::FaultInjection => "fault_injection",
            InstantKind::FreqRetarget => "freq_retarget",
            InstantKind::SupervisorRetry => "supervisor_retry",
            InstantKind::SupervisorQuarantine => "supervisor_quarantine",
            InstantKind::SupervisorResume => "supervisor_resume",
            InstantKind::SupervisorCheckpoint => "supervisor_checkpoint",
            InstantKind::SupervisorTimeout => "supervisor_timeout",
            InstantKind::SupervisorSteal => "supervisor_steal",
        }
    }
}

/// What one [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A span of this kind opens on the event's thread.
    Begin(SpanKind),
    /// The innermost open span of this kind closes on the event's thread.
    End(SpanKind),
    /// A point event.
    Instant(InstantKind),
}

/// Sentinel core id: the event is not attributed to a specific core.
pub const CORE_UNKNOWN: u32 = u32::MAX;

/// Sentinel thread id: engine-global events (fault injections, socket
/// frequency retargets) that belong to no team thread.
pub const THREAD_GLOBAL: u32 = u32::MAX;

/// One trace event. Timestamps are nanoseconds on the backend's own
/// clock: virtual time (sim) or monotonic time since region start
/// (native).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event time in nanoseconds.
    pub time_ns: u64,
    /// Team thread rank, or [`THREAD_GLOBAL`].
    pub thread: u32,
    /// Hardware-thread id the event occurred on, or [`CORE_UNKNOWN`].
    pub core: u32,
    /// Payload.
    pub kind: EventKind,
}

/// A completed begin/end pair recovered from a trace
/// (see [`crate::wellformed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Construct category.
    pub kind: SpanKind,
    /// Owning thread rank.
    pub thread: u32,
    /// Begin timestamp (ns).
    pub begin_ns: u64,
    /// End timestamp (ns).
    pub end_ns: u64,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.begin_ns
    }
}

/// An ordered collection of trace events. Events of one thread appear in
/// that thread's emission order; different threads' events may be
/// grouped in per-thread blocks (native backend) or globally interleaved
/// by time (simulated backend) — consumers only rely on per-thread
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The events.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Wrap an event list.
    pub fn new(events: Vec<TraceEvent>) -> Trace {
        Trace { events }
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of span-begin events (the "span count" of a trace).
    pub fn span_begins(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Begin(_)))
            .count()
    }

    /// Number of begins of one span kind.
    pub fn count_of(&self, kind: SpanKind) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Begin(kind))
            .count()
    }

    /// Number of instants of one kind.
    pub fn instants_of(&self, kind: InstantKind) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Instant(kind))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_named() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
        for k in InstantKind::ALL {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn trace_counts() {
        let t = Trace::new(vec![
            TraceEvent { time_ns: 0, thread: 0, core: 0, kind: EventKind::Begin(SpanKind::Barrier) },
            TraceEvent { time_ns: 5, thread: 0, core: 0, kind: EventKind::End(SpanKind::Barrier) },
            TraceEvent {
                time_ns: 3,
                thread: THREAD_GLOBAL,
                core: CORE_UNKNOWN,
                kind: EventKind::Instant(InstantKind::FaultInjection),
            },
        ]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.span_begins(), 1);
        assert_eq!(t.count_of(SpanKind::Barrier), 1);
        assert_eq!(t.count_of(SpanKind::Task), 0);
        assert_eq!(t.instants_of(InstantKind::FaultInjection), 1);
        assert_eq!(t.instants_of(InstantKind::FreqRetarget), 0);
    }

    #[test]
    fn span_duration() {
        let s = Span { kind: SpanKind::Chunk, thread: 1, begin_ns: 10, end_ns: 35 };
        assert_eq!(s.duration_ns(), 25);
    }
}
