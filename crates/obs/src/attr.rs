//! Causal time attribution: the typed ledger that explains *where every
//! nanosecond of a benchmark thread's wall time went*.
//!
//! The source paper can only correlate variability with pinning, SMT and
//! DVFS from the outside; the simulator knows the exact causal event
//! behind every lost nanosecond. When attribution is enabled the engine
//! charges each slowdown it applies to a benchmark thread to a typed
//! [`AttrSource`] at the moment the slowdown is applied:
//!
//! * kernel-noise preemption (displaced-queue time + cache-refill cost),
//! * migrations (cache/TLB penalty),
//! * SMT sibling co-run throughput loss,
//! * sub-nominal frequency intervals (pulse droop and fault caps,
//!   measured against the machine's *clean* DVFS trajectory — the
//!   sustainable-turbo frequency it would run at with no noise),
//! * timer-tick charges,
//! * fault-injector stalls,
//! * sync waits, decomposed into inherent contention vs. the part
//!   explained by noise delaying other team members
//!   ([`AttrSource::NoiseDelayedArrival`]),
//! * memory-bandwidth contention and runtime bookkeeping overhead
//!   (non-noise, inherent to the program + runtime).
//!
//! The ledger satisfies a **conservation invariant**: per thread,
//! `useful_ns + Σ by_source ≤ wall time` (equality up to the time the
//! thread spent queued behind nothing or in un-flushed tails at run
//! end), checked by [`RunAttribution::check_conservation`] and enforced
//! on every fuzz case by qcheck oracle #12. Attribution never perturbs
//! the simulation: attributed and plain runs are virtual-time
//! bit-identical.

/// Number of attribution sources (length of [`AttrSource::ALL`]).
pub const N_SOURCES: usize = 10;

/// The causal source a slice of wall time is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrSource {
    /// Displaced by kernel noise: time queued while preempted, plus the
    /// post-preemption cache-refill cost. Also covers time queued behind
    /// other tasks sharing the CPU (oversubscription rotation).
    Preemption,
    /// Migration penalty (cache/TLB refill after moving hardware
    /// threads).
    Migration,
    /// Throughput lost to a busy SMT sibling hardware thread.
    SmtCoRun,
    /// Time lost to running below the clean DVFS trajectory: turbo-droop
    /// pulses and fault-injected frequency caps.
    SubNominalFreq,
    /// Timer-tick CPU charges.
    TimerTick,
    /// Fault-injector task stalls.
    FaultStall,
    /// Sync-wait time explained by noise delaying *other* team members
    /// (the classic noise-amplification path: the last arriver was
    /// preempted, everyone else pays).
    NoiseDelayedArrival,
    /// Inherent sync-wait time: load imbalance, lock contention, ordered
    /// hand-offs — present even on a sterile machine.
    SyncContention,
    /// Memory-bandwidth contention: streaming below the uncontended
    /// per-core bandwidth because siblings share the NUMA domain's bus.
    MemContention,
    /// Runtime bookkeeping: wake-up costs, lock/barrier/task dispatch
    /// overhead, spawn costs — the runtime's own price, not noise.
    RuntimeOverhead,
}

impl AttrSource {
    /// Every source, in ledger (discriminant) order.
    pub const ALL: [AttrSource; N_SOURCES] = [
        AttrSource::Preemption,
        AttrSource::Migration,
        AttrSource::SmtCoRun,
        AttrSource::SubNominalFreq,
        AttrSource::TimerTick,
        AttrSource::FaultStall,
        AttrSource::NoiseDelayedArrival,
        AttrSource::SyncContention,
        AttrSource::MemContention,
        AttrSource::RuntimeOverhead,
    ];

    /// Stable snake_case name (used in reports and Chrome tracks).
    pub fn name(self) -> &'static str {
        match self {
            AttrSource::Preemption => "preemption",
            AttrSource::Migration => "migration",
            AttrSource::SmtCoRun => "smt_corun",
            AttrSource::SubNominalFreq => "subnominal_freq",
            AttrSource::TimerTick => "timer_tick",
            AttrSource::FaultStall => "fault_stall",
            AttrSource::NoiseDelayedArrival => "noise_delayed_arrival",
            AttrSource::SyncContention => "sync_contention",
            AttrSource::MemContention => "mem_contention",
            AttrSource::RuntimeOverhead => "runtime_overhead",
        }
    }

    /// Ledger index (discriminant order, matches [`AttrSource::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this source is *noise* — external interference that a
    /// sterile machine (no noise tasks, no pulses, no faults, no ticks)
    /// never produces. Sterile runs must attribute exactly 0 ns to every
    /// noise source (qcheck oracle #12).
    pub fn is_noise(self) -> bool {
        match self {
            AttrSource::Preemption
            | AttrSource::Migration
            | AttrSource::SmtCoRun
            | AttrSource::SubNominalFreq
            | AttrSource::TimerTick
            | AttrSource::FaultStall
            | AttrSource::NoiseDelayedArrival => true,
            AttrSource::SyncContention
            | AttrSource::MemContention
            | AttrSource::RuntimeOverhead => false,
        }
    }
}

/// One benchmark thread's attribution ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadAttribution {
    /// Team rank of the thread.
    pub rank: usize,
    /// Wall time spent making *useful progress* on the program's own
    /// work at the machine's clean speed (ns).
    pub useful_ns: f64,
    /// Wall time charged to each source, indexed by
    /// [`AttrSource::index`] (ns).
    pub by_source: [f64; N_SOURCES],
}

impl ThreadAttribution {
    /// Fresh all-zero ledger for `rank`.
    pub fn new(rank: usize) -> ThreadAttribution {
        ThreadAttribution { rank, useful_ns: 0.0, by_source: [0.0; N_SOURCES] }
    }

    /// Nanoseconds charged to `source`.
    pub fn get(&self, source: AttrSource) -> f64 {
        self.by_source[source.index()]
    }

    /// Total attributed (non-useful) nanoseconds.
    pub fn attributed_ns(&self) -> f64 {
        self.by_source.iter().sum()
    }

    /// Total accounted nanoseconds: useful + attributed.
    pub fn accounted_ns(&self) -> f64 {
        self.useful_ns + self.attributed_ns()
    }

    /// Nanoseconds charged to noise sources only.
    pub fn noise_ns(&self) -> f64 {
        AttrSource::ALL
            .iter()
            .filter(|s| s.is_noise())
            .map(|&s| self.get(s))
            .sum()
    }
}

/// One cumulative ledger sample: run-wide per-source totals at `time_ns`
/// (the raw material for per-source Chrome counter tracks).
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSample {
    /// Virtual time of the sample.
    pub time_ns: u64,
    /// Cumulative ns charged to each source across all threads, indexed
    /// by [`AttrSource::index`].
    pub total_by_source: [f64; N_SOURCES],
}

/// The full attribution report of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunAttribution {
    /// Per-thread ledgers, indexed by team rank.
    pub threads: Vec<ThreadAttribution>,
    /// Cumulative per-source totals over time (one sample per distinct
    /// virtual time at which anything was charged).
    pub samples: Vec<AttrSample>,
}

impl RunAttribution {
    /// Total ns charged to `source` across all threads.
    pub fn total(&self, source: AttrSource) -> f64 {
        self.threads.iter().map(|t| t.get(source)).sum()
    }

    /// Total useful ns across all threads.
    pub fn useful_total(&self) -> f64 {
        self.threads.iter().map(|t| t.useful_ns).sum()
    }

    /// Total attributed ns across all threads.
    pub fn attributed_total(&self) -> f64 {
        self.threads.iter().map(ThreadAttribution::attributed_ns).sum()
    }

    /// Total ns charged to noise sources across all threads.
    pub fn noise_total(&self) -> f64 {
        self.threads.iter().map(ThreadAttribution::noise_ns).sum()
    }

    /// Share of each component of total accounted time, as
    /// `(name, share)` pairs: `useful_compute` first, then every
    /// [`AttrSource`] in ledger order. Shares sum to exactly 1.0 (they
    /// are computed over the component sum) unless nothing was
    /// accounted, in which case all shares are 0.
    pub fn shares(&self) -> Vec<(&'static str, f64)> {
        let useful = self.useful_total();
        let per: Vec<f64> = AttrSource::ALL.iter().map(|&s| self.total(s)).collect();
        let grand = useful + per.iter().sum::<f64>();
        let norm = |x: f64| if grand > 0.0 { x / grand } else { 0.0 };
        let mut out = vec![("useful_compute", norm(useful))];
        for (i, &s) in AttrSource::ALL.iter().enumerate() {
            out.push((s.name(), norm(per[i])));
        }
        out
    }

    /// Sources sorted by descending total charge, zero-charge sources
    /// omitted — the "top variance sources" view.
    pub fn top_sources(&self) -> Vec<(AttrSource, f64)> {
        let mut v: Vec<(AttrSource, f64)> = AttrSource::ALL
            .iter()
            .map(|&s| (s, self.total(s)))
            .filter(|&(_, t)| t > 0.0)
            .collect();
        // Stable order: by descending total, ties broken by ledger index
        // so the report is deterministic.
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// Verify the conservation invariant against the run's wall time:
    /// for every thread, `useful + attributed ≤ wall_ns` up to a
    /// relative tolerance (floating-point slack on the charge
    /// arithmetic). Returns a description of the first violation.
    pub fn check_conservation(&self, wall_ns: f64, rel_eps: f64) -> Result<(), String> {
        let bound = wall_ns * (1.0 + rel_eps) + 1.0;
        for t in &self.threads {
            let acc = t.accounted_ns();
            if acc > bound {
                return Err(format!(
                    "rank {}: accounted {acc:.3} ns exceeds wall {wall_ns:.3} ns \
                     (useful {:.3} + attributed {:.3})",
                    t.rank,
                    t.useful_ns,
                    t.attributed_ns()
                ));
            }
            if t.useful_ns < 0.0 || t.by_source.iter().any(|&x| x < 0.0) {
                return Err(format!("rank {}: negative ledger entry", t.rank));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_names_and_indices_are_stable() {
        for (i, &s) in AttrSource::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(!s.name().is_empty());
        }
        // Every name unique.
        let mut names: Vec<_> = AttrSource::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_SOURCES);
    }

    #[test]
    fn noise_partition_is_exhaustive() {
        let noise = AttrSource::ALL.iter().filter(|s| s.is_noise()).count();
        assert_eq!(noise, 7);
        assert!(!AttrSource::SyncContention.is_noise());
        assert!(AttrSource::NoiseDelayedArrival.is_noise());
    }

    #[test]
    fn shares_sum_to_one_when_nonzero() {
        let mut t = ThreadAttribution::new(0);
        t.useful_ns = 700.0;
        t.by_source[AttrSource::Preemption.index()] = 200.0;
        t.by_source[AttrSource::SyncContention.index()] = 100.0;
        let run = RunAttribution { threads: vec![t], samples: Vec::new() };
        let shares = run.shares();
        let sum: f64 = shares.iter().map(|&(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12, "{sum}");
        assert_eq!(shares[0], ("useful_compute", 0.7));
    }

    #[test]
    fn empty_run_has_zero_shares() {
        let run = RunAttribution::default();
        assert!(run.shares().iter().all(|&(_, s)| s == 0.0));
        assert!(run.top_sources().is_empty());
        assert!(run.check_conservation(0.0, 0.0).is_ok());
    }

    #[test]
    fn conservation_detects_overflow_and_negatives() {
        let mut t = ThreadAttribution::new(3);
        t.useful_ns = 900.0;
        t.by_source[0] = 200.0;
        let run = RunAttribution { threads: vec![t.clone()], samples: Vec::new() };
        assert!(run.check_conservation(1000.0, 1e-9).is_err());
        assert!(run.check_conservation(1200.0, 1e-9).is_ok());
        t.by_source[1] = -1.0;
        let bad = RunAttribution { threads: vec![t], samples: Vec::new() };
        assert!(bad.check_conservation(1e9, 1e-9).is_err());
    }

    #[test]
    fn top_sources_sorted_descending_deterministically() {
        let mut t = ThreadAttribution::new(0);
        t.by_source[AttrSource::Migration.index()] = 5.0;
        t.by_source[AttrSource::Preemption.index()] = 5.0;
        t.by_source[AttrSource::FaultStall.index()] = 9.0;
        let run = RunAttribution { threads: vec![t], samples: Vec::new() };
        let top = run.top_sources();
        assert_eq!(top[0].0, AttrSource::FaultStall);
        // Tie broken by ledger order: Preemption before Migration.
        assert_eq!(top[1].0, AttrSource::Preemption);
        assert_eq!(top[2].0, AttrSource::Migration);
    }
}
