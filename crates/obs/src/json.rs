//! Minimal JSON: string escaping for the hand-rolled serializers, and a
//! small recursive-descent parser used to validate emitted artifacts
//! (run reports, Chrome traces) in tests and CI smoke checks.
//!
//! Not a general-purpose JSON library: numbers are `f64`, objects keep
//! key order and allow duplicates (last one wins on lookup is *not*
//! implemented — [`Value::get`] returns the first match), and the parser
//! rejects trailing garbage.

use std::fmt;

/// Escape a string for inclusion inside JSON double quotes (the quotes
/// themselves are not added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// First value of `key` in an object; `None` for non-objects or
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Serialize a [`Value`] back to compact JSON. Numbers print with f64's
/// shortest-roundtrip `Debug` form (integral values get a `.0`), so
/// `parse(&write(&v))` reproduces `v` exactly; objects keep their field
/// order, making the output stable for a given value.
pub fn write(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.is_finite() {
                format!("{n:?}")
            } else {
                // JSON has no NaN/Inf; null is the conventional fallback.
                "null".to_string()
            }
        }
        Value::Str(s) => format!("\"{}\"", escape(s)),
        Value::Arr(items) => {
            let inner: Vec<String> = items.iter().map(write).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), write(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// A parse failure: byte offset and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What was wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not recombined — the
                            // serializers here never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslash_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\tz\r"), "x\\ny\\tz\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn escaped_strings_roundtrip_through_parser() {
        for s in ["", "plain", "a\"b\\c", "x\ny", "\u{1}\u{1f}", "üñí©ode"] {
            let doc = format!("{{\"k\":\"{}\"}}", escape(s));
            let v = parse(&doc).expect("valid");
            assert_eq!(v.get("k").and_then(Value::as_str), Some(s), "{s:?}");
        }
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"f"}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("f"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nulL").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn write_roundtrips_through_parse() {
        let doc = r#"{"a":[1,2.5,-300.0],"b":{"c":true,"d":null},"e":"f\"g\n"}"#;
        let v = parse(doc).unwrap();
        let out = write(&v);
        assert_eq!(parse(&out).unwrap(), v);
        // Stable: writing twice gives identical bytes.
        assert_eq!(out, write(&v));
        // Non-finite numbers degrade to null instead of invalid JSON.
        assert_eq!(write(&Value::Num(f64::NAN)), "null");
    }

    #[test]
    fn error_reports_position() {
        let e = parse("[1, oops]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
