//! Chrome trace-event JSON export — loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Hand-rolled serializer (no external dependencies) with a stable field
//! order (`name, cat, ph, ts, pid, tid, s, args`) so output is
//! byte-reproducible for a given trace. Span events use `ph:"B"/"E"`,
//! point events `ph:"i"`, and frequency samples are emitted as a
//! multi-series counter track (`ph:"C"`, one series per core) that
//! Perfetto renders as per-core frequency lanes under the same timeline
//! as the spans.

use crate::attr::{AttrSample, AttrSource};
use crate::event::{EventKind, Trace, CORE_UNKNOWN, THREAD_GLOBAL};
use crate::json::escape;

/// The `tid` used for engine-global events ([`THREAD_GLOBAL`]).
pub const GLOBAL_TID: u64 = 999_999;

fn tid_of(thread: u32) -> u64 {
    if thread == THREAD_GLOBAL {
        GLOBAL_TID
    } else {
        thread as u64
    }
}

/// Microseconds with nanosecond resolution, the unit of the `ts` field.
fn ts_us(time_ns: u64) -> String {
    format!("{:.3}", time_ns as f64 / 1000.0)
}

fn fmt_f32(v: f32) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

/// Serialize a trace (plus optional per-core frequency samples) to a
/// Chrome trace-event JSON document.
///
/// `freq_ghz` holds `(time_ns, per-core GHz)` samples, typically the
/// simulated frequency logger's output; pass `&[]` when there is none.
/// `label` names the process in the viewer (it is escaped, so any string
/// is safe).
pub fn chrome_trace(trace: &Trace, freq_ghz: &[(u64, Vec<f32>)], label: &str) -> String {
    chrome_trace_lanes(trace, freq_ghz, label, "omp thread")
}

/// [`chrome_trace`] with a custom per-lane thread-name prefix. The
/// parallel campaign executor exports its merged supervisor trace with
/// prefix `"worker"`, so the viewer shows `worker 0`, `worker 1`, …
/// tracks instead of mislabelling executor lanes as OpenMP threads.
pub fn chrome_trace_lanes(
    trace: &Trace,
    freq_ghz: &[(u64, Vec<f32>)],
    label: &str,
    lane_prefix: &str,
) -> String {
    chrome_trace_full(trace, freq_ghz, &[], label, lane_prefix)
}

/// [`chrome_trace`] plus per-source attribution counter tracks: each
/// [`AttrSample`] becomes one multi-series `ph:"C"` sample
/// (`attr_cum_ms`, one series per [`AttrSource`], cumulative
/// milliseconds charged across all threads) so Perfetto renders "where
/// did my time go" as stacked counter lanes under the span timeline.
pub fn chrome_trace_attr(
    trace: &Trace,
    freq_ghz: &[(u64, Vec<f32>)],
    attr_samples: &[AttrSample],
    label: &str,
) -> String {
    chrome_trace_full(trace, freq_ghz, attr_samples, label, "omp thread")
}

/// The attribution counter events alone, as a comma-separated fragment
/// of Chrome trace-event objects (no enclosing array) — for callers
/// embedding the tracks into their own documents. Empty string when
/// there are no samples.
pub fn attr_counter_events(attr_samples: &[AttrSample]) -> String {
    let mut out = String::new();
    for (i, sample) in attr_samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&attr_counter_event(sample));
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

fn attr_counter_event(sample: &AttrSample) -> String {
    let mut s = format!(
        "{{\"name\":\"attr_cum_ms\",\"cat\":\"attr\",\"ph\":\"C\",\"ts\":{},\
         \"pid\":0,\"tid\":0,\"args\":{{",
        ts_us(sample.time_ns)
    );
    for (i, &src) in AttrSource::ALL.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\"{}\":{}",
            src.name(),
            fmt_f64(sample.total_by_source[i] / 1e6)
        ));
    }
    s.push_str("}}");
    s
}

fn chrome_trace_full(
    trace: &Trace,
    freq_ghz: &[(u64, Vec<f32>)],
    attr_samples: &[AttrSample],
    label: &str,
    lane_prefix: &str,
) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&ev);
    };

    // Metadata: process name, then one thread_name per tid seen.
    push(
        &mut out,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(label)
        ),
    );
    let mut tids: Vec<u32> = trace.events.iter().map(|e| e.thread).collect();
    tids.sort_unstable();
    tids.dedup();
    for t in tids {
        let name = if t == THREAD_GLOBAL {
            "runtime events".to_string()
        } else {
            format!("{lane_prefix} {t}")
        };
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid_of(t),
                escape(&name)
            ),
        );
    }

    for ev in &trace.events {
        let (name, cat, ph) = match ev.kind {
            EventKind::Begin(k) => (k.name(), "span", "B"),
            EventKind::End(k) => (k.name(), "span", "E"),
            EventKind::Instant(k) => (k.name(), "instant", "i"),
        };
        let mut s = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}",
            name,
            cat,
            ph,
            ts_us(ev.time_ns),
            tid_of(ev.thread)
        );
        if ph == "i" {
            // Instant scope: thread-local when attributed, global else.
            let scope = if ev.thread == THREAD_GLOBAL { "g" } else { "t" };
            s.push_str(&format!(",\"s\":\"{scope}\""));
        }
        if ph == "B" && ev.core != CORE_UNKNOWN {
            s.push_str(&format!(",\"args\":{{\"core\":{}}}", ev.core));
        }
        s.push('}');
        push(&mut out, s);
    }

    for (time_ns, cores) in freq_ghz {
        let mut s = format!(
            "{{\"name\":\"core_freq_ghz\",\"cat\":\"freq\",\"ph\":\"C\",\"ts\":{},\
             \"pid\":0,\"tid\":0,\"args\":{{",
            ts_us(*time_ns)
        );
        for (c, ghz) in cores.iter().enumerate() {
            if c > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"core{c}\":{}", fmt_f32(*ghz)));
        }
        s.push_str("}}");
        push(&mut out, s);
    }

    for sample in attr_samples {
        push(&mut out, attr_counter_event(sample));
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, InstantKind, SpanKind, TraceEvent};
    use crate::json::{parse, Value};

    fn demo_trace() -> Trace {
        Trace::new(vec![
            TraceEvent {
                time_ns: 1500,
                thread: 0,
                core: 3,
                kind: EventKind::Begin(SpanKind::Barrier),
            },
            TraceEvent {
                time_ns: 2750,
                thread: 0,
                core: 3,
                kind: EventKind::End(SpanKind::Barrier),
            },
            TraceEvent {
                time_ns: 2000,
                thread: THREAD_GLOBAL,
                core: CORE_UNKNOWN,
                kind: EventKind::Instant(InstantKind::FaultInjection),
            },
        ])
    }

    #[test]
    fn output_is_valid_json_with_expected_events() {
        let freq = vec![(0u64, vec![3.5f32, 2.0]), (1000, vec![3.4, 2.0])];
        let doc = chrome_trace(&demo_trace(), &freq, "demo run");
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("array");
        // 2 meta-threads + process meta + 3 events + 2 counter samples.
        assert_eq!(events.len(), 8);
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Value::as_str)).collect();
        assert_eq!(phases.iter().filter(|p| **p == "B").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "E").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "C").count(), 2);
        // Counter sample carries one series per core.
        let counter = events.iter().find(|e| e.get("ph").and_then(Value::as_str) == Some("C"));
        let args = counter.unwrap().get("args").unwrap();
        assert_eq!(args.get("core0").and_then(Value::as_f64), Some(3.5));
        assert_eq!(args.get("core1").and_then(Value::as_f64), Some(2.0));
        // ts is microseconds: 1500 ns -> 1.5 us.
        let begin = events.iter().find(|e| e.get("ph").and_then(Value::as_str) == Some("B"));
        assert_eq!(begin.unwrap().get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(begin.unwrap().get("args").unwrap().get("core").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn field_order_is_stable_and_output_reproducible() {
        let doc1 = chrome_trace(&demo_trace(), &[], "x");
        let doc2 = chrome_trace(&demo_trace(), &[], "x");
        assert_eq!(doc1, doc2);
        // Span events carry fields in the documented order.
        assert!(
            doc1.contains("{\"name\":\"barrier\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":1.500,\"pid\":0,\"tid\":0,\"args\":{\"core\":3}}"),
            "{doc1}"
        );
        // Global instants land on the reserved tid with global scope.
        assert!(doc1.contains(&format!("\"tid\":{GLOBAL_TID},\"s\":\"g\"")), "{doc1}");
    }

    #[test]
    fn labels_are_escaped() {
        let doc = chrome_trace(&Trace::default(), &[], "we \"said\" \\ hi\n");
        let v = parse(&doc).expect("valid JSON despite hostile label");
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        let name = events[0].get("args").unwrap().get("name").and_then(Value::as_str);
        assert_eq!(name, Some("we \"said\" \\ hi\n"));
    }

    #[test]
    fn lane_prefix_renames_thread_tracks_only() {
        let doc = chrome_trace_lanes(&demo_trace(), &[], "exec", "worker");
        parse(&doc).expect("valid JSON");
        assert!(doc.contains("\"name\":\"worker 0\""), "{doc}");
        assert!(doc.contains("\"name\":\"runtime events\""), "{doc}");
        assert!(!doc.contains("omp thread"), "{doc}");
        // The default entry point is unchanged.
        assert!(chrome_trace(&demo_trace(), &[], "x").contains("\"name\":\"omp thread 0\""));
    }

    #[test]
    fn nonfinite_frequencies_are_sanitized() {
        let doc = chrome_trace(&Trace::default(), &[(0, vec![f32::NAN])], "x");
        parse(&doc).expect("still valid JSON");
        assert!(doc.contains("\"core0\":0"), "{doc}");
    }

    #[test]
    fn attr_counter_tracks_are_valid_and_per_source() {
        use crate::attr::{AttrSample, AttrSource, N_SOURCES};
        let mut by = [0.0f64; N_SOURCES];
        by[AttrSource::Preemption.index()] = 2_000_000.0; // 2 ms
        let samples = vec![
            AttrSample { time_ns: 0, total_by_source: [0.0; N_SOURCES] },
            AttrSample { time_ns: 1_000_000, total_by_source: by },
        ];
        let doc = chrome_trace_attr(&demo_trace(), &[], &samples, "attr run");
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("attr_cum_ms"))
            .collect();
        assert_eq!(counters.len(), 2);
        let args = counters[1].get("args").unwrap();
        assert_eq!(args.get("preemption").and_then(Value::as_f64), Some(2.0));
        assert_eq!(args.get("sync_contention").and_then(Value::as_f64), Some(0.0));
        // Every source appears as a series.
        for s in AttrSource::ALL {
            assert!(args.get(s.name()).is_some(), "{}", s.name());
        }
        // Reproducible, and the plain exporters are unchanged by the refactor.
        assert_eq!(doc, chrome_trace_attr(&demo_trace(), &[], &samples, "attr run"));
        assert_eq!(
            chrome_trace(&demo_trace(), &[], "x"),
            chrome_trace_full(&demo_trace(), &[], &[], "x", "omp thread")
        );
        // Fragment exporter emits the same events.
        let frag = attr_counter_events(&samples);
        assert!(frag.contains("\"attr_cum_ms\""));
        assert!(attr_counter_events(&[]).is_empty());
    }
}
