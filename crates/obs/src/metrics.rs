//! Histogram-backed metrics: per-construct latency distributions.

use crate::event::{SpanKind, Trace};
use crate::sketch::{bucket_floor, bucket_of, N_BUCKETS};
use crate::wellformed::pair_spans;

/// A log-bucketed latency histogram over `u64` nanoseconds.
///
/// Constant memory (512 buckets), O(1) insert. Bucket scheme shared
/// with [`crate::QuantileSketch`]: 8 sub-buckets per power of two, so a
/// value `v` lands in a bucket whose floor is within `v/8` below it —
/// interior percentiles carry **≤ 12.5% relative quantization error**
/// (asserted by the `interior_percentiles_within_bucket_error` test).
/// The recorded minimum and maximum are exact, and percentile results
/// are clamped into `[min, max]` so single-sample and extreme queries
/// are exact too. All counts saturate instead of wrapping.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: vec![0; N_BUCKETS], count: 0, min: u64::MAX, max: 0 }
    }
}

impl LatencyHistogram {
    /// Fresh empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, value_ns: u64) {
        self.record_n(value_ns, 1);
    }

    /// Record `n` occurrences of one value. Counts saturate at
    /// `u64::MAX` rather than wrapping.
    pub fn record_n(&mut self, value_ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(value_ns);
        self.counts[b] = self.counts[b].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.min = self.min.min(value_ns);
        self.max = self.max.max(value_ns);
    }

    /// Total recorded samples (saturating).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `p`-th percentile (`0.0..=100.0`, clamped), `None` when
    /// empty. `percentile(0)` is the exact minimum, `percentile(100)`
    /// the exact maximum; interior percentiles carry the bucket
    /// quantization error.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        if p <= 0.0 {
            return Some(self.min);
        }
        if p >= 100.0 {
            return Some(self.max);
        }
        // Nearest-rank definition on the saturating total.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen: u64 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_floor(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// Percentile summary of one span kind's latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans observed.
    pub count: u64,
    /// Median duration (ns).
    pub p50_ns: u64,
    /// 95th-percentile duration (ns).
    pub p95_ns: u64,
    /// 99th-percentile duration (ns).
    pub p99_ns: u64,
    /// Maximum duration (ns), exact.
    pub max_ns: u64,
}

/// Per-construct latency registry: one [`LatencyHistogram`] per
/// [`SpanKind`].
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    hists: Vec<LatencyHistogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry { hists: vec![LatencyHistogram::new(); SpanKind::ALL.len()] }
    }
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Build a registry from a trace's completed spans. Pairing is
    /// best-effort: a structurally broken trace contributes the spans
    /// that could still be recovered.
    pub fn from_trace(trace: &Trace) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let (spans, _errors) = pair_spans(trace);
        for s in spans {
            reg.record(s.kind, s.duration_ns());
        }
        reg
    }

    /// Record one span duration.
    pub fn record(&mut self, kind: SpanKind, duration_ns: u64) {
        self.hists[kind.index()].record(duration_ns);
    }

    /// The underlying histogram of one kind.
    pub fn histogram(&self, kind: SpanKind) -> &LatencyHistogram {
        &self.hists[kind.index()]
    }

    /// Percentile summary of one kind, `None` when no spans of that
    /// kind were observed.
    pub fn stats(&self, kind: SpanKind) -> Option<SpanStats> {
        let h = &self.hists[kind.index()];
        Some(SpanStats {
            count: h.count(),
            p50_ns: h.percentile(50.0)?,
            p95_ns: h.percentile(95.0)?,
            p99_ns: h.percentile(99.0)?,
            max_ns: h.max()?,
        })
    }

    /// Summaries of every kind with at least one span.
    ///
    /// Ordering is explicitly deterministic: entries appear sorted by
    /// ascending [`SpanKind`] discriminant (the order of
    /// [`SpanKind::ALL`]), independent of recording order. Report
    /// byte-identity across runs and shards depends on this, so the
    /// guarantee is part of the API contract and regression-tested
    /// (`snapshot_order_is_discriminant_sorted`).
    pub fn snapshot(&self) -> Vec<(SpanKind, SpanStats)> {
        let out: Vec<(SpanKind, SpanStats)> = SpanKind::ALL
            .iter()
            .filter_map(|&k| self.stats(k).map(|s| (k, s)))
            .collect();
        debug_assert!(
            out.windows(2).all(|w| w[0].0.index() < w[1].0.index()),
            "snapshot must be sorted by SpanKind discriminant"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SpanKind, TraceEvent};

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(1234);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(1234), "p{p}");
        }
        assert_eq!(h.min(), Some(1234));
        assert_eq!(h.max(), Some(1234));
    }

    #[test]
    fn zero_and_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(7));
        // Nearest rank of p50 over 8 samples is the 4th (value 3).
        assert_eq!(h.percentile(50.0), Some(3));
    }

    #[test]
    fn interior_percentiles_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 5000.0), (95.0, 9500.0), (99.0, 9900.0)] {
            let got = h.percentile(p).unwrap() as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 0.125, "p{p}: got {got}, exact {exact}, rel {rel}");
        }
        assert_eq!(h.percentile(100.0), Some(10_000));
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let mut h = LatencyHistogram::new();
        h.record_n(42, u64::MAX);
        h.record_n(42, u64::MAX); // would wrap if unchecked
        h.record(7);
        assert_eq!(h.count(), u64::MAX);
        let p50 = h.percentile(50.0).expect("nonempty");
        assert!((37..=42).contains(&p50), "{p50}"); // within bucket error of 42
        assert_eq!(h.min(), Some(7));
        // u64::MAX itself lands in the last bucket without overflow.
        let mut g = LatencyHistogram::new();
        g.record(u64::MAX);
        assert_eq!(g.percentile(100.0), Some(u64::MAX));
    }

    #[test]
    fn record_n_zero_is_a_noop() {
        let mut h = LatencyHistogram::new();
        h.record_n(99, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn snapshot_order_is_discriminant_sorted() {
        // Record in *reverse* discriminant order: the snapshot must come
        // back sorted by discriminant regardless.
        let mut reg = MetricsRegistry::new();
        for (i, &k) in SpanKind::ALL.iter().enumerate().rev() {
            reg.record(k, 100 + i as u64);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.len(), SpanKind::ALL.len());
        let idx: Vec<usize> = snap.iter().map(|(k, _)| k.index()).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(idx, sorted, "snapshot not discriminant-sorted");
        // And it is stable across repeated calls (byte-identity driver).
        let again: Vec<usize> = reg.snapshot().iter().map(|(k, _)| k.index()).collect();
        assert_eq!(idx, again);
    }

    #[test]
    fn registry_from_trace_pairs_and_summarizes() {
        use EventKind::{Begin, End};
        let t = Trace::new(vec![
            TraceEvent { time_ns: 0, thread: 0, core: 0, kind: Begin(SpanKind::Barrier) },
            TraceEvent { time_ns: 100, thread: 0, core: 0, kind: End(SpanKind::Barrier) },
            TraceEvent { time_ns: 200, thread: 0, core: 0, kind: Begin(SpanKind::Barrier) },
            TraceEvent { time_ns: 500, thread: 0, core: 0, kind: End(SpanKind::Barrier) },
        ]);
        let reg = MetricsRegistry::from_trace(&t);
        let s = reg.stats(SpanKind::Barrier).expect("barrier spans present");
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, 300);
        assert!(s.p50_ns >= 96 && s.p50_ns <= 100, "{}", s.p50_ns);
        assert_eq!(reg.stats(SpanKind::Task), None);
        assert_eq!(reg.snapshot().len(), 1);
    }
}
