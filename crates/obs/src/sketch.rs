//! Streaming, mergeable statistics for cross-run variability analytics.
//!
//! Two accumulators with **deterministic associative merge** — both are
//! plain integer structures whose merge is element-wise saturating
//! addition (plus min/max), so merging is exactly associative and
//! commutative at the bit level. That is what lets the sharded campaign
//! executor fold per-run statistics worker-by-worker in any steal order
//! and still produce byte-identical reports at any `--jobs` count:
//!
//! * [`QuantileSketch`] — a log-bucketed quantile sketch over `u64`
//!   nanoseconds. Same bucket scheme as
//!   [`LatencyHistogram`](crate::LatencyHistogram) (8 sub-buckets per
//!   octave ⇒ ≤ 12.5% relative quantization error on interior
//!   quantiles; exact min/max), constant memory, O(1) insert, O(buckets)
//!   merge.
//! * [`VarAccum`] — exact streaming moments (count, Σx, Σx² in `u128`,
//!   min, max) for mean / population standard deviation / coefficient of
//!   variation. `u128` sums are exact for any realistic campaign
//!   (overflow would need ~10¹⁸ samples of ~10¹⁰ ns each), so merged
//!   moments equal bulk-recorded moments bit-for-bit.

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two, i.e. a
/// worst-case quantization error of 1/8 = 12.5%.
pub(crate) const SUB_BITS: u32 = 3;
pub(crate) const SUBS: u64 = 1 << SUB_BITS;
/// 64 octaves × 8 sub-buckets (small values get exact buckets).
pub(crate) const N_BUCKETS: usize = 64 * SUBS as usize;

/// Bucket index of value `v` (shared with `metrics::LatencyHistogram`).
pub(crate) fn bucket_of(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as u64;
        (exp * SUBS + ((v >> (exp - SUB_BITS as u64)) & (SUBS - 1))) as usize
    }
}

/// Lower bound of bucket `i` — the value reported for quantiles falling
/// in it.
pub(crate) fn bucket_floor(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBS {
        i
    } else {
        let exp = i / SUBS;
        let sub = i % SUBS;
        (1 << exp) | (sub << (exp - SUB_BITS as u64))
    }
}

/// A mergeable log-bucketed quantile sketch over `u64` nanoseconds.
///
/// Guarantees:
/// * `quantile(0.0)` is the exact minimum, `quantile(1.0)` the exact
///   maximum; interior quantiles carry ≤ 12.5% relative quantization
///   error (the bucket width).
/// * `a.merge(&b)` is associative and commutative bit-for-bit, and
///   equals recording `b`'s samples into `a` directly (counts saturate
///   identically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch { counts: vec![0; N_BUCKETS], count: 0, min: u64::MAX, max: 0 }
    }
}

impl QuantileSketch {
    /// Fresh empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// Record one value.
    pub fn record(&mut self, value_ns: u64) {
        let b = bucket_of(value_ns);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.min = self.min.min(value_ns);
        self.max = self.max.max(value_ns);
    }

    /// Fold another sketch into this one (element-wise saturating add).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(b);
        }
        self.count = self.count.saturating_add(other.count);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples (saturating).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0.0..=1.0`, clamped), nearest-rank, `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen: u64 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_floor(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Interquartile range: `quantile(0.75) − quantile(0.25)`, `None`
    /// when empty.
    pub fn iqr(&self) -> Option<u64> {
        Some(self.quantile(0.75)?.saturating_sub(self.quantile(0.25)?))
    }
}

/// Exact streaming moment accumulator over `u64` nanoseconds.
///
/// Integer sums make the merge exactly associative/commutative;
/// mean/CoV are computed only at render time, so a merged accumulator
/// yields bit-identical derived statistics regardless of merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarAccum {
    count: u64,
    sum: u128,
    sumsq: u128,
    min: u64,
    max: u64,
}

impl Default for VarAccum {
    fn default() -> Self {
        VarAccum { count: 0, sum: 0, sumsq: 0, min: u64::MAX, max: 0 }
    }
}

impl VarAccum {
    /// Fresh empty accumulator.
    pub fn new() -> VarAccum {
        VarAccum::default()
    }

    /// Record one value.
    pub fn record(&mut self, value_ns: u64) {
        self.count += 1;
        self.sum += value_ns as u128;
        self.sumsq += (value_ns as u128) * (value_ns as u128);
        self.min = self.min.min(value_ns);
        self.max = self.max.max(value_ns);
    }

    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: &VarAccum) {
        self.count += other.count;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Population standard deviation, 0.0 when empty.
    pub fn std(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        let var = (self.sumsq as f64 / n - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Coefficient of variation (`std / mean`), 0.0 when the mean is 0.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std() / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64: deterministic test data without external deps.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_samples(seed: u64, n: usize, span: u64) -> Vec<u64> {
        let mut rng = Rng(seed);
        (0..n).map(|_| rng.below(span)).collect()
    }

    #[test]
    fn sketch_merge_is_associative_and_commutative() {
        for seed in 0..8u64 {
            let xs = random_samples(seed, 300, 1 << 40);
            let (a0, b0, c0) = (&xs[..100], &xs[100..200], &xs[200..]);
            let fill = |vals: &[u64]| {
                let mut s = QuantileSketch::new();
                vals.iter().for_each(|&v| s.record(v));
                s
            };
            let (a, b, c) = (fill(a0), fill(b0), fill(c0));
            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "associativity, seed {seed}");
            // b ⊕ a == a ⊕ b
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "commutativity, seed {seed}");
            // Merge equals bulk record.
            assert_eq!(left, fill(&xs), "merge vs bulk, seed {seed}");
        }
    }

    #[test]
    fn sketch_rank_error_within_bucket_bound() {
        for seed in [1u64, 7, 42] {
            let mut xs = random_samples(seed, 2000, 10_000_000);
            let mut s = QuantileSketch::new();
            xs.iter().for_each(|&v| s.record(v));
            xs.sort_unstable();
            for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
                let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
                let exact = xs[rank - 1] as f64;
                let got = s.quantile(q).unwrap() as f64;
                // Sketch reports the bucket floor of a value whose rank
                // matches: relative error bounded by the bucket width.
                let rel = if exact > 0.0 { (got - exact).abs() / exact } else { 0.0 };
                assert!(rel <= 0.125, "seed {seed} q{q}: got {got}, exact {exact}, rel {rel}");
            }
            assert_eq!(s.quantile(0.0), Some(xs[0]));
            assert_eq!(s.quantile(1.0), Some(*xs.last().unwrap()));
        }
    }

    #[test]
    fn empty_sketch_and_accum_report_nothing() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.iqr(), None);
        assert_eq!(s.min(), None);
        let a = VarAccum::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.cov(), 0.0);
        assert_eq!(a.max(), None);
    }

    #[test]
    fn accum_merge_matches_bulk_exactly() {
        let xs = random_samples(99, 500, 1 << 33);
        let mut bulk = VarAccum::new();
        xs.iter().for_each(|&v| bulk.record(v));
        let mut merged = VarAccum::new();
        for chunk in xs.chunks(37) {
            let mut part = VarAccum::new();
            chunk.iter().for_each(|&v| part.record(v));
            merged.merge(&part);
        }
        // Integer state identical ⇒ derived f64 stats identical bits.
        assert_eq!(bulk, merged);
        assert_eq!(bulk.mean().to_bits(), merged.mean().to_bits());
        assert_eq!(bulk.cov().to_bits(), merged.cov().to_bits());
    }

    #[test]
    fn accum_moments_are_correct() {
        let mut a = VarAccum::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            a.record(v);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.std() - 2.0).abs() < 1e-12);
        assert!((a.cov() - 0.4).abs() < 1e-12);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(9));
    }

    #[test]
    fn constant_samples_have_zero_cov_and_iqr() {
        let mut a = VarAccum::new();
        let mut s = QuantileSketch::new();
        for _ in 0..50 {
            a.record(1234);
            s.record(1234);
        }
        assert_eq!(a.cov(), 0.0);
        assert_eq!(s.iqr(), Some(0));
        assert_eq!(s.quantile(0.5), Some(1234));
    }
}
