//! Trace sinks: where instrumentation hooks put their events.

use crate::event::{Trace, TraceEvent};
use std::sync::Mutex;

/// Destination for trace events. Hooks are expected to consult
/// [`TraceSink::enabled`] before doing any work to build an event, so a
/// disabled sink costs one predictable branch.
pub trait TraceSink {
    /// Record one event.
    fn record(&mut self, ev: TraceEvent);

    /// Whether recording is on. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The disabled sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Per-thread buffered recorder. The hot path is a plain `Vec` push —
/// no atomics, no locks, no clock reads of its own ("lock-free-ish":
/// the only synchronization in the whole recording pipeline is the one
/// mutex acquisition in [`TeamRecorder::submit`] at thread exit).
#[derive(Debug, Default)]
pub struct ThreadRecorder {
    events: Vec<TraceEvent>,
}

impl ThreadRecorder {
    /// Fresh empty recorder.
    pub fn new() -> ThreadRecorder {
        ThreadRecorder::default()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the recorder, yielding its events in emission order.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for ThreadRecorder {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Collects the per-thread buffers of one team run into a single
/// [`Trace`]. Each worker owns a private [`ThreadRecorder`] and submits
/// it exactly once when it finishes.
#[derive(Debug, Default)]
pub struct TeamRecorder {
    buffers: Mutex<Vec<Vec<TraceEvent>>>,
}

impl TeamRecorder {
    /// Fresh recorder with no submissions.
    pub fn new() -> TeamRecorder {
        TeamRecorder::default()
    }

    /// Accept one thread's finished buffer. Called once per thread, at
    /// thread exit — this is the only lock in the recording pipeline.
    pub fn submit(&self, rec: ThreadRecorder) {
        let events = rec.into_events();
        if events.is_empty() {
            return;
        }
        self.buffers
            .lock()
            .expect("trace buffer mutex poisoned")
            .push(events);
    }

    /// Merge all submissions into one trace. Buffers are ordered by
    /// their first event's thread id so the result is independent of
    /// thread *finish* order (which is nondeterministic on the native
    /// backend).
    pub fn finish(self) -> Trace {
        let mut buffers = self
            .buffers
            .into_inner()
            .expect("trace buffer mutex poisoned");
        buffers.sort_by_key(|b| b.first().map(|e| e.thread));
        Trace::new(buffers.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SpanKind};

    fn ev(time_ns: u64, thread: u32) -> TraceEvent {
        TraceEvent { time_ns, thread, core: 0, kind: EventKind::Begin(SpanKind::Region) }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(ev(0, 0)); // and swallows
    }

    #[test]
    fn team_recorder_orders_buffers_by_thread() {
        let team = TeamRecorder::new();
        // Submit out of rank order, as racing threads would.
        let mut r1 = ThreadRecorder::new();
        r1.record(ev(10, 1));
        r1.record(ev(20, 1));
        let mut r0 = ThreadRecorder::new();
        r0.record(ev(15, 0));
        team.submit(r1);
        team.submit(r0);
        team.submit(ThreadRecorder::new()); // empty buffers vanish
        let trace = team.finish();
        let threads: Vec<u32> = trace.events.iter().map(|e| e.thread).collect();
        assert_eq!(threads, vec![0, 1, 1]);
    }

    #[test]
    fn thread_recorder_preserves_order() {
        let mut r = ThreadRecorder::new();
        assert!(r.is_empty());
        r.record(ev(5, 2));
        r.record(ev(3, 2)); // recorder does not reorder or judge
        assert_eq!(r.len(), 2);
        let evs = r.into_events();
        assert_eq!(evs[0].time_ns, 5);
        assert_eq!(evs[1].time_ns, 3);
    }
}
