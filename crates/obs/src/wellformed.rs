//! Structural validation of traces: begin/end matching, per-thread LIFO
//! nesting, per-thread timestamp monotonicity — and span recovery.
//!
//! These are the invariants every correct backend must uphold regardless
//! of schedule, noise, or placement, which makes them a differential-
//! fuzzing oracle: `ompvar-qcheck` runs fuzzed regions on both backends
//! with tracing on and calls [`check`] on the result.

use crate::event::{EventKind, Span, Trace};
use std::collections::BTreeMap;

/// Recover completed spans from a trace, best-effort, collecting
/// structural violations instead of failing.
///
/// Returns the well-nested spans that could be paired plus a list of
/// human-readable violations (empty for a well-formed trace):
///
/// * an `End` with no open span, or whose kind differs from the
///   innermost open span (broken LIFO nesting);
/// * a `Begin` left unclosed at the end of the trace;
/// * a timestamp running backwards within one thread.
pub fn pair_spans(trace: &Trace) -> (Vec<Span>, Vec<String>) {
    let mut spans = Vec::new();
    let mut errors = Vec::new();
    // Per-thread open-span stacks and last-seen times.
    let mut stacks: BTreeMap<u32, Vec<(crate::event::SpanKind, u64)>> = BTreeMap::new();
    let mut last: BTreeMap<u32, u64> = BTreeMap::new();
    for (i, ev) in trace.events.iter().enumerate() {
        match last.get(&ev.thread) {
            Some(&t) if ev.time_ns < t => errors.push(format!(
                "event {i} on thread {}: time runs backwards ({} < {})",
                ev.thread, ev.time_ns, t
            )),
            _ => {
                last.insert(ev.thread, ev.time_ns);
            }
        }
        match ev.kind {
            EventKind::Begin(kind) => {
                stacks.entry(ev.thread).or_default().push((kind, ev.time_ns));
            }
            EventKind::End(kind) => {
                let stack = stacks.entry(ev.thread).or_default();
                match stack.pop() {
                    Some((open, begin_ns)) if open == kind => spans.push(Span {
                        kind,
                        thread: ev.thread,
                        begin_ns,
                        end_ns: ev.time_ns.max(begin_ns),
                    }),
                    Some((open, begin_ns)) => {
                        errors.push(format!(
                            "event {i} on thread {}: end of {} while innermost open span \
                             is {} (opened at {} ns)",
                            ev.thread,
                            kind.name(),
                            open.name(),
                            begin_ns
                        ));
                        // Keep the mismatched opener so a later, correct
                        // end can still close it.
                        stack.push((open, begin_ns));
                    }
                    None => errors.push(format!(
                        "event {i} on thread {}: end of {} with no open span",
                        ev.thread,
                        kind.name()
                    )),
                }
            }
            EventKind::Instant(_) => {}
        }
    }
    for (thread, stack) in &stacks {
        for (kind, begin_ns) in stack {
            errors.push(format!(
                "thread {thread}: {} span opened at {begin_ns} ns never closed",
                kind.name()
            ));
        }
    }
    (spans, errors)
}

/// Strict form of [`pair_spans`]: the recovered spans on success, the
/// violation list on failure.
pub fn check(trace: &Trace) -> Result<Vec<Span>, Vec<String>> {
    let (spans, errors) = pair_spans(trace);
    if errors.is_empty() {
        Ok(spans)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, InstantKind, SpanKind, TraceEvent, THREAD_GLOBAL};

    fn ev(time_ns: u64, thread: u32, kind: EventKind) -> TraceEvent {
        TraceEvent { time_ns, thread, core: 0, kind }
    }

    #[test]
    fn well_nested_two_thread_trace_passes() {
        use EventKind::{Begin, End};
        use SpanKind::{Barrier, Chunk, Workshare};
        let t = Trace::new(vec![
            ev(0, 0, Begin(Workshare)),
            ev(1, 0, Begin(Chunk)),
            ev(0, 1, Begin(Workshare)),
            ev(4, 0, End(Chunk)),
            ev(5, 0, End(Workshare)),
            ev(6, 1, End(Workshare)),
            ev(7, 0, Begin(Barrier)),
            ev(7, 1, Begin(Barrier)),
            ev(9, 0, End(Barrier)),
            ev(9, 1, End(Barrier)),
            ev(3, THREAD_GLOBAL, EventKind::Instant(InstantKind::FreqRetarget)),
        ]);
        // The global instant at t=3 arrives after t=9 events of other
        // threads — fine, monotonicity is per-thread.
        let spans = check(&t).expect("well-formed");
        assert_eq!(spans.len(), 5);
        assert!(spans.iter().any(|s| s.kind == SpanKind::Chunk && s.duration_ns() == 3));
    }

    #[test]
    fn unmatched_end_reported() {
        let t = Trace::new(vec![ev(5, 0, EventKind::End(SpanKind::Barrier))]);
        let errs = check(&t).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("no open span"), "{errs:?}");
    }

    #[test]
    fn unclosed_begin_reported() {
        let t = Trace::new(vec![ev(5, 3, EventKind::Begin(SpanKind::Region))]);
        let errs = check(&t).unwrap_err();
        assert!(errs[0].contains("never closed"), "{errs:?}");
        assert!(errs[0].contains("region"), "{errs:?}");
    }

    #[test]
    fn broken_nesting_reported_but_outer_still_pairs() {
        use EventKind::{Begin, End};
        let t = Trace::new(vec![
            ev(0, 0, Begin(SpanKind::Workshare)),
            ev(1, 0, Begin(SpanKind::Chunk)),
            ev(2, 0, End(SpanKind::Workshare)), // crosses the open chunk
            ev(3, 0, End(SpanKind::Chunk)),
            ev(4, 0, End(SpanKind::Workshare)),
        ]);
        let (spans, errors) = pair_spans(&t);
        assert!(errors.iter().any(|e| e.contains("innermost open span")), "{errors:?}");
        // chunk and the outer workshare still pair up.
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn backwards_time_on_one_thread_reported() {
        use EventKind::{Begin, End};
        let t = Trace::new(vec![
            ev(10, 0, Begin(SpanKind::Barrier)),
            ev(4, 0, End(SpanKind::Barrier)),
        ]);
        let (spans, errors) = pair_spans(&t);
        assert!(errors.iter().any(|e| e.contains("backwards")), "{errors:?}");
        // The pair is still recovered, clamped to zero duration.
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration_ns(), 0);
    }

    #[test]
    fn empty_trace_is_well_formed() {
        assert!(check(&Trace::default()).expect("ok").is_empty());
    }
}
