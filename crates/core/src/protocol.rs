//! The generic run protocol: a backend-agnostic formalization of the
//! paper's measurement methodology (R independent runs × K repetitions,
//! seeded deterministically), à la Varbench's experiment harness.

use crate::variability::RunSet;

/// A measurement plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPlan {
    /// Independent runs (the paper uses 10).
    pub n_runs: usize,
    /// Base seed; run `i` receives `seed_base + i`.
    pub seed_base: u64,
}

impl RunPlan {
    /// The paper's protocol: 10 runs.
    pub fn paper(seed_base: u64) -> RunPlan {
        RunPlan {
            n_runs: 10,
            seed_base,
        }
    }

    /// Seed of run `i`.
    pub fn seed_of(&self, run: usize) -> u64 {
        assert!(run < self.n_runs);
        self.seed_base + run as u64
    }

    /// Execute the plan: `measure(seed)` must return the per-repetition
    /// times (µs) of one run.
    pub fn execute<F>(&self, mut measure: F) -> RunSet
    where
        F: FnMut(u64) -> Vec<f64>,
    {
        assert!(self.n_runs > 0, "a plan needs at least one run");
        RunSet::new(
            (0..self.n_runs)
                .map(|i| {
                    let reps = measure(self.seed_of(i));
                    assert!(!reps.is_empty(), "run {i} produced no repetitions");
                    reps
                })
                .collect(),
        )
    }
}

/// A compact characterization of one configuration's variability,
/// bundling the quantities the paper reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Mean over all repetitions of all runs, µs.
    pub mean_us: f64,
    /// Pooled coefficient of variation.
    pub pooled_cv: f64,
    /// Max/min of the run means (run-to-run stability).
    pub run_spread: f64,
    /// Per-run normalized minima (one entry per run).
    pub norm_mins: Vec<f64>,
    /// Per-run normalized maxima (one entry per run).
    pub norm_maxs: Vec<f64>,
    /// Between-run fraction of the total variance.
    pub between_run_fraction: f64,
    /// Indices of MAD-outlier runs (z > 3.5).
    pub outlier_runs: Vec<usize>,
}

impl Characterization {
    /// Characterize a run set.
    pub fn of(rs: &RunSet) -> Characterization {
        let pooled = rs.pooled();
        Characterization {
            mean_us: pooled.mean,
            pooled_cv: pooled.cv,
            run_spread: rs.run_spread(),
            norm_mins: rs.run_norm_mins(),
            norm_maxs: rs.run_norm_maxs(),
            between_run_fraction: rs.variance_decomposition().0,
            outlier_runs: rs.outlier_runs(3.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_executes_with_distinct_seeds() {
        let plan = RunPlan::paper(100);
        let mut seeds = Vec::new();
        let rs = plan.execute(|seed| {
            seeds.push(seed);
            vec![seed as f64, seed as f64 + 1.0]
        });
        assert_eq!(rs.n_runs(), 10);
        assert_eq!(seeds, (100..110).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "no repetitions")]
    fn empty_run_rejected() {
        RunPlan { n_runs: 1, seed_base: 0 }.execute(|_| vec![]);
    }

    #[test]
    fn characterization_bundles_metrics() {
        let rs = RunSet::new(vec![vec![10.0, 11.0], vec![10.0, 10.5], vec![30.0, 31.0]]);
        let c = Characterization::of(&rs);
        assert!(c.mean_us > 10.0);
        assert!(c.run_spread > 2.5);
        assert_eq!(c.outlier_runs, vec![2]);
        assert!(c.between_run_fraction > 0.9);
        assert_eq!(c.norm_mins.len(), 3);
    }

    #[test]
    #[should_panic]
    fn seed_of_out_of_range() {
        RunPlan::paper(0).seed_of(10);
    }
}
