//! Descriptive and inferential statistics for execution-time samples.
//!
//! Implements exactly the quantities the paper reports: mean, standard
//! deviation, coefficient of variation (CV), minimum/maximum and their
//! *normalized* forms (min/avg, max/avg), percentiles, MAD-based outlier
//! detection, Welch's t-test, a seeded bootstrap confidence interval, and
//! a bimodality coefficient used to flag multi-modal distributions.

/// Summary statistics of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub sd: f64,
    /// Coefficient of variation: `sd / mean` (0 when the mean is 0).
    pub cv: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
}

impl Summary {
    /// Compute a summary. Panics on an empty sample or non-finite values.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "empty sample");
        assert!(
            xs.iter().all(|x| x.is_finite()),
            "non-finite value in sample"
        );
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let sd = var.sqrt();
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Summary {
            n,
            mean,
            sd,
            cv: if mean != 0.0 { sd / mean.abs() } else { 0.0 },
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        }
    }

    /// Minimum normalized to the mean (`min/avg` — the paper's Figure 3
    /// lower series). 1.0 means no downside variability.
    pub fn norm_min(&self) -> f64 {
        if self.mean != 0.0 {
            self.min / self.mean
        } else {
            1.0
        }
    }

    /// Maximum normalized to the mean (`max/avg` — the paper's Figure 3
    /// upper series). 1.0 means no upside variability.
    pub fn norm_max(&self) -> f64 {
        if self.mean != 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }

    /// `max/min` spread, a robust "how bad can it get" ratio.
    pub fn spread(&self) -> f64 {
        if self.min > 0.0 {
            self.max / self.min
        } else {
            f64::INFINITY
        }
    }
}

/// Percentile (0–100) with linear interpolation on a *sorted* slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile of an unsorted sample.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&sorted, p)
}

/// Median absolute deviation (scaled by 1.4826 for normal consistency).
pub fn mad(xs: &[f64]) -> f64 {
    let med = percentile(xs, 50.0);
    let dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    1.4826 * percentile(&dev, 50.0)
}

/// Indices of MAD-outliers: points with a robust z-score above `z`.
/// A `z` of 3.5 is the conventional threshold.
pub fn mad_outliers(xs: &[f64], z: f64) -> Vec<usize> {
    let med = percentile(xs, 50.0);
    let m = mad(xs);
    if m == 0.0 {
        // Degenerate: more than half the sample is identical; flag any
        // point that differs at all by more than a relative epsilon.
        return xs
            .iter()
            .enumerate()
            .filter(|(_, &x)| (x - med).abs() > 1e-9 * med.abs().max(1.0))
            .map(|(i, _)| i)
            .collect();
    }
    xs.iter()
        .enumerate()
        .filter(|(_, &x)| ((x - med) / m).abs() > z)
        .map(|(i, _)| i)
        .collect()
}

/// Welch's two-sample t-test. Returns `(t, approx_p)` for the two-sided
/// alternative; the p-value uses a normal approximation of the
/// t-distribution, adequate for the sample sizes used here (≥ 10).
pub fn welch_t(a: &[f64], b: &[f64]) -> (f64, f64) {
    let sa = Summary::of(a);
    let sb = Summary::of(b);
    let va = sa.sd.powi(2) / sa.n as f64;
    let vb = sb.sd.powi(2) / sb.n as f64;
    let denom = (va + vb).sqrt();
    if denom == 0.0 {
        return if sa.mean == sb.mean {
            (0.0, 1.0)
        } else {
            (f64::INFINITY, 0.0)
        };
    }
    let t = (sa.mean - sb.mean) / denom;
    // Two-sided p via the normal tail.
    let p = 2.0 * normal_sf(t.abs());
    (t, p.clamp(0.0, 1.0))
}

/// Standard normal survival function via the Abramowitz–Stegun erfc
/// approximation (max abs error ~1.5e-7).
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let poly = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        poly
    } else {
        2.0 - poly
    }
}

/// Two-sample Kolmogorov–Smirnov test: returns `(d, approx_p)` where `d`
/// is the maximum CDF distance and `p` uses the asymptotic Kolmogorov
/// distribution (adequate for n ≥ ~20 per side). Useful for asking "did
/// pinning actually change the repetition-time *distribution*?", not just
/// its mean.
pub fn ks_test(a: &[f64], b: &[f64]) -> (f64, f64) {
    assert!(!a.is_empty() && !b.is_empty());
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    xb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (na, nb) = (xa.len(), xb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let x = xa[i].min(xb[j]);
        while i < na && xa[i] <= x {
            i += 1;
        }
        while j < nb && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na as f64 - j as f64 / nb as f64).abs());
    }
    let ne = (na * nb) as f64 / (na + nb) as f64;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    // Asymptotic Kolmogorov survival function; the series only converges
    // for λ bounded away from 0, and P → 1 there anyway.
    if lambda < 0.3 {
        return (d, 1.0);
    }
    let mut p = 0.0;
    for k in 1..=100 {
        let kf = k as f64;
        let term = 2.0 * (-1.0f64).powi(k + 1) * (-2.0 * kf * kf * lambda * lambda).exp();
        p += term;
        if term.abs() < 1e-12 {
            break;
        }
    }
    (d, p.clamp(0.0, 1.0))
}

/// Seeded bootstrap confidence interval for the mean: `level` ∈ (0,1),
/// e.g. 0.95. Deterministic for a given seed.
pub fn bootstrap_ci_mean(xs: &[f64], level: f64, resamples: usize, seed: u64) -> (f64, f64) {
    assert!(!xs.is_empty());
    assert!((0.0..1.0).contains(&level) && level > 0.0);
    let mut state = seed;
    let mut next = move || {
        // SplitMix64: small, seedable, good enough for resampling.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut s = 0.0;
        for _ in 0..n {
            s += xs[(next() % n as u64) as usize];
        }
        means.push(s / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - level) / 2.0;
    (
        percentile_sorted(&means, alpha * 100.0),
        percentile_sorted(&means, (1.0 - alpha) * 100.0),
    )
}

/// Lag-`k` autocorrelation of a series (Pearson, mean-removed). Useful
/// for detecting *periodic* noise in repetition times — e.g. a timer tick
/// whose period is a multiple of the repetition duration shows up as a
/// positive peak at the corresponding lag (Tsafrir et al.'s clock-tick
/// signature).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    assert!(lag < xs.len(), "lag must be smaller than the series");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    cov / var
}

/// Sarle's bimodality coefficient: `(skew² + 1) / (kurtosis + 3(n−1)²/((n−2)(n−3)))`.
/// Values above ~0.555 (the uniform distribution's value) suggest
/// bimodality — useful for flagging runs whose repetitions cluster into a
/// "clean" and a "disturbed" mode.
pub fn bimodality_coefficient(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 4 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n;
    let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if m2 == 0.0 {
        return 0.0;
    }
    let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
    let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
    let skew = m3 / m2.powf(1.5);
    let kurt = m4 / (m2 * m2) - 3.0;
    let correction = 3.0 * (n - 1.0).powi(2) / ((n - 2.0) * (n - 3.0));
    (skew * skew + 1.0) / (kurt + correction)
}

/// Histogram with fixed-width bins over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Counts per bin.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram with `bins` equal-width bins spanning the data.
    pub fn of(xs: &[f64], bins: usize) -> Histogram {
        assert!(bins > 0 && !xs.is_empty());
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi_raw = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi_raw > lo { hi_raw } else { lo + 1.0 };
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f64;
        for &x in xs {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram { lo, hi, counts }
    }

    /// Number of non-empty bins.
    pub fn occupied(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.cv - s.sd / 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_point_summary() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn normalized_bounds() {
        let s = Summary::of(&[8.0, 10.0, 12.0]);
        assert!(s.norm_min() <= 1.0 && s.norm_min() > 0.0);
        assert!(s.norm_max() >= 1.0);
        assert!((s.spread() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cv_is_scale_invariant() {
        let a = Summary::of(&[1.0, 2.0, 3.0]).cv;
        let b = Summary::of(&[10.0, 20.0, 30.0]).cv;
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn mad_outlier_detection() {
        let mut xs = vec![10.0; 20];
        xs.extend_from_slice(&[10.1, 9.9, 10.05]);
        xs.push(100.0); // obvious outlier
        let out = mad_outliers(&xs, 3.5);
        assert!(out.contains(&(xs.len() - 1)));
        assert!(out.len() <= 4);
    }

    #[test]
    fn welch_distinguishes_shifted_samples() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 12.0 + (i % 5) as f64 * 0.1).collect();
        let (t, p) = welch_t(&a, &b);
        assert!(t < -10.0);
        assert!(p < 1e-6);
        let (_, p_same) = welch_t(&a, &a);
        assert!(p_same > 0.99);
    }

    #[test]
    fn ks_test_separates_distributions() {
        let a: Vec<f64> = (0..200).map(|i| (i % 50) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| (i % 50) as f64 + 40.0).collect();
        let (d, p) = ks_test(&a, &b);
        assert!(d > 0.5, "d = {d}");
        assert!(p < 1e-6, "p = {p}");
        let (d, p) = ks_test(&a, &a);
        assert!(d < 1e-12);
        assert!(p > 0.99);
    }

    #[test]
    fn bootstrap_ci_contains_mean_and_is_deterministic() {
        let xs: Vec<f64> = (0..50).map(|i| 5.0 + (i % 7) as f64).collect();
        let mean = Summary::of(&xs).mean;
        let (lo, hi) = bootstrap_ci_mean(&xs, 0.95, 500, 42);
        assert!(lo < mean && mean < hi);
        assert_eq!(bootstrap_ci_mean(&xs, 0.95, 500, 42), (lo, hi));
        assert_ne!(bootstrap_ci_mean(&xs, 0.95, 500, 43), (lo, hi));
    }

    #[test]
    fn autocorrelation_detects_periodicity() {
        // Period-4 signal: strong positive r at lag 4, negative at lag 2.
        let xs: Vec<f64> = (0..200)
            .map(|i| if i % 4 == 0 { 10.0 } else { 1.0 })
            .collect();
        assert!(autocorrelation(&xs, 4) > 0.9);
        assert!(autocorrelation(&xs, 2) < 0.0);
        assert_eq!(autocorrelation(&[5.0; 10], 3), 0.0);
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bimodality_flags_two_modes() {
        let mut xs: Vec<f64> = (0..50).map(|i| 1.0 + 0.01 * (i % 5) as f64).collect();
        xs.extend((0..50).map(|i| 10.0 + 0.01 * (i % 5) as f64));
        assert!(bimodality_coefficient(&xs) > 0.555);
        let uni: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
        assert!(bimodality_coefficient(&uni) < 0.9);
    }

    #[test]
    fn histogram_covers_all_points() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::of(&xs, 10);
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert_eq!(h.occupied(), 10);
        // Constant data degenerates gracefully.
        let h = Histogram::of(&[5.0; 4], 3);
        assert_eq!(h.counts.iter().sum::<u64>(), 4);
    }

    #[test]
    fn normal_sf_known_values() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.96) - 0.025).abs() < 1e-3);
    }
}
