//! The run protocol and variability characterization.
//!
//! The paper's methodology: run every configuration `R` times (run-to-run
//! variability), with each run internally repeating the measured kernel
//! `K` times (intra-run variability, the EPCC "outer repetitions"). This
//! module holds the nested sample type and the derived variability
//! metrics: per-run summaries, run-to-run metrics over run means,
//! normalized min/max series, and a between/within variance decomposition.

use crate::stats::{mad_outliers, Summary};

/// One run: the per-repetition times (µs) of the measured kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSample {
    /// Per-repetition execution times, µs, in execution order.
    pub reps_us: Vec<f64>,
}

impl RunSample {
    /// Summary over this run's repetitions.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.reps_us)
    }
}

/// All runs of one experiment configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSet {
    /// Runs in execution order.
    pub runs: Vec<RunSample>,
}

impl RunSet {
    /// Build from a nested vector.
    pub fn new(runs: Vec<Vec<f64>>) -> RunSet {
        RunSet {
            runs: runs.into_iter().map(|reps_us| RunSample { reps_us }).collect(),
        }
    }

    /// Number of runs.
    pub fn n_runs(&self) -> usize {
        self.runs.len()
    }

    /// Mean execution time of each run (the paper's per-run "Avg." bars).
    pub fn run_means(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.summary().mean).collect()
    }

    /// CV of each run's repetitions (the paper's Figure 5 syncbench
    /// metric: intra-run stability, lower is better).
    pub fn run_cvs(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.summary().cv).collect()
    }

    /// Per-run minimum normalized to the run mean (Figure 3/5 series).
    pub fn run_norm_mins(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.summary().norm_min()).collect()
    }

    /// Per-run maximum normalized to the run mean (Figure 3/5 series).
    pub fn run_norm_maxs(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.summary().norm_max()).collect()
    }

    /// Summary over the run means: run-to-run variability.
    pub fn across_runs(&self) -> Summary {
        Summary::of(&self.run_means())
    }

    /// Summary over *all* repetitions pooled.
    pub fn pooled(&self) -> Summary {
        let all: Vec<f64> = self
            .runs
            .iter()
            .flat_map(|r| r.reps_us.iter().copied())
            .collect();
        Summary::of(&all)
    }

    /// Indices of runs whose mean is a MAD-outlier vs. the other runs —
    /// the "run #9 took 168 ms instead of 154 ms" detector for Table 2.
    pub fn outlier_runs(&self, z: f64) -> Vec<usize> {
        mad_outliers(&self.run_means(), z)
    }

    /// One-way variance decomposition of the pooled repetitions into a
    /// between-run and a within-run component. Returns
    /// `(between_fraction, within_fraction)`, each in `[0, 1]`, summing
    /// to 1 (for nonzero total variance).
    pub fn variance_decomposition(&self) -> (f64, f64) {
        let k = self.n_runs();
        if k < 2 {
            return (0.0, 1.0);
        }
        let grand = self.pooled().mean;
        let mut ss_between = 0.0;
        let mut ss_within = 0.0;
        for r in &self.runs {
            let s = r.summary();
            ss_between += r.reps_us.len() as f64 * (s.mean - grand).powi(2);
            ss_within += r
                .reps_us
                .iter()
                .map(|x| (x - s.mean).powi(2))
                .sum::<f64>();
        }
        let total = ss_between + ss_within;
        if total == 0.0 {
            (0.0, 1.0)
        } else {
            (ss_between / total, ss_within / total)
        }
    }

    /// The paper's headline stability metric after an intervention (e.g.
    /// pinning): the max/min spread of run means.
    pub fn run_spread(&self) -> f64 {
        self.across_runs().spread()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(base: f64, jitter: f64, outlier: Option<usize>) -> RunSet {
        let runs: Vec<Vec<f64>> = (0..10)
            .map(|r| {
                let shift = if Some(r) == outlier { base * 0.5 } else { 0.0 };
                (0..20)
                    .map(|i| base + shift + jitter * ((i * 7 + r * 3) % 5) as f64)
                    .collect()
            })
            .collect();
        RunSet::new(runs)
    }

    #[test]
    fn run_means_and_cvs_have_one_entry_per_run() {
        let rs = synthetic(100.0, 1.0, None);
        assert_eq!(rs.run_means().len(), 10);
        assert_eq!(rs.run_cvs().len(), 10);
        assert!(rs.run_cvs().iter().all(|&cv| cv < 0.05));
    }

    #[test]
    fn outlier_run_detected() {
        let rs = synthetic(100.0, 0.5, Some(9));
        let out = rs.outlier_runs(3.5);
        assert_eq!(out, vec![9]);
        assert!(synthetic(100.0, 0.5, None).outlier_runs(3.5).is_empty());
    }

    #[test]
    fn variance_decomposition_sums_to_one() {
        let rs = synthetic(100.0, 1.0, Some(3));
        let (b, w) = rs.variance_decomposition();
        assert!((b + w - 1.0).abs() < 1e-9);
        assert!(b > 0.5, "outlier run should dominate between-run variance");
        // Identical runs → all within.
        let flat = RunSet::new(vec![vec![1.0, 2.0, 3.0]; 5]);
        let (b, w) = flat.variance_decomposition();
        assert!(b < 1e-9);
        assert!((w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_series_bracket_one() {
        let rs = synthetic(50.0, 2.0, None);
        for (&lo, &hi) in rs.run_norm_mins().iter().zip(rs.run_norm_maxs().iter()) {
            assert!(lo <= 1.0 + 1e-12);
            assert!(hi >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn spread_reflects_outliers() {
        let quiet = synthetic(100.0, 0.1, None).run_spread();
        let noisy = synthetic(100.0, 0.1, Some(2)).run_spread();
        assert!(noisy > quiet * 1.2);
    }

    #[test]
    fn degenerate_single_run() {
        let rs = RunSet::new(vec![vec![5.0, 6.0]]);
        assert_eq!(rs.variance_decomposition(), (0.0, 1.0));
        assert_eq!(rs.n_runs(), 1);
    }
}
