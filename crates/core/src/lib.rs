#![warn(missing_docs)]

//! # ompvar-core — variability characterization
//!
//! The methodological core of the study: the nested run protocol
//! (run-to-run × intra-run repetitions), the statistics the paper reports
//! (mean, CV, normalized min/max, outlier runs, variance decomposition),
//! frequency-trace analysis, and paper-style table/CSV reporting.
//!
//! This crate is dependency-free and backend-agnostic: it consumes plain
//! `f64` samples produced by either runtime backend.

pub mod freqtrace;
pub mod protocol;
pub mod report;
pub mod stats;
pub mod variability;

pub use freqtrace::{FreqTrace, FreqTraceError};
pub use report::{fmt_ratio, fmt_us, render_histogram, sparkline, Table};
pub use stats::{
    autocorrelation, bimodality_coefficient, bootstrap_ci_mean, ks_test, mad, mad_outliers,
    percentile, welch_t, Histogram, Summary,
};
pub use protocol::{Characterization, RunPlan};
pub use variability::{RunSample, RunSet};
