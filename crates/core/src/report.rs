//! Report output: fixed-width ASCII tables (paper-style) and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows, each the width of the header.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width does not match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable values.
    pub fn row_disp<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let v: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&v)
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let line = |out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
                if i == ncol - 1 {
                    out.push_str("+\n");
                }
            }
        };
        line(&mut out);
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "| {:>w$} ", h, w = widths[i]);
        }
        out.push_str("|\n");
        line(&mut out);
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "| {:>w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        }
        line(&mut out);
        out
    }

    /// Write as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        s.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            s.push('\n');
        }
        fs::write(path, s)
    }
}

/// Render a histogram as horizontal ASCII bars (one line per bin), for
/// terminal-friendly distribution plots of repetition times.
pub fn render_histogram(h: &crate::stats::Histogram, width: usize) -> String {
    let max = h.counts.iter().copied().max().unwrap_or(0).max(1);
    let bins = h.counts.len();
    let bin_w = (h.hi - h.lo) / bins as f64;
    let mut out = String::new();
    for (i, &c) in h.counts.iter().enumerate() {
        let lo = h.lo + i as f64 * bin_w;
        let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
        let bar = if c > 0 && bar.is_empty() { "#".to_string() } else { bar };
        let _ = writeln!(out, "{lo:>12.2} | {bar:<w$} {c}", w = width);
    }
    out
}

/// Render a numeric series as a one-line Unicode sparkline (8 levels),
/// for quick terminal plots of repetition times or frequency traces.
pub fn sparkline(series: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    series
        .iter()
        .map(|&v| GLYPHS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

/// Format a microsecond value the way the paper's tables do (two
/// decimals).
pub fn fmt_us(us: f64) -> String {
    format!("{us:.2}")
}

/// Format a ratio/CV with four decimals.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["run", "time"]);
        t.row_disp(&["1", "124020.18"]);
        t.row_disp(&["2", "9.5"]);
        let s = t.render();
        assert!(s.contains("# Demo"));
        assert!(s.contains("| 124020.18 |"));
        assert!(s.lines().all(|l| l.starts_with('#')
            || l.starts_with('+')
            || l.starts_with('|')));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("x", &["a", "b"]).row_disp(&["only-one"]);
    }

    #[test]
    fn csv_round_trip_with_quoting() {
        let dir = std::env::temp_dir().join("ompvar_table_test");
        let path = dir.join("t.csv");
        let mut t = Table::new("q", &["name", "value"]);
        t.row_disp(&["plain", "1"]);
        t.row_disp(&["has,comma", "2"]);
        t.row_disp(&["has\"quote", "3"]);
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.starts_with("name,value\n"));
        assert!(s.contains("\"has,comma\",2"));
        assert!(s.contains("\"has\"\"quote\",3"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn histogram_rendering() {
        let h = crate::stats::Histogram::of(&[1.0, 1.0, 1.0, 2.0, 9.0], 4);
        let s = render_histogram(&h, 20);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
        // The fullest bin uses the full width.
        assert!(s.lines().next().unwrap().matches('#').count() == 20);
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_us(124020.184), "124020.18");
        assert_eq!(fmt_ratio(0.12345), "0.1235");
    }
}
