//! Frequency-trace analysis: turning the logger's per-core samples into
//! the quantities behind the paper's Figures 6 and 7 (frequency bands,
//! transition counts, residency).

use std::fmt;

/// Why a sample list cannot form a [`FreqTrace`].
///
/// Real logger files (the paper's sysfs poller) can be malformed —
/// clock steps backwards across a resync, truncated lines with missing
/// cores — so construction reports a typed error instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreqTraceError {
    /// Sample `index` has a timestamp earlier than its predecessor.
    UnorderedSamples {
        /// Offending sample position.
        index: usize,
        /// Predecessor's timestamp (ns).
        prev_ns: u64,
        /// Offending timestamp (ns).
        time_ns: u64,
    },
    /// Sample `index` covers a different number of cores than the first
    /// sample.
    InconsistentCoreCount {
        /// Offending sample position.
        index: usize,
        /// Core count of the first sample.
        expected: usize,
        /// Core count of the offending sample.
        found: usize,
    },
}

impl fmt::Display for FreqTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreqTraceError::UnorderedSamples { index, prev_ns, time_ns } => write!(
                f,
                "samples must be time-ordered: sample {index} at {time_ns} ns \
                 precedes its predecessor at {prev_ns} ns"
            ),
            FreqTraceError::InconsistentCoreCount { index, expected, found } => write!(
                f,
                "inconsistent core count: sample {index} covers {found} core(s), \
                 the first sample covers {expected}"
            ),
        }
    }
}

impl std::error::Error for FreqTraceError {}

/// A frequency trace: sample times (ns) and, per sample, the frequency of
/// every core in GHz. Mirrors the simulator's logger output without
/// depending on it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FreqTrace {
    /// Sample timestamps, nanoseconds, ascending.
    pub times_ns: Vec<u64>,
    /// `core_ghz[i][c]` = frequency of core `c` at sample `i`.
    pub core_ghz: Vec<Vec<f32>>,
}

impl FreqTrace {
    /// Build from `(time, freqs)` pairs. Samples must be time-ordered
    /// (ties allowed) and rectangular — every sample covering the same
    /// cores as the first.
    pub fn new(samples: Vec<(u64, Vec<f32>)>) -> Result<FreqTrace, FreqTraceError> {
        let mut t = FreqTrace::default();
        for (index, (time, f)) in samples.into_iter().enumerate() {
            if let Some(&prev) = t.times_ns.last() {
                if time < prev {
                    return Err(FreqTraceError::UnorderedSamples {
                        index,
                        prev_ns: prev,
                        time_ns: time,
                    });
                }
            }
            if let Some(first) = t.core_ghz.first() {
                if first.len() != f.len() {
                    return Err(FreqTraceError::InconsistentCoreCount {
                        index,
                        expected: first.len(),
                        found: f.len(),
                    });
                }
            }
            t.times_ns.push(time);
            t.core_ghz.push(f);
        }
        Ok(t)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times_ns.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.times_ns.is_empty()
    }

    /// Number of cores covered.
    pub fn n_cores(&self) -> usize {
        self.core_ghz.first().map_or(0, |f| f.len())
    }

    /// Time series of one core.
    pub fn core_series(&self, core: usize) -> Vec<f32> {
        self.core_ghz.iter().map(|s| s[core]).collect()
    }

    /// Count of observed frequency changes of `core` larger than
    /// `threshold_ghz` between consecutive samples.
    pub fn transitions(&self, core: usize, threshold_ghz: f32) -> usize {
        let s = self.core_series(core);
        s.windows(2)
            .filter(|w| (w[1] - w[0]).abs() > threshold_ghz)
            .count()
    }

    /// Total transitions across a set of cores.
    pub fn transitions_over(&self, cores: &[usize], threshold_ghz: f32) -> usize {
        cores
            .iter()
            .map(|&c| self.transitions(c, threshold_ghz))
            .sum()
    }

    /// Fraction of samples where `core` ran below `ghz`.
    pub fn residency_below(&self, core: usize, ghz: f32) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let s = self.core_series(core);
        s.iter().filter(|&&f| f < ghz).count() as f64 / s.len() as f64
    }

    /// Min and max frequency observed on `core`.
    pub fn band(&self, core: usize) -> (f32, f32) {
        let s = self.core_series(core);
        let lo = s.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> FreqTrace {
        FreqTrace::new(vec![
            (0, vec![3.5, 2.0]),
            (100, vec![3.5, 2.0]),
            (200, vec![3.0, 2.0]),
            (300, vec![3.5, 2.0]),
            (400, vec![3.5, 2.0]),
        ])
        .expect("samples are ordered and rectangular")
    }

    #[test]
    fn transitions_counted_per_core() {
        let t = trace();
        assert_eq!(t.transitions(0, 0.1), 2); // down then up
        assert_eq!(t.transitions(1, 0.1), 0);
        assert_eq!(t.transitions_over(&[0, 1], 0.1), 2);
    }

    #[test]
    fn residency_and_band() {
        let t = trace();
        assert!((t.residency_below(0, 3.2) - 0.2).abs() < 1e-9);
        assert_eq!(t.band(0), (3.0, 3.5));
        assert_eq!(t.band(1), (2.0, 2.0));
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = FreqTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.n_cores(), 0);
        assert_eq!(t.residency_below(0, 1.0), 0.0);
    }

    #[test]
    fn unordered_samples_rejected_with_typed_error() {
        let err = FreqTrace::new(vec![(100, vec![1.0]), (50, vec![1.0])]).unwrap_err();
        assert_eq!(
            err,
            FreqTraceError::UnorderedSamples { index: 1, prev_ns: 100, time_ns: 50 }
        );
        assert!(err.to_string().contains("time-ordered"), "{err}");
    }

    #[test]
    fn ragged_samples_rejected_with_typed_error() {
        let err = FreqTrace::new(vec![(0, vec![1.0]), (1, vec![1.0, 2.0])]).unwrap_err();
        assert_eq!(
            err,
            FreqTraceError::InconsistentCoreCount { index: 1, expected: 1, found: 2 }
        );
        assert!(err.to_string().contains("inconsistent core count"), "{err}");
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let t = FreqTrace::new(vec![(5, vec![1.0]), (5, vec![2.0])]).expect("ties are ordered");
        assert_eq!(t.len(), 2);
    }
}
