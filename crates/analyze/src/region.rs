//! The construct IR: a backend-independent description of an OpenMP-style
//! parallel region.
//!
//! Benchmarks (EPCC, BabelStream) describe their work as a tree of
//! [`Construct`]s executed SPMD-style by every thread of the team. The
//! same description runs on the `ompvar-rt` native backend (real
//! threads) and on its simulated backend (virtual time on a modeled
//! machine), which is what makes measurements comparable. The IR lives
//! in this crate — rather than in the runtime — so that the static
//! analyzer ([`crate::passes`]) can be the single authority on what a
//! well-formed program is, and both backends simply consume its verdict
//! through [`RegionSpec::validate`].

use ompvar_sim::task::CorunClass;
use ompvar_sim::trace::SemanticEffects;

/// Loop schedule, mirroring `omp for schedule(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static, chunk)`.
    Static {
        /// Chunk size (iterations).
        chunk: u64,
    },
    /// `schedule(dynamic, chunk)`.
    Dynamic {
        /// Chunk size (iterations).
        chunk: u64,
    },
    /// `schedule(guided, min_chunk)`.
    Guided {
        /// Minimum chunk size (iterations).
        min_chunk: u64,
    },
}

impl Schedule {
    /// Parse the `OMP_SCHEDULE` syntax: `kind[,chunk]` with kind one of
    /// `static`, `dynamic`, `guided` (case-insensitive). A missing chunk
    /// defaults to 1 for dynamic/guided and to 1 for static (this
    /// runtime's `static` is always chunked; a chunk of 0 is rejected).
    pub fn parse(s: &str) -> Option<Schedule> {
        let mut it = s.split(',');
        let kind = it.next()?.trim().to_ascii_lowercase();
        let chunk: u64 = match it.next() {
            Some(c) => c.trim().parse().ok()?,
            None => 1,
        };
        if it.next().is_some() || chunk == 0 {
            return None;
        }
        match kind.as_str() {
            "static" => Some(Schedule::Static { chunk }),
            "dynamic" => Some(Schedule::Dynamic { chunk }),
            "guided" => Some(Schedule::Guided { min_chunk: chunk }),
            _ => None,
        }
    }

    /// Short label used in reports, e.g. `dynamic_1`.
    pub fn label(&self) -> String {
        match self {
            Schedule::Static { chunk } => format!("static_{chunk}"),
            Schedule::Dynamic { chunk } => format!("dynamic_{chunk}"),
            Schedule::Guided { min_chunk } => format!("guided_{min_chunk}"),
        }
    }
}

/// One construct executed by every thread of the team, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum Construct {
    /// Spin-compute for the given number of microseconds of *nominal*
    /// (max-frequency, uncontended) time — the EPCC `delay()` primitive.
    DelayUs(f64),
    /// Compute a fixed cycle count with an explicit SMT class.
    Compute {
        /// Cycles of work.
        cycles: f64,
        /// SMT co-run class.
        class: CorunClass,
    },
    /// Stream this many bytes of memory traffic per thread.
    StreamBytes(f64),
    /// Work-shared loop: `total_iters` iterations of `delay(body_us)`
    /// distributed by `schedule`, followed by the implicit end-of-loop
    /// barrier unless `nowait`.
    ParallelFor {
        /// Schedule kind and chunking.
        schedule: Schedule,
        /// Total loop iterations across the team.
        total_iters: u64,
        /// Per-iteration body duration (µs of nominal time).
        body_us: f64,
        /// Per-iteration ordered section (µs), if this is an ordered loop.
        ordered_us: Option<f64>,
        /// Skip the implicit barrier at loop end.
        nowait: bool,
    },
    /// Explicit team barrier.
    Barrier,
    /// `omp critical` around `delay(body_us)`.
    Critical {
        /// Critical-section body (µs).
        body_us: f64,
    },
    /// Explicit lock/unlock around `delay(body_us)` (EPCC LOCK/UNLOCK).
    LockUnlock {
        /// Locked-section body (µs).
        body_us: f64,
    },
    /// A *named*-lock scope: acquire the shared lock `lock`, execute
    /// `body` while holding it, release. Unlike
    /// [`Construct::LockUnlock`], whose lock is private to the construct
    /// site, the same `lock` id names the same lock object everywhere in
    /// the region — so nested `Locked` scopes express acquisition
    /// *orders*, the raw material of the analyzer's may-deadlock pass
    /// (`omp_set_lock` on a shared `omp_lock_t`).
    Locked {
        /// Shared lock id; equal ids alias the same lock object.
        lock: u32,
        /// Constructs executed while holding the lock.
        body: Vec<Construct>,
    },
    /// `omp atomic` update of a shared scalar.
    Atomic,
    /// `omp single` with a `delay(body_us)` body (implicit barrier).
    Single {
        /// Single-region body (µs).
        body_us: f64,
    },
    /// `omp parallel`-style enclosed region: models fork/join around the
    /// body (a barrier on entry and exit).
    ParallelRegion {
        /// Constructs executed inside the region.
        body: Vec<Construct>,
    },
    /// Reduction: every thread computes `delay(body_us)` then combines
    /// into a shared accumulator (serialized), then the team barrier.
    Reduction {
        /// Per-thread local work (µs).
        body_us: f64,
    },
    /// Explicit tasking (`omp task` + `taskwait`): spawners create
    /// `per_spawner` tasks of `delay(body_us)` each; the whole team then
    /// reaches a task-scheduling point, executes the queued tasks, waits
    /// for completion, and synchronizes (EPCC taskbench style).
    Tasks {
        /// Tasks created by each spawning thread.
        per_spawner: u32,
        /// Task body duration (µs of nominal time).
        body_us: f64,
        /// Only the master spawns (EPCC "MASTER TASK"); otherwise every
        /// thread spawns (EPCC "PARALLEL TASK").
        master_only: bool,
    },
    /// Master-only timestamp: begin of measured interval `id`.
    MarkBegin(u32),
    /// Master-only timestamp: end of measured interval `id`.
    MarkEnd(u32),
    /// Repeat `body` `count` times.
    Repeat {
        /// Repetition count.
        count: u32,
        /// Repeated constructs.
        body: Vec<Construct>,
    },
}

impl Construct {
    /// Stable kind name, used in diagnostic spans and coverage tallies.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Construct::DelayUs(_) => "DelayUs",
            Construct::Compute { .. } => "Compute",
            Construct::StreamBytes(_) => "StreamBytes",
            Construct::ParallelFor { .. } => "ParallelFor",
            Construct::Barrier => "Barrier",
            Construct::Critical { .. } => "Critical",
            Construct::LockUnlock { .. } => "LockUnlock",
            Construct::Locked { .. } => "Locked",
            Construct::Atomic => "Atomic",
            Construct::Single { .. } => "Single",
            Construct::ParallelRegion { .. } => "ParallelRegion",
            Construct::Reduction { .. } => "Reduction",
            Construct::Tasks { .. } => "Tasks",
            Construct::MarkBegin(_) => "MarkBegin",
            Construct::MarkEnd(_) => "MarkEnd",
            Construct::Repeat { .. } => "Repeat",
        }
    }
}

/// A structural defect of a [`RegionSpec`] found by
/// [`RegionSpec::validate`]. Programs with any of these defects have no
/// defined execution on at least one backend, so they are rejected up
/// front with a typed error instead of panicking mid-run.
///
/// Each variant corresponds to one `Error`-severity diagnostic code of
/// the analyzer (see [`crate::diag::DiagCode`]); `validate()` surfaces
/// the first such diagnostic as its typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The team has zero threads.
    ZeroThreads,
    /// A `Repeat` construct has `count == 0`.
    ZeroCountRepeat,
    /// A `ParallelFor` has `total_iters == 0`.
    ZeroIterationLoop,
    /// A schedule carries a zero chunk (or min-chunk) size.
    ZeroChunk,
    /// A duration/size parameter is negative, NaN or infinite.
    InvalidWork {
        /// Which construct carried the bad value.
        construct: &'static str,
    },
    /// A `MarkBegin`/`MarkEnd` pair does not balance within its block:
    /// an end without a matching open begin, a re-begin of an id that is
    /// already open, or a begin left open at block end.
    UnmatchedMark {
        /// The offending marker id.
        id: u32,
    },
    /// A `nowait` loop inside a `Repeat { count > 1 }` whose body has no
    /// full-team synchronization: re-entering a work-shared loop before
    /// every thread has observed the previous pass's exhaustion corrupts
    /// its generation tracking, so such programs are rejected.
    RepeatedNowaitLoop,
    /// A `Locked` scope re-acquires a lock id it already holds:
    /// guaranteed self-deadlock on the first thread to reach it.
    SelfNestedLock {
        /// The re-acquired lock id.
        lock: u32,
    },
    /// A team-synchronizing construct executes while a named lock is
    /// held: threads blocked on the lock can never reach the rendezvous,
    /// so the holder waits forever (deadlock for any team of two or
    /// more; rejected uniformly so validity does not depend on team
    /// size).
    SyncUnderLock {
        /// Kind name of the synchronizing construct.
        construct: &'static str,
    },
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::ZeroThreads => write!(f, "team needs at least one thread"),
            RegionError::ZeroCountRepeat => write!(f, "Repeat with count 0"),
            RegionError::ZeroIterationLoop => write!(f, "ParallelFor with 0 iterations"),
            RegionError::ZeroChunk => write!(f, "schedule with chunk size 0"),
            RegionError::InvalidWork { construct } => {
                write!(f, "{construct} has a negative or non-finite work parameter")
            }
            RegionError::UnmatchedMark { id } => {
                write!(f, "unbalanced MarkBegin/MarkEnd for interval {id}")
            }
            RegionError::RepeatedNowaitLoop => write!(
                f,
                "nowait loop repeated without an intervening full-team synchronization"
            ),
            RegionError::SelfNestedLock { lock } => {
                write!(f, "lock {lock} acquired while already held (self-deadlock)")
            }
            RegionError::SyncUnderLock { construct } => {
                write!(f, "{construct} synchronizes the team while a lock is held")
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// A full region specification: the team size and the construct list.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Number of OpenMP threads in the team.
    pub n_threads: usize,
    /// Construct list, executed SPMD by every thread.
    pub constructs: Vec<Construct>,
}

impl RegionSpec {
    /// Validated constructor: rejects malformed regions with a typed
    /// [`RegionError`] instead of panicking later inside a backend.
    pub fn new(n_threads: usize, constructs: Vec<Construct>) -> Result<Self, RegionError> {
        let spec = RegionSpec {
            n_threads,
            constructs,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structurally validate the region: the contract every program must
    /// meet before either backend will run it (and the contract the
    /// `ompvar-qcheck` generator promises to uphold).
    ///
    /// This is the `Error`-severity surface of the static analyzer: it
    /// runs the full [`crate::passes::analyze`] pipeline and surfaces
    /// the first `Error`-severity diagnostic as its typed
    /// [`RegionError`]. `Warn`/`Info` findings never fail validation.
    pub fn validate(&self) -> Result<(), RegionError> {
        match crate::passes::analyze(self).first_error() {
            Some(d) => Err(d
                .cause
                .expect("error-severity diagnostics carry their RegionError")),
            None => Ok(()),
        }
    }

    /// The semantic effects a correct execution of this region *must*
    /// produce, computed statically from the construct tree. Effects are
    /// schedule-independent (iteration totals, arrivals, combine counts),
    /// so this single prediction applies to both backends. Delegates to
    /// [`crate::predict::effects`], the analyzer's effect-prediction
    /// pass — the single source of truth the differential-fuzzing
    /// oracles compare against.
    pub fn expected_effects(&self) -> SemanticEffects {
        crate::predict::effects(self)
    }

    /// The canonical EPCC-style measurement wrapper: two *unmeasured*
    /// warm-up repetitions (letting thread placement and the frequency
    /// governor settle, as a real run does before its first timestamp),
    /// then `outer_reps` repetitions of {barrier; mark-begin; `inner` ×
    /// body; mark-end}, measured as interval 0.
    pub fn measured(
        n_threads: usize,
        outer_reps: u32,
        inner_reps: u32,
        body: Vec<Construct>,
    ) -> Self {
        let warmup = Construct::Repeat {
            count: 2,
            body: vec![
                Construct::Barrier,
                Construct::Repeat {
                    count: inner_reps,
                    body: body.clone(),
                },
            ],
        };
        RegionSpec::new(
            n_threads,
            vec![
                warmup,
                Construct::Repeat {
                    count: outer_reps,
                    body: vec![
                        Construct::Barrier,
                        Construct::MarkBegin(0),
                        Construct::Repeat {
                            count: inner_reps,
                            body,
                        },
                        Construct::MarkEnd(0),
                    ],
                },
            ],
        )
        .expect("measured() wrapper is structurally valid")
    }
}

/// Nominal cycles for `delay(us)` on a machine with the given max
/// frequency: EPCC calibrates its delay loop at full turbo.
pub fn delay_cycles(us: f64, max_ghz: f64) -> f64 {
    us * 1e3 * max_ghz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_labels() {
        assert_eq!(Schedule::Static { chunk: 1 }.label(), "static_1");
        assert_eq!(Schedule::Dynamic { chunk: 8 }.label(), "dynamic_8");
        assert_eq!(Schedule::Guided { min_chunk: 4 }.label(), "guided_4");
    }

    #[test]
    fn schedule_parsing() {
        assert_eq!(Schedule::parse("dynamic,1"), Some(Schedule::Dynamic { chunk: 1 }));
        assert_eq!(Schedule::parse("STATIC, 8"), Some(Schedule::Static { chunk: 8 }));
        assert_eq!(Schedule::parse("guided"), Some(Schedule::Guided { min_chunk: 1 }));
        assert_eq!(Schedule::parse("auto"), None);
        assert_eq!(Schedule::parse("dynamic,0"), None);
        assert_eq!(Schedule::parse("dynamic,1,2"), None);
    }

    #[test]
    fn measured_wrapper_shape() {
        let r = RegionSpec::measured(4, 10, 5, vec![Construct::Barrier]);
        // Warm-up block first, unmeasured.
        let Construct::Repeat { count, body } = &r.constructs[0] else {
            panic!("measured() must emit a warm-up Repeat first, got {:?}", r.constructs[0])
        };
        assert_eq!(*count, 2);
        assert!(!body
            .iter()
            .any(|c| matches!(c, Construct::MarkBegin(_) | Construct::MarkEnd(_))));
        // Then the measured block.
        let Construct::Repeat { count, body } = &r.constructs[1] else {
            panic!("measured() must emit the measured Repeat second, got {:?}", r.constructs[1])
        };
        assert_eq!(*count, 10);
        assert!(matches!(body[0], Construct::Barrier));
        assert!(matches!(body[1], Construct::MarkBegin(0)));
        assert!(matches!(body[3], Construct::MarkEnd(0)));
    }

    #[test]
    fn delay_cycles_scale_with_frequency() {
        assert_eq!(delay_cycles(15.0, 3.4), 51_000.0);
        assert_eq!(delay_cycles(0.1, 3.7), 370.0);
    }

    #[test]
    fn zero_threads_rejected() {
        let err = RegionSpec::new(0, vec![]).unwrap_err();
        assert_eq!(err, RegionError::ZeroThreads);
    }

    fn valid(cs: Vec<Construct>) -> Result<(), RegionError> {
        RegionSpec {
            n_threads: 2,
            constructs: cs,
        }
        .validate()
    }

    #[test]
    fn validate_rejects_structural_defects() {
        assert_eq!(
            valid(vec![Construct::Repeat { count: 0, body: vec![] }]),
            Err(RegionError::ZeroCountRepeat)
        );
        let zero_loop = Construct::ParallelFor {
            schedule: Schedule::Static { chunk: 1 },
            total_iters: 0,
            body_us: 0.1,
            ordered_us: None,
            nowait: false,
        };
        assert_eq!(valid(vec![zero_loop]), Err(RegionError::ZeroIterationLoop));
        let zero_chunk = Construct::ParallelFor {
            schedule: Schedule::Dynamic { chunk: 0 },
            total_iters: 4,
            body_us: 0.1,
            ordered_us: None,
            nowait: false,
        };
        assert_eq!(valid(vec![zero_chunk]), Err(RegionError::ZeroChunk));
        assert_eq!(
            valid(vec![Construct::DelayUs(f64::NAN)]),
            Err(RegionError::InvalidWork { construct: "DelayUs" })
        );
        assert_eq!(
            valid(vec![Construct::Critical { body_us: -1.0 }]),
            Err(RegionError::InvalidWork { construct: "Critical" })
        );
    }

    #[test]
    fn validate_requires_balanced_marks_per_block() {
        assert_eq!(
            valid(vec![Construct::MarkBegin(3)]),
            Err(RegionError::UnmatchedMark { id: 3 })
        );
        assert_eq!(
            valid(vec![Construct::MarkEnd(1)]),
            Err(RegionError::UnmatchedMark { id: 1 })
        );
        assert_eq!(
            valid(vec![
                Construct::MarkBegin(0),
                Construct::MarkBegin(0),
                Construct::MarkEnd(0),
                Construct::MarkEnd(0),
            ]),
            Err(RegionError::UnmatchedMark { id: 0 })
        );
        // A begin whose end lives in a nested block does not balance.
        assert_eq!(
            valid(vec![
                Construct::MarkBegin(0),
                Construct::Repeat {
                    count: 1,
                    body: vec![Construct::MarkEnd(0)],
                },
            ]),
            Err(RegionError::UnmatchedMark { id: 0 })
        );
        // Overlapping (non-LIFO) pairs of distinct ids are fine.
        assert_eq!(
            valid(vec![
                Construct::MarkBegin(0),
                Construct::MarkBegin(1),
                Construct::MarkEnd(0),
                Construct::MarkEnd(1),
            ]),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_unsynchronized_repeated_nowait_loops() {
        let nowait_loop = Construct::ParallelFor {
            schedule: Schedule::Dynamic { chunk: 1 },
            total_iters: 8,
            body_us: 0.1,
            ordered_us: None,
            nowait: true,
        };
        let bad = vec![Construct::Repeat {
            count: 3,
            body: vec![nowait_loop.clone()],
        }];
        assert_eq!(valid(bad), Err(RegionError::RepeatedNowaitLoop));
        // Adding any full-team rendezvous to the repeated body fixes it.
        let good = vec![Construct::Repeat {
            count: 3,
            body: vec![nowait_loop.clone(), Construct::Barrier],
        }];
        assert_eq!(valid(good), Ok(()));
        // count == 1 never re-enters the loop, so it is fine as-is.
        let once = vec![Construct::Repeat {
            count: 1,
            body: vec![nowait_loop],
        }];
        assert_eq!(valid(once), Ok(()));
    }

    /// Regression test for the helper-recursion bug: `contains_nowait`
    /// used to skip `ParallelRegion` bodies, so a nowait hazard *nested
    /// inside* a parallel region escaped the repeated-nowait check
    /// entirely — and `contains_team_sync` counted the nested region
    /// itself as an outer-team rendezvous, which (per the OpenMP model,
    /// where a nested region forks its own team) it is not. This test
    /// fails on the pre-fix code, which accepted both programs.
    #[test]
    fn validate_rejects_nowait_hazard_nested_in_parallel_region() {
        let nowait_loop = Construct::ParallelFor {
            schedule: Schedule::Dynamic { chunk: 1 },
            total_iters: 8,
            body_us: 0.1,
            ordered_us: None,
            nowait: true,
        };
        // The hazardous loop hides inside a nested ParallelRegion: the
        // old helpers neither saw the nowait nor refused to credit the
        // region as a sync, so validate() accepted this.
        let hidden = vec![Construct::Repeat {
            count: 2,
            body: vec![Construct::ParallelRegion {
                body: vec![nowait_loop.clone()],
            }],
        }];
        assert_eq!(valid(hidden), Err(RegionError::RepeatedNowaitLoop));
        // A nested region alone must not count as the intervening sync
        // for a sibling nowait loop.
        let sibling = vec![Construct::Repeat {
            count: 2,
            body: vec![
                nowait_loop.clone(),
                Construct::ParallelRegion { body: vec![] },
            ],
        }];
        assert_eq!(valid(sibling), Err(RegionError::RepeatedNowaitLoop));
        // A barrier *inside* the nested body binds to the inner team, so
        // the conservative check still rejects…
        let inner_barrier = vec![Construct::Repeat {
            count: 2,
            body: vec![Construct::ParallelRegion {
                body: vec![nowait_loop.clone(), Construct::Barrier],
            }],
        }];
        assert_eq!(valid(inner_barrier), Err(RegionError::RepeatedNowaitLoop));
        // …while an outer-team barrier in the repeated body fixes it.
        let fixed = vec![Construct::Repeat {
            count: 2,
            body: vec![
                Construct::ParallelRegion {
                    body: vec![nowait_loop],
                },
                Construct::Barrier,
            ],
        }];
        assert_eq!(valid(fixed), Ok(()));
    }

    #[test]
    fn validate_rejects_deadlocking_lock_nesting() {
        // Self-nesting the same named lock is a guaranteed deadlock.
        assert_eq!(
            valid(vec![Construct::Locked {
                lock: 1,
                body: vec![Construct::Locked {
                    lock: 1,
                    body: vec![Construct::DelayUs(0.1)],
                }],
            }]),
            Err(RegionError::SelfNestedLock { lock: 1 })
        );
        // Team synchronization under a held lock can never complete.
        assert_eq!(
            valid(vec![Construct::Locked {
                lock: 0,
                body: vec![Construct::Barrier],
            }]),
            Err(RegionError::SyncUnderLock { construct: "Barrier" })
        );
        // Distinct locks in consistent order are fine.
        assert_eq!(
            valid(vec![Construct::Locked {
                lock: 0,
                body: vec![Construct::Locked {
                    lock: 1,
                    body: vec![Construct::DelayUs(0.1)],
                }],
            }]),
            Ok(())
        );
    }

    #[test]
    fn expected_effects_walk_the_tree() {
        let fx = RegionSpec {
            n_threads: 4,
            constructs: vec![
                Construct::Barrier,
                Construct::Repeat {
                    count: 3,
                    body: vec![
                        Construct::Critical { body_us: 0.1 },
                        Construct::ParallelFor {
                            schedule: Schedule::Guided { min_chunk: 1 },
                            total_iters: 10,
                            body_us: 0.1,
                            ordered_us: Some(0.05),
                            nowait: false,
                        },
                    ],
                },
                Construct::Tasks {
                    per_spawner: 2,
                    body_us: 0.1,
                    master_only: true,
                },
            ],
        }
        .expected_effects();
        assert_eq!(fx.lock_entries, 4 * 3);
        assert_eq!(fx.loop_iters, 10 * 3);
        assert_eq!(fx.loop_passes, 3);
        assert_eq!(fx.ordered_entries, 10 * 3);
        // Explicit + 3 loop-end + 2 task barriers, 4 arrivals each.
        assert_eq!(fx.barrier_arrivals, 4 * (1 + 3 + 2));
        assert_eq!(fx.tasks_spawned, 2);
        assert_eq!(fx.tasks_executed, 2);
        assert_eq!(fx.mutex_violations, 0);
    }

    #[test]
    fn expected_effects_count_named_lock_entries() {
        let fx = RegionSpec {
            n_threads: 3,
            constructs: vec![Construct::Repeat {
                count: 2,
                body: vec![Construct::Locked {
                    lock: 0,
                    body: vec![Construct::Atomic],
                }],
            }],
        }
        .expected_effects();
        assert_eq!(fx.lock_entries, 3 * 2);
        assert_eq!(fx.atomic_ops, 3 * 2);
    }
}
