#![warn(missing_docs)]

//! # ompvar-analyze — static analysis of the region IR
//!
//! The construct IR ([`region`]) lives here, together with everything
//! that can be decided about a program *without running it*:
//!
//! * [`passes::analyze`] — the lint pipeline. An abstract interpretation
//!   of the SPMD construct sequence producing structured
//!   [`diag::Diagnostic`]s: `OMPV0xx` codes with a severity
//!   (`Error`/`Warn`/`Info`), a construct-path span addressing the
//!   offending node, and a human rendering. Four analyses run: barrier
//!   matching / team divergence (structural), nowait-hazard phase
//!   partitioning, may-deadlock (lock nesting + acquisition-order cycle
//!   detection), and a static cost model flagging serial bottlenecks.
//! * [`predict`] — the static effect and cost prediction. The predicted
//!   [`SemanticEffects`](ompvar_sim::trace::SemanticEffects) are the
//!   single source of truth the differential-fuzzing oracles compare
//!   both backends against ([`region::RegionSpec::expected_effects`]
//!   delegates here).
//!
//! [`region::RegionSpec::validate`] is the error-severity surface of the
//! analyzer: it runs the full pipeline and converts the first
//! `Error`-severity diagnostic back into the typed
//! [`region::RegionError`] both backends reject with. `Warn` and `Info`
//! findings do not block execution — they feed the harness's pre-flight
//! gate, the fuzzer's soundness oracle (any dynamic deadlock/violation
//! must have been flagged at least `Warn`), and the reports.

pub mod diag;
pub mod passes;
pub mod predict;
pub mod region;

pub use diag::{Analysis, DiagCode, Diagnostic, Severity, Span};
pub use passes::analyze;
pub use region::{Construct, RegionError, RegionSpec, Schedule};
