//! Structured lint diagnostics: codes, severities, construct-path spans
//! and the [`Analysis`] report the passes produce.
//!
//! Every finding carries a stable `OMPV0xx` code so tests, the harness
//! pre-flight gate and the fuzzer's soundness oracle can key on the
//! *class* of a finding rather than its rendered text. Severity is a
//! property of the code, not the call site:
//!
//! * `Error` — the program is rejected; both backends refuse to run it.
//!   Error diagnostics carry the typed [`RegionError`] that
//!   [`RegionSpec::validate`](crate::region::RegionSpec::validate)
//!   surfaces.
//! * `Warn` — the program runs, but the analyzer predicts it may
//!   deadlock or race. The fuzzer's soundness oracle requires every
//!   dynamically observed deadlock/violation to be covered by a
//!   `Warn`-or-worse diagnostic.
//! * `Info` — advisory only (phase structure, predicted bottlenecks).

use crate::region::RegionError;
use std::collections::BTreeSet;
use std::fmt;

/// How serious a diagnostic is. Ordered: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: worth knowing, never blocks anything.
    Info,
    /// The analyzer predicts a possible dynamic failure (deadlock,
    /// nowait race). The program still runs; the soundness oracle keys
    /// on this level.
    Warn,
    /// The program is statically rejected; `validate()` fails.
    Error,
}

impl Severity {
    /// Lower-case label used in renderings (`error`, `warn`, `info`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. `OMPV0xx` are structural (malformed IR),
/// `OMPV1xx` are hazards (synchronization / deadlock), `OMPV2xx` are
/// performance advisories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// OMPV001 — the team has zero threads.
    ZeroThreads,
    /// OMPV002 — `Repeat` with `count == 0`.
    ZeroCountRepeat,
    /// OMPV003 — work-shared loop with zero iterations.
    ZeroIterationLoop,
    /// OMPV004 — explicit schedule chunk of zero.
    ZeroChunk,
    /// OMPV005 — negative or non-finite work parameter.
    InvalidWork,
    /// OMPV006 — `MarkBegin`/`MarkEnd` unbalanced within a block.
    UnmatchedMark,
    /// OMPV101 — repeated nowait loop with no intervening team sync:
    /// straggler iterations of pass *k* overlap pass *k+1*.
    RepeatedNowaitLoop,
    /// OMPV102 — a shared-effect construct overlaps an open nowait
    /// window (threads may still be executing straggler iterations).
    NowaitOverlap,
    /// OMPV103 — a nowait window is still open at the end of the
    /// region; only the implicit region join closes it.
    NowaitLeftOpen,
    /// OMPV104 — a named lock is acquired while already held by the
    /// same thread: guaranteed self-deadlock.
    SelfNestedLock,
    /// OMPV105 — a team-synchronizing construct executes while a lock
    /// is held: threads blocked on the lock can never reach the sync.
    SyncUnderLock,
    /// OMPV110 — the lock acquisition-order graph has a cycle;
    /// concurrent threads may deadlock (classic AB/BA).
    LockCycle,
    /// OMPV111 — an ordered nowait loop under a held lock: ordered
    /// tickets owned by threads blocked on the lock may never retire.
    OrderedUnderLock,
    /// OMPV112 — a nowait workshare under a held lock: only the lock
    /// holder makes progress, serializing the "parallel" loop.
    WorkshareUnderLock,
    /// OMPV201 — predicted serialized work exceeds parallelizable
    /// work: contention, not the runtime, will dominate variability.
    SerialBottleneck,
}

impl DiagCode {
    /// Every code, in code order. Drives the per-code test sweep and
    /// the documentation table.
    pub const ALL: [DiagCode; 15] = [
        DiagCode::ZeroThreads,
        DiagCode::ZeroCountRepeat,
        DiagCode::ZeroIterationLoop,
        DiagCode::ZeroChunk,
        DiagCode::InvalidWork,
        DiagCode::UnmatchedMark,
        DiagCode::RepeatedNowaitLoop,
        DiagCode::NowaitOverlap,
        DiagCode::NowaitLeftOpen,
        DiagCode::SelfNestedLock,
        DiagCode::SyncUnderLock,
        DiagCode::LockCycle,
        DiagCode::OrderedUnderLock,
        DiagCode::WorkshareUnderLock,
        DiagCode::SerialBottleneck,
    ];

    /// The stable `OMPV0xx` identifier.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::ZeroThreads => "OMPV001",
            DiagCode::ZeroCountRepeat => "OMPV002",
            DiagCode::ZeroIterationLoop => "OMPV003",
            DiagCode::ZeroChunk => "OMPV004",
            DiagCode::InvalidWork => "OMPV005",
            DiagCode::UnmatchedMark => "OMPV006",
            DiagCode::RepeatedNowaitLoop => "OMPV101",
            DiagCode::NowaitOverlap => "OMPV102",
            DiagCode::NowaitLeftOpen => "OMPV103",
            DiagCode::SelfNestedLock => "OMPV104",
            DiagCode::SyncUnderLock => "OMPV105",
            DiagCode::LockCycle => "OMPV110",
            DiagCode::OrderedUnderLock => "OMPV111",
            DiagCode::WorkshareUnderLock => "OMPV112",
            DiagCode::SerialBottleneck => "OMPV201",
        }
    }

    /// Short kebab-case name shown next to the code.
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::ZeroThreads => "zero-threads",
            DiagCode::ZeroCountRepeat => "zero-count-repeat",
            DiagCode::ZeroIterationLoop => "zero-iteration-loop",
            DiagCode::ZeroChunk => "zero-chunk",
            DiagCode::InvalidWork => "invalid-work",
            DiagCode::UnmatchedMark => "unmatched-mark",
            DiagCode::RepeatedNowaitLoop => "repeated-nowait-loop",
            DiagCode::NowaitOverlap => "nowait-overlap",
            DiagCode::NowaitLeftOpen => "nowait-left-open",
            DiagCode::SelfNestedLock => "self-nested-lock",
            DiagCode::SyncUnderLock => "sync-under-lock",
            DiagCode::LockCycle => "lock-cycle",
            DiagCode::OrderedUnderLock => "ordered-under-lock",
            DiagCode::WorkshareUnderLock => "workshare-under-lock",
            DiagCode::SerialBottleneck => "serial-bottleneck",
        }
    }

    /// Severity is fixed per code.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::ZeroThreads
            | DiagCode::ZeroCountRepeat
            | DiagCode::ZeroIterationLoop
            | DiagCode::ZeroChunk
            | DiagCode::InvalidWork
            | DiagCode::UnmatchedMark
            | DiagCode::RepeatedNowaitLoop
            | DiagCode::SelfNestedLock
            | DiagCode::SyncUnderLock => Severity::Error,
            DiagCode::NowaitOverlap | DiagCode::LockCycle | DiagCode::OrderedUnderLock => {
                Severity::Warn
            }
            DiagCode::NowaitLeftOpen | DiagCode::WorkshareUnderLock | DiagCode::SerialBottleneck => {
                Severity::Info
            }
        }
    }

    /// Codes whose presence means the analyzer predicts the program can
    /// block forever at run time.
    pub fn predicts_deadlock(self) -> bool {
        matches!(
            self,
            DiagCode::SelfNestedLock
                | DiagCode::SyncUnderLock
                | DiagCode::LockCycle
                | DiagCode::OrderedUnderLock
        )
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// A construct path addressing one node of the IR tree, e.g.
/// `constructs[1].Repeat.body[0].ParallelFor`. The empty path addresses
/// the region as a whole and renders as `region`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Span {
    steps: Vec<(usize, &'static str)>,
}

impl Span {
    /// The whole-region span (empty path).
    pub fn root() -> Span {
        Span::default()
    }

    /// The span of child `index` (of kind `kind`) under `self`.
    pub fn child(&self, index: usize, kind: &'static str) -> Span {
        let mut steps = self.steps.clone();
        steps.push((index, kind));
        Span { steps }
    }

    /// The `(index, kind)` path steps, outermost first.
    pub fn steps(&self) -> &[(usize, &'static str)] {
        &self.steps
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "region");
        }
        for (depth, (index, kind)) in self.steps.iter().enumerate() {
            if depth == 0 {
                write!(f, "constructs[{index}].{kind}")?;
            } else {
                write!(f, ".body[{index}].{kind}")?;
            }
        }
        Ok(())
    }
}

/// One finding: a code, the span it is anchored at, a human message,
/// and — for `Error`-severity codes — the typed [`RegionError`] that
/// `validate()` surfaces for it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable diagnostic code (determines severity).
    pub code: DiagCode,
    /// Construct path of the offending node.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
    /// The typed error, present exactly when `code.severity()` is
    /// [`Severity::Error`].
    pub cause: Option<RegionError>,
}

impl Diagnostic {
    /// A `Warn`/`Info` finding (no typed cause).
    pub fn new(code: DiagCode, span: Span, message: String) -> Diagnostic {
        debug_assert!(code.severity() < Severity::Error);
        Diagnostic {
            code,
            span,
            message,
            cause: None,
        }
    }

    /// An `Error` finding carrying the [`RegionError`] that
    /// `validate()` returns for it.
    pub fn because(code: DiagCode, span: Span, message: String, cause: RegionError) -> Diagnostic {
        debug_assert!(code.severity() == Severity::Error);
        Diagnostic {
            code,
            span,
            message,
            cause: Some(cause),
        }
    }

    /// Severity of this finding (a property of the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// One-line human rendering, e.g.
    /// `error[OMPV101 repeated-nowait-loop] at constructs[0].Repeat: …`.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] at {}: {}",
            self.severity().label(),
            self.code,
            self.span,
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The result of running every pass over one region: an ordered list of
/// findings (structural first, then hazards, then advisories).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Analysis {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// True when there are no findings at all (not even `Info`).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity()).max()
    }

    /// True when any `Error`-severity finding is present (the program
    /// is statically rejected).
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// The first `Error`-severity finding, in pass order. This is the
    /// error `validate()` surfaces.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity() == Severity::Error)
    }

    /// The *verdict*: the set of `Warn`-or-worse codes. This is the
    /// diagnostic class the qcheck shrinker must preserve — two
    /// programs with the same verdict are interchangeable for
    /// counterexample minimization, and the soundness oracle checks
    /// dynamic failures against it.
    pub fn verdict(&self) -> BTreeSet<DiagCode> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() >= Severity::Warn)
            .map(|d| d.code)
            .collect()
    }

    /// True when any finding predicts the program can block forever at
    /// run time. The fuzzer runs such programs sim-only (virtual-time
    /// deadlock detection) rather than risking a native hang.
    pub fn may_deadlock(&self) -> bool {
        self.diagnostics.iter().any(|d| d.code.predicts_deadlock())
    }

    /// Number of findings at exactly `sev`.
    pub fn count_of(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == sev)
            .count()
    }

    /// Multi-line human rendering; `"clean"` when there are no findings.
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return "clean".to_string();
        }
        self.diagnostics
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn codes_are_unique_and_consistent() {
        let codes: BTreeSet<&str> = DiagCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), DiagCode::ALL.len(), "duplicate OMPV code");
        let names: BTreeSet<&str> = DiagCode::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), DiagCode::ALL.len(), "duplicate code name");
        for c in DiagCode::ALL {
            assert!(c.code().starts_with("OMPV"), "{c:?}");
        }
    }

    #[test]
    fn span_rendering_walks_the_tree() {
        assert_eq!(Span::root().to_string(), "region");
        let s = Span::root().child(1, "Repeat").child(0, "ParallelFor");
        assert_eq!(s.to_string(), "constructs[1].Repeat.body[0].ParallelFor");
    }

    #[test]
    fn diagnostic_rendering_includes_code_span_and_message() {
        let d = Diagnostic::new(
            DiagCode::NowaitOverlap,
            Span::root().child(2, "Single"),
            "the single body may overlap stragglers".into(),
        );
        let r = d.render();
        assert!(r.starts_with("warn[OMPV102 nowait-overlap]"), "{r}");
        assert!(r.contains("constructs[2].Single"), "{r}");
    }

    #[test]
    fn verdict_collects_warn_or_worse_only() {
        let a = Analysis {
            diagnostics: vec![
                Diagnostic::new(DiagCode::SerialBottleneck, Span::root(), "info".into()),
                Diagnostic::new(DiagCode::LockCycle, Span::root(), "warn".into()),
            ],
        };
        let v = a.verdict();
        assert!(v.contains(&DiagCode::LockCycle));
        assert!(!v.contains(&DiagCode::SerialBottleneck));
        assert!(a.may_deadlock());
        assert!(!a.has_errors());
        assert_eq!(a.max_severity(), Some(Severity::Warn));
    }
}
