//! The lint pipeline: an abstract interpretation of the SPMD construct
//! sequence.
//!
//! Four passes run over every region, in order:
//!
//! 1. **Structural / team-divergence** ([`structural`]) — malformed IR
//!    (zero counts, bad work parameters, unbalanced marks) plus the
//!    barrier-matching invariant: because the IR is SPMD (every thread
//!    executes the same construct list), team divergence can only enter
//!    through *generation skew* of a work-shared loop — the
//!    repeated-nowait hazard — which this pass detects with the
//!    (recursion-fixed) `contains_nowait` / `contains_team_sync`
//!    helpers, including inside `Repeat` and nested `ParallelRegion`
//!    bodies.
//! 2. **Nowait-hazard phase analysis** ([`nowait_windows`]) — partitions
//!    the construct sequence into phases separated by full-team
//!    synchronizations and tracks the set of *open nowait windows*
//!    (loops whose stragglers may still be running). Any shared-effect
//!    construct overlapping an open window is flagged.
//! 3. **May-deadlock** ([`locks`]) — walks `Locked` nesting, rejects
//!    self-nesting and team syncs under a held lock (`Error`), and
//!    builds the lock acquisition-order graph; a cycle (AB/BA) is a
//!    `Warn`-level may-deadlock.
//! 4. **Cost advisory** ([`serial_bottleneck`]) — compares the
//!    statically predicted serialized vs. parallelizable work
//!    ([`crate::predict::cost`]) and flags regions whose variability
//!    will be dominated by contention rather than the runtime.
//!
//! The abstract domain is deliberately simple: per-block open-mark sets,
//! open-nowait-window sets, and the held-lock stack — each a finite
//! lattice joined in program order. Findings accumulate (the passes
//! never early-return), so one `analyze()` call reports everything;
//! `validate()` keeps its historical first-error behavior by taking the
//! first `Error`-severity finding in pass order.

use crate::diag::{Analysis, DiagCode, Diagnostic, Span};
use crate::predict;
use crate::region::{Construct, RegionError, RegionSpec, Schedule};
use std::collections::{BTreeMap, BTreeSet};

/// Run every pass over `spec` and collect the findings.
pub fn analyze(spec: &RegionSpec) -> Analysis {
    let mut diags = Vec::new();
    if spec.n_threads == 0 {
        diags.push(Diagnostic::because(
            DiagCode::ZeroThreads,
            Span::root(),
            "the team has zero threads".into(),
            RegionError::ZeroThreads,
        ));
        return Analysis { diagnostics: diags };
    }
    structural(&spec.constructs, &Span::root(), &mut diags);
    nowait_windows(spec, &mut diags);
    locks(spec, &mut diags);
    serial_bottleneck(spec, &mut diags);
    Analysis { diagnostics: diags }
}

/// Does this block contain a `nowait` loop? Descends into `Repeat`,
/// `Locked` *and* `ParallelRegion` bodies: in the OpenMP model a nested
/// region forks its own team, but its nowait hazard is still a hazard —
/// the old non-recursive version let nested hazards escape entirely.
pub(crate) fn contains_nowait(cs: &[Construct]) -> bool {
    cs.iter().any(|c| match c {
        Construct::ParallelFor { nowait, .. } => *nowait,
        Construct::Repeat { body, .. }
        | Construct::ParallelRegion { body }
        | Construct::Locked { body, .. } => contains_nowait(body),
        _ => false,
    })
}

/// Does this block contain at least one construct that rendezvouses the
/// *enclosing* team? `ParallelRegion` deliberately does not count and is
/// not descended into: per the OpenMP model a nested parallel region
/// forks its own team, so nothing inside it — nor the region itself —
/// synchronizes the outer team. (This runtime's lowering happens to
/// rendezvous the same team at region entry/exit, but the validator is
/// the portability contract, so it takes the spec-faithful view.)
pub(crate) fn contains_team_sync(cs: &[Construct]) -> bool {
    cs.iter().any(|c| match c {
        Construct::Barrier
        | Construct::Single { .. }
        | Construct::Reduction { .. }
        | Construct::Tasks { .. } => true,
        Construct::ParallelFor { nowait, .. } => !nowait,
        Construct::Repeat { body, .. } | Construct::Locked { body, .. } => {
            contains_team_sync(body)
        }
        _ => false,
    })
}

/// Push an `InvalidWork` finding if `v` is negative or non-finite.
fn check_work(diags: &mut Vec<Diagnostic>, span: &Span, construct: &'static str, v: f64) {
    if !(v.is_finite() && v >= 0.0) {
        diags.push(Diagnostic::because(
            DiagCode::InvalidWork,
            span.clone(),
            format!("{construct} has a negative or non-finite work parameter ({v})"),
            RegionError::InvalidWork { construct },
        ));
    }
}

/// Pass 1: structural defects and the team-divergence (repeated-nowait)
/// invariant. Mirrors the historical `validate_block` walk — same
/// per-construct check order, same block-local mark discipline — but
/// collects findings instead of early-returning.
fn structural(cs: &[Construct], span: &Span, diags: &mut Vec<Diagnostic>) {
    // Marker ids currently open in *this* block; pairs must balance
    // block-locally so every repetition of a block emits complete
    // begin/end pairs.
    let mut open: Vec<u32> = Vec::new();
    for (i, c) in cs.iter().enumerate() {
        let sp = span.child(i, c.kind_name());
        match c {
            Construct::DelayUs(us) => check_work(diags, &sp, "DelayUs", *us),
            Construct::Compute { cycles, .. } => check_work(diags, &sp, "Compute", *cycles),
            Construct::StreamBytes(b) => check_work(diags, &sp, "StreamBytes", *b),
            Construct::ParallelFor {
                schedule,
                total_iters,
                body_us,
                ordered_us,
                ..
            } => {
                if *total_iters == 0 {
                    diags.push(Diagnostic::because(
                        DiagCode::ZeroIterationLoop,
                        sp.clone(),
                        "work-shared loop with 0 iterations".into(),
                        RegionError::ZeroIterationLoop,
                    ));
                }
                let chunk = match schedule {
                    Schedule::Static { chunk } | Schedule::Dynamic { chunk } => *chunk,
                    Schedule::Guided { min_chunk } => *min_chunk,
                };
                if chunk == 0 {
                    diags.push(Diagnostic::because(
                        DiagCode::ZeroChunk,
                        sp.clone(),
                        "schedule with chunk size 0".into(),
                        RegionError::ZeroChunk,
                    ));
                }
                check_work(diags, &sp, "ParallelFor body", *body_us);
                if let Some(o) = ordered_us {
                    check_work(diags, &sp, "ordered section", *o);
                }
            }
            Construct::Critical { body_us } => check_work(diags, &sp, "Critical", *body_us),
            Construct::LockUnlock { body_us } => check_work(diags, &sp, "LockUnlock", *body_us),
            Construct::Single { body_us } => check_work(diags, &sp, "Single", *body_us),
            Construct::Reduction { body_us } => check_work(diags, &sp, "Reduction", *body_us),
            Construct::Tasks { body_us, .. } => check_work(diags, &sp, "Tasks body", *body_us),
            Construct::Barrier | Construct::Atomic => {}
            Construct::MarkBegin(id) => {
                if open.contains(id) {
                    diags.push(Diagnostic::because(
                        DiagCode::UnmatchedMark,
                        sp.clone(),
                        format!("interval {id} re-begun while already open"),
                        RegionError::UnmatchedMark { id: *id },
                    ));
                } else {
                    open.push(*id);
                }
            }
            Construct::MarkEnd(id) => match open.iter().position(|k| k == id) {
                Some(pos) => {
                    open.remove(pos);
                }
                None => diags.push(Diagnostic::because(
                    DiagCode::UnmatchedMark,
                    sp.clone(),
                    format!("MarkEnd({id}) without a matching open MarkBegin in this block"),
                    RegionError::UnmatchedMark { id: *id },
                )),
            },
            Construct::ParallelRegion { body } | Construct::Locked { body, .. } => {
                structural(body, &sp, diags);
            }
            Construct::Repeat { count, body } => {
                if *count == 0 {
                    diags.push(Diagnostic::because(
                        DiagCode::ZeroCountRepeat,
                        sp.clone(),
                        "Repeat with count 0".into(),
                        RegionError::ZeroCountRepeat,
                    ));
                }
                structural(body, &sp, diags);
                if *count > 1 && contains_nowait(body) && !contains_team_sync(body) {
                    diags.push(Diagnostic::because(
                        DiagCode::RepeatedNowaitLoop,
                        sp.clone(),
                        format!(
                            "body repeated ×{count} contains a nowait loop but no full-team \
                             synchronization: straggler iterations of one pass overlap the next, \
                             corrupting the loop's generation tracking"
                        ),
                        RegionError::RepeatedNowaitLoop,
                    ));
                }
            }
        }
    }
    if let Some(id) = open.first() {
        diags.push(Diagnostic::because(
            DiagCode::UnmatchedMark,
            span.clone(),
            format!("interval {id} still open at end of block"),
            RegionError::UnmatchedMark { id: *id },
        ));
    }
}

/// An open nowait window: a work-shared loop whose stragglers may still
/// be executing because the implicit end-of-loop barrier was skipped.
struct Window {
    span: Span,
}

/// Pass 2: phase partitioning. Walks the sequence tracking open nowait
/// windows; team synchronizations close them, shared-effect constructs
/// overlapping one are flagged `Warn`, and windows surviving to region
/// end get an `Info` note.
fn nowait_windows(spec: &RegionSpec, diags: &mut Vec<Diagnostic>) {
    let mut open: Vec<Window> = Vec::new();
    scan_windows(&spec.constructs, &Span::root(), &mut open, diags);
    for w in open {
        diags.push(Diagnostic::new(
            DiagCode::NowaitLeftOpen,
            w.span,
            "nowait window still open at region end; only the implicit region join closes it"
                .into(),
        ));
    }
}

/// Flag `what` at `sp` as overlapping the most recently opened window.
fn overlap(diags: &mut Vec<Diagnostic>, sp: &Span, what: &str, open: &[Window]) {
    if let Some(w) = open.last() {
        diags.push(Diagnostic::new(
            DiagCode::NowaitOverlap,
            sp.clone(),
            format!(
                "{what} may overlap straggler iterations of the nowait loop at {}",
                w.span
            ),
        ));
    }
}

fn scan_windows(
    cs: &[Construct],
    span: &Span,
    open: &mut Vec<Window>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, c) in cs.iter().enumerate() {
        let sp = span.child(i, c.kind_name());
        match c {
            Construct::ParallelFor { nowait, .. } => {
                overlap(diags, &sp, "a second work-shared loop", open);
                if *nowait {
                    open.push(Window { span: sp });
                } else {
                    // The implicit end-of-loop barrier is a full-team
                    // rendezvous: every straggler has finished.
                    open.clear();
                }
            }
            Construct::Barrier => open.clear(),
            Construct::Single { .. } => {
                overlap(diags, &sp, "the single body", open);
                open.clear();
            }
            Construct::Reduction { .. } => {
                overlap(diags, &sp, "the reduction combine", open);
                open.clear();
            }
            Construct::Tasks { .. } => {
                overlap(diags, &sp, "task execution", open);
                open.clear();
            }
            Construct::Critical { .. } => overlap(diags, &sp, "the critical section", open),
            Construct::LockUnlock { .. } => overlap(diags, &sp, "the locked section", open),
            Construct::Atomic => overlap(diags, &sp, "the atomic update", open),
            Construct::Locked { body, .. } => {
                overlap(diags, &sp, "the locked scope", open);
                scan_windows(body, &sp, open, diags);
            }
            Construct::Repeat { body, .. } => scan_windows(body, &sp, open, diags),
            Construct::ParallelRegion { body } => {
                // A nested region forks its own team: its windows close
                // at its own join, and it neither closes nor extends the
                // outer team's windows.
                let mut inner: Vec<Window> = Vec::new();
                scan_windows(body, &sp, &mut inner, diags);
            }
            Construct::DelayUs(_)
            | Construct::Compute { .. }
            | Construct::StreamBytes(_)
            | Construct::MarkBegin(_)
            | Construct::MarkEnd(_) => {}
        }
    }
}

/// Pass 3: may-deadlock. Walks `Locked` nesting maintaining the
/// held-lock stack, then runs cycle detection over the acquisition-order
/// graph. An acyclic graph means lock acquisition follows a partial
/// order, which is deadlock-free; a cycle is the classic AB/BA hazard.
fn locks(spec: &RegionSpec, diags: &mut Vec<Diagnostic>) {
    let mut held: Vec<u32> = Vec::new();
    let mut graph: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    lock_walk(&spec.constructs, &Span::root(), &mut held, &mut graph, diags);
    if let Some(cycle) = find_cycle(&graph) {
        let path = cycle
            .iter()
            .map(|l| format!("lock {l}"))
            .collect::<Vec<_>>()
            .join(" → ");
        diags.push(Diagnostic::new(
            DiagCode::LockCycle,
            Span::root(),
            format!("lock acquisition order forms a cycle ({path}): concurrent threads taking different branches of the cycle may deadlock"),
        ));
    }
}

fn lock_walk(
    cs: &[Construct],
    span: &Span,
    held: &mut Vec<u32>,
    graph: &mut BTreeMap<u32, BTreeSet<u32>>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, c) in cs.iter().enumerate() {
        let sp = span.child(i, c.kind_name());
        match c {
            Construct::Locked { lock, body } => {
                if held.contains(lock) {
                    diags.push(Diagnostic::because(
                        DiagCode::SelfNestedLock,
                        sp.clone(),
                        format!("lock {lock} is acquired while already held: guaranteed self-deadlock"),
                        RegionError::SelfNestedLock { lock: *lock },
                    ));
                } else {
                    for &h in held.iter() {
                        graph.entry(h).or_default().insert(*lock);
                    }
                }
                held.push(*lock);
                lock_walk(body, &sp, held, graph, diags);
                held.pop();
            }
            Construct::Barrier
            | Construct::Single { .. }
            | Construct::Reduction { .. }
            | Construct::Tasks { .. }
                if !held.is_empty() =>
            {
                diags.push(Diagnostic::because(
                    DiagCode::SyncUnderLock,
                    sp.clone(),
                    format!(
                        "{} synchronizes the team while lock {} is held: threads blocked on the \
                         lock can never reach the rendezvous",
                        c.kind_name(),
                        held.last().expect("held is non-empty"),
                    ),
                    RegionError::SyncUnderLock {
                        construct: c.kind_name(),
                    },
                ));
            }
            Construct::ParallelRegion { body } => {
                if !held.is_empty() {
                    diags.push(Diagnostic::because(
                        DiagCode::SyncUnderLock,
                        sp.clone(),
                        format!(
                            "ParallelRegion forks and joins while lock {} is held",
                            held.last().expect("held is non-empty"),
                        ),
                        RegionError::SyncUnderLock {
                            construct: "ParallelRegion",
                        },
                    ));
                }
                lock_walk(body, &sp, held, graph, diags);
            }
            Construct::ParallelFor {
                nowait, ordered_us, ..
            } if !held.is_empty() => {
                if !*nowait {
                    diags.push(Diagnostic::because(
                        DiagCode::SyncUnderLock,
                        sp.clone(),
                        format!(
                            "the implicit end-of-loop barrier rendezvouses the team while lock \
                             {} is held",
                            held.last().expect("held is non-empty"),
                        ),
                        RegionError::SyncUnderLock {
                            construct: "ParallelFor",
                        },
                    ));
                } else if ordered_us.is_some() {
                    diags.push(Diagnostic::new(
                        DiagCode::OrderedUnderLock,
                        sp.clone(),
                        "ordered nowait loop under a held lock: ordered tickets owned by threads \
                         blocked on the lock may never retire"
                            .into(),
                    ));
                } else {
                    diags.push(Diagnostic::new(
                        DiagCode::WorkshareUnderLock,
                        sp.clone(),
                        "nowait workshare under a held lock: only the lock holder makes progress, \
                         serializing the loop"
                            .into(),
                    ));
                }
            }
            Construct::Repeat { body, .. } => lock_walk(body, &sp, held, graph, diags),
            _ => {}
        }
    }
}

/// Find a cycle in the acquisition-order graph (deterministic DFS over
/// the BTree ordering). Returns the cycle's node path, first node
/// repeated at the end.
fn find_cycle(graph: &BTreeMap<u32, BTreeSet<u32>>) -> Option<Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    fn dfs(
        v: u32,
        graph: &BTreeMap<u32, BTreeSet<u32>>,
        color: &mut BTreeMap<u32, Color>,
        stack: &mut Vec<u32>,
    ) -> Option<Vec<u32>> {
        color.insert(v, Color::Gray);
        stack.push(v);
        if let Some(succ) = graph.get(&v) {
            for &w in succ {
                match color.get(&w).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let start = stack
                            .iter()
                            .position(|&x| x == w)
                            .expect("gray node is on the stack");
                        let mut cycle = stack[start..].to_vec();
                        cycle.push(w);
                        return Some(cycle);
                    }
                    Color::White => {
                        if let Some(cy) = dfs(w, graph, color, stack) {
                            return Some(cy);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(v, Color::Black);
        None
    }
    let mut color: BTreeMap<u32, Color> = BTreeMap::new();
    let mut stack: Vec<u32> = Vec::new();
    for &v in graph.keys() {
        if color.get(&v).copied().unwrap_or(Color::White) == Color::White {
            if let Some(cy) = dfs(v, graph, &mut color, &mut stack) {
                return Some(cy);
            }
        }
    }
    None
}

/// Pass 4: cost advisory. Flags regions whose statically predicted
/// serialized work exceeds the parallelizable work — their variability
/// is a property of contention, not the runtime under study.
fn serial_bottleneck(spec: &RegionSpec, diags: &mut Vec<Diagnostic>) {
    if spec.n_threads < 2 {
        return;
    }
    let m = predict::cost(spec);
    if m.serialized_us > m.parallel_us && m.serialized_us > 0.0 {
        diags.push(Diagnostic::new(
            DiagCode::SerialBottleneck,
            Span::root(),
            format!(
                "predicted serialized work ({:.2} µs) exceeds parallelizable work ({:.2} µs) \
                 for {} threads: contention will dominate variability",
                m.serialized_us, m.parallel_us, spec.n_threads
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn spec(n: usize, cs: Vec<Construct>) -> RegionSpec {
        RegionSpec {
            n_threads: n,
            constructs: cs,
        }
    }

    fn codes(n: usize, cs: Vec<Construct>) -> BTreeSet<DiagCode> {
        analyze(&spec(n, cs)).diagnostics.iter().map(|d| d.code).collect()
    }

    fn nowait_loop() -> Construct {
        Construct::ParallelFor {
            schedule: Schedule::Dynamic { chunk: 1 },
            total_iters: 8,
            body_us: 0.1,
            ordered_us: None,
            nowait: true,
        }
    }

    fn plain_loop() -> Construct {
        Construct::ParallelFor {
            schedule: Schedule::Static { chunk: 1 },
            total_iters: 8,
            body_us: 0.1,
            ordered_us: None,
            nowait: false,
        }
    }

    /// A busy but hazard-free program: the clean negative shared by the
    /// per-code tests below.
    fn clean_program() -> RegionSpec {
        spec(
            2,
            vec![
                Construct::Barrier,
                Construct::MarkBegin(0),
                Construct::Repeat {
                    count: 3,
                    body: vec![plain_loop(), Construct::DelayUs(5.0)],
                },
                Construct::MarkEnd(0),
                Construct::ParallelRegion {
                    body: vec![Construct::DelayUs(1.0)],
                },
            ],
        )
    }

    #[test]
    fn clean_program_is_clean() {
        let a = analyze(&clean_program());
        assert!(a.is_clean(), "{}", a.render());
        assert_eq!(a.render(), "clean");
        assert!(clean_program().validate().is_ok());
    }

    // One positive test per diagnostic code (the clean negative above
    // covers the "absent on a clean program" half for all of them).

    #[test]
    fn ompv001_zero_threads() {
        assert!(codes(0, vec![]).contains(&DiagCode::ZeroThreads));
        assert!(!codes(1, vec![]).contains(&DiagCode::ZeroThreads));
    }

    #[test]
    fn ompv002_zero_count_repeat() {
        let c = codes(2, vec![Construct::Repeat { count: 0, body: vec![] }]);
        assert!(c.contains(&DiagCode::ZeroCountRepeat));
        let c = codes(2, vec![Construct::Repeat { count: 1, body: vec![] }]);
        assert!(!c.contains(&DiagCode::ZeroCountRepeat));
    }

    #[test]
    fn ompv003_zero_iteration_loop() {
        let zero = Construct::ParallelFor {
            schedule: Schedule::Static { chunk: 1 },
            total_iters: 0,
            body_us: 0.1,
            ordered_us: None,
            nowait: false,
        };
        assert!(codes(2, vec![zero]).contains(&DiagCode::ZeroIterationLoop));
        assert!(!codes(2, vec![plain_loop()]).contains(&DiagCode::ZeroIterationLoop));
    }

    #[test]
    fn ompv004_zero_chunk() {
        let zero = Construct::ParallelFor {
            schedule: Schedule::Guided { min_chunk: 0 },
            total_iters: 4,
            body_us: 0.1,
            ordered_us: None,
            nowait: false,
        };
        assert!(codes(2, vec![zero]).contains(&DiagCode::ZeroChunk));
        assert!(!codes(2, vec![plain_loop()]).contains(&DiagCode::ZeroChunk));
    }

    #[test]
    fn ompv005_invalid_work() {
        assert!(codes(2, vec![Construct::DelayUs(-1.0)]).contains(&DiagCode::InvalidWork));
        assert!(
            codes(2, vec![Construct::Single { body_us: f64::INFINITY }])
                .contains(&DiagCode::InvalidWork)
        );
        assert!(!codes(2, vec![Construct::DelayUs(1.0)]).contains(&DiagCode::InvalidWork));
    }

    #[test]
    fn ompv006_unmatched_mark() {
        assert!(codes(2, vec![Construct::MarkBegin(7)]).contains(&DiagCode::UnmatchedMark));
        assert!(codes(2, vec![Construct::MarkEnd(7)]).contains(&DiagCode::UnmatchedMark));
        let balanced = vec![Construct::MarkBegin(7), Construct::MarkEnd(7)];
        assert!(!codes(2, balanced).contains(&DiagCode::UnmatchedMark));
    }

    #[test]
    fn ompv101_repeated_nowait_loop() {
        let bad = vec![Construct::Repeat {
            count: 2,
            body: vec![nowait_loop()],
        }];
        assert!(codes(2, bad).contains(&DiagCode::RepeatedNowaitLoop));
        let good = vec![Construct::Repeat {
            count: 2,
            body: vec![nowait_loop(), Construct::Barrier],
        }];
        assert!(!codes(2, good).contains(&DiagCode::RepeatedNowaitLoop));
    }

    #[test]
    fn ompv102_nowait_overlap() {
        // A critical section while stragglers of the nowait loop may
        // still be running.
        let hazard = vec![nowait_loop(), Construct::Critical { body_us: 0.1 }];
        let a = analyze(&spec(2, hazard));
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::NowaitOverlap)
            .expect("overlap flagged");
        assert_eq!(d.severity(), Severity::Warn);
        assert!(d.message.contains("constructs[0].ParallelFor"), "{}", d.message);
        // A barrier between them closes the window.
        let safe = vec![
            nowait_loop(),
            Construct::Barrier,
            Construct::Critical { body_us: 0.1 },
        ];
        assert!(!codes(2, safe).contains(&DiagCode::NowaitOverlap));
    }

    #[test]
    fn ompv102_overlap_is_seen_through_repeat_bodies() {
        // The window opens inside one construct and the overlap happens
        // in a sibling: phase state flows across block boundaries.
        let hazard = vec![
            Construct::Repeat {
                count: 1,
                body: vec![nowait_loop()],
            },
            Construct::Single { body_us: 0.1 },
        ];
        assert!(codes(2, hazard).contains(&DiagCode::NowaitOverlap));
    }

    #[test]
    fn ompv103_nowait_left_open() {
        let open = vec![nowait_loop()];
        let a = analyze(&spec(2, open));
        assert!(a.diagnostics.iter().any(|d| d.code == DiagCode::NowaitLeftOpen));
        // The same loop followed by a barrier leaves nothing open.
        let closed = vec![nowait_loop(), Construct::Barrier];
        assert!(!codes(2, closed).contains(&DiagCode::NowaitLeftOpen));
        // A nested region's join closes its own windows.
        let nested = vec![
            Construct::ParallelRegion {
                body: vec![nowait_loop()],
            },
        ];
        assert!(!codes(2, nested).contains(&DiagCode::NowaitLeftOpen));
    }

    #[test]
    fn ompv104_self_nested_lock() {
        let bad = vec![Construct::Locked {
            lock: 2,
            body: vec![Construct::Locked {
                lock: 2,
                body: vec![],
            }],
        }];
        assert!(codes(2, bad).contains(&DiagCode::SelfNestedLock));
        let good = vec![Construct::Locked {
            lock: 2,
            body: vec![Construct::Locked {
                lock: 3,
                body: vec![],
            }],
        }];
        assert!(!codes(2, good).contains(&DiagCode::SelfNestedLock));
    }

    #[test]
    fn ompv105_sync_under_lock() {
        for sync in [
            Construct::Barrier,
            Construct::Single { body_us: 0.1 },
            Construct::Reduction { body_us: 0.1 },
            Construct::Tasks {
                per_spawner: 1,
                body_us: 0.1,
                master_only: false,
            },
            Construct::ParallelRegion { body: vec![] },
            plain_loop(),
        ] {
            let bad = vec![Construct::Locked {
                lock: 0,
                body: vec![sync.clone()],
            }];
            assert!(
                codes(2, bad).contains(&DiagCode::SyncUnderLock),
                "{} under lock must be flagged",
                sync.kind_name()
            );
        }
        let good = vec![Construct::Locked {
            lock: 0,
            body: vec![Construct::DelayUs(0.1), Construct::Atomic],
        }];
        assert!(!codes(2, good).contains(&DiagCode::SyncUnderLock));
    }

    #[test]
    fn ompv110_lock_cycle() {
        // AB in one arm, BA in a later arm: same SPMD program, but
        // threads can interleave the two Locked chains.
        let ab_ba = vec![
            Construct::Locked {
                lock: 0,
                body: vec![Construct::Locked {
                    lock: 1,
                    body: vec![Construct::DelayUs(0.1)],
                }],
            },
            Construct::Locked {
                lock: 1,
                body: vec![Construct::Locked {
                    lock: 0,
                    body: vec![Construct::DelayUs(0.1)],
                }],
            },
        ];
        let a = analyze(&spec(2, ab_ba.clone()));
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::LockCycle)
            .expect("cycle flagged");
        assert_eq!(d.severity(), Severity::Warn);
        assert!(a.may_deadlock());
        // Warn-level: still validates (it *may* run fine).
        assert!(spec(2, ab_ba).validate().is_ok());
        // Consistent AB ... AB order is acyclic, hence clean.
        let ab_ab = vec![
            Construct::Locked {
                lock: 0,
                body: vec![Construct::Locked {
                    lock: 1,
                    body: vec![Construct::DelayUs(0.1)],
                }],
            },
            Construct::Locked {
                lock: 0,
                body: vec![Construct::Locked {
                    lock: 1,
                    body: vec![Construct::DelayUs(0.1)],
                }],
            },
        ];
        assert!(!codes(2, ab_ab).contains(&DiagCode::LockCycle));
    }

    #[test]
    fn ompv111_ordered_under_lock() {
        let ordered_nowait = Construct::ParallelFor {
            schedule: Schedule::Dynamic { chunk: 1 },
            total_iters: 4,
            body_us: 0.1,
            ordered_us: Some(0.05),
            nowait: true,
        };
        let bad = vec![Construct::Locked {
            lock: 0,
            body: vec![ordered_nowait],
        }];
        let c = codes(2, bad);
        assert!(c.contains(&DiagCode::OrderedUnderLock));
        let good = vec![Construct::Locked {
            lock: 0,
            body: vec![nowait_loop()],
        }];
        assert!(!codes(2, good).contains(&DiagCode::OrderedUnderLock));
    }

    #[test]
    fn ompv112_workshare_under_lock() {
        let bad = vec![Construct::Locked {
            lock: 0,
            body: vec![nowait_loop()],
        }];
        let a = analyze(&spec(2, bad));
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::WorkshareUnderLock)
            .expect("flagged");
        assert_eq!(d.severity(), Severity::Info);
        // Info-level: not part of the verdict.
        assert!(!a.verdict().contains(&DiagCode::WorkshareUnderLock));
        assert!(!codes(2, vec![nowait_loop(), Construct::Barrier])
            .contains(&DiagCode::WorkshareUnderLock));
    }

    #[test]
    fn ompv201_serial_bottleneck() {
        // All the work is a critical section: fully serialized.
        let serial = vec![Construct::Critical { body_us: 10.0 }];
        assert!(codes(4, serial.clone()).contains(&DiagCode::SerialBottleneck));
        // The same region on one thread has no contention to flag.
        assert!(!codes(1, serial).contains(&DiagCode::SerialBottleneck));
        // Dominated by parallel work: clean.
        let parallel = vec![
            Construct::DelayUs(100.0),
            Construct::Critical { body_us: 0.1 },
        ];
        assert!(!codes(4, parallel).contains(&DiagCode::SerialBottleneck));
    }

    #[test]
    fn error_diagnostics_carry_their_region_error() {
        for cs in [
            vec![Construct::Repeat { count: 0, body: vec![] }],
            vec![Construct::MarkBegin(1)],
            vec![Construct::Locked {
                lock: 0,
                body: vec![Construct::Barrier],
            }],
        ] {
            let a = analyze(&spec(2, cs));
            let first = a.first_error().expect("error present");
            assert!(first.cause.is_some(), "{}", first.render());
            // And every error-severity finding, not just the first.
            for d in &a.diagnostics {
                assert_eq!(
                    d.cause.is_some(),
                    d.severity() == Severity::Error,
                    "{}",
                    d.render()
                );
            }
        }
    }

    #[test]
    fn analyze_collects_multiple_findings_in_one_call() {
        let a = analyze(&spec(
            2,
            vec![
                Construct::DelayUs(-1.0),
                nowait_loop(),
                Construct::Critical { body_us: 0.1 },
            ],
        ));
        let c: BTreeSet<DiagCode> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(c.contains(&DiagCode::InvalidWork));
        assert!(c.contains(&DiagCode::NowaitOverlap));
        assert!(c.contains(&DiagCode::NowaitLeftOpen));
        // validate() surfaces the *first* error in pass order.
        assert_eq!(
            spec(2, vec![Construct::DelayUs(-1.0), Construct::MarkEnd(0)]).validate(),
            Err(RegionError::InvalidWork { construct: "DelayUs" })
        );
    }

    #[test]
    fn spans_address_nested_constructs() {
        let a = analyze(&spec(
            2,
            vec![Construct::Repeat {
                count: 1,
                body: vec![Construct::DelayUs(f64::NAN)],
            }],
        ));
        let d = &a.diagnostics[0];
        assert_eq!(d.span.to_string(), "constructs[0].Repeat.body[0].DelayUs");
    }
}
