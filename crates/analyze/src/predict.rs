//! Static effect and cost prediction.
//!
//! Two predictions are computed from the construct tree alone:
//!
//! * [`effects`] — the exact [`SemanticEffects`] counters any correct
//!   execution must produce (iteration totals, barrier arrivals, lock
//!   entries, …). This subsumes the runtime's historical
//!   `expected_effects` and is the single source of truth the
//!   differential-fuzzing oracles compare both backends against.
//! * [`cost`] — a coarse [`CostModel`] splitting the region's nominal
//!   work into *parallelizable* elapsed time and *serialized* time
//!   (critical sections, ordered sections, single bodies, reduction
//!   combines, work under a held lock). The analyzer's
//!   `serial-bottleneck` advisory compares the two.
//!
//! The cost model is deliberately nominal: it prices work at the
//! calibration frequency ([`NOMINAL_GHZ`]) and ignores scheduling,
//! contention and machine noise — those are exactly what the
//! experiments *measure*; the model only has to rank serialized against
//! parallel work on the same scale.

use crate::region::{Construct, RegionSpec};
use ompvar_sim::trace::SemanticEffects;

/// Nominal frequency (GHz) used to price `Compute` cycles in µs; the
/// native backend calibrates its delay loop around the same figure.
pub const NOMINAL_GHZ: f64 = 3.0;

/// Nominal streaming bandwidth used to price `StreamBytes` (bytes/µs).
pub const STREAM_BYTES_PER_US: f64 = 1e4;

/// Nominal duration of one reduction combine (µs).
pub const COMBINE_US: f64 = 0.05;

/// Nominal duration of one atomic update (µs).
pub const ATOMIC_US: f64 = 0.01;

/// The semantic effects a correct execution of `spec` must produce.
/// Effects are schedule-independent, so the one prediction applies to
/// both backends.
pub fn effects(spec: &RegionSpec) -> SemanticEffects {
    let mut fx = SemanticEffects::default();
    effects_block(&spec.constructs, spec.n_threads as u64, 1, &mut fx);
    fx
}

fn effects_block(cs: &[Construct], n: u64, mult: u64, fx: &mut SemanticEffects) {
    for c in cs {
        match c {
            Construct::ParallelFor {
                total_iters,
                ordered_us,
                nowait,
                ..
            } => {
                fx.loop_iters += total_iters * mult;
                fx.loop_passes += mult;
                if ordered_us.is_some() {
                    fx.ordered_entries += total_iters * mult;
                }
                if !nowait {
                    fx.barrier_arrivals += n * mult;
                }
            }
            Construct::Barrier => fx.barrier_arrivals += n * mult,
            Construct::Critical { .. } | Construct::LockUnlock { .. } => {
                fx.lock_entries += n * mult;
            }
            Construct::Locked { body, .. } => {
                fx.lock_entries += n * mult;
                effects_block(body, n, mult, fx);
            }
            Construct::Atomic => fx.atomic_ops += n * mult,
            Construct::Single { .. } => {
                fx.single_entries += n * mult;
                fx.single_winners += mult;
                fx.barrier_arrivals += n * mult;
            }
            Construct::Reduction { .. } => {
                fx.reduction_combines += n * mult;
                fx.barrier_arrivals += n * mult;
            }
            Construct::Tasks {
                per_spawner,
                master_only,
                ..
            } => {
                let spawners = if *master_only { 1 } else { n };
                fx.tasks_spawned += spawners * u64::from(*per_spawner) * mult;
                fx.tasks_executed += spawners * u64::from(*per_spawner) * mult;
                // Post-spawn and final barriers.
                fx.barrier_arrivals += 2 * n * mult;
            }
            Construct::ParallelRegion { body } => {
                // Entry and exit barriers.
                fx.barrier_arrivals += 2 * n * mult;
                effects_block(body, n, mult, fx);
            }
            Construct::Repeat { count, body } => {
                effects_block(body, n, mult * u64::from(*count), fx);
            }
            Construct::DelayUs(_)
            | Construct::Compute { .. }
            | Construct::StreamBytes(_)
            | Construct::MarkBegin(_)
            | Construct::MarkEnd(_) => {}
        }
    }
}

/// Coarse static cost split of a region's nominal work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostModel {
    /// Elapsed µs of work the team performs concurrently.
    pub parallel_us: f64,
    /// Elapsed µs of work that only one thread at a time can perform
    /// (critical/locked/ordered/single bodies, reduction combines).
    pub serialized_us: f64,
    /// Full-team synchronization points (barriers, loop joins, …).
    pub team_syncs: u64,
    /// Total lock acquisitions across the team.
    pub lock_acquires: u64,
}

/// Predict the cost split for `spec`.
pub fn cost(spec: &RegionSpec) -> CostModel {
    let mut m = CostModel::default();
    cost_block(
        &spec.constructs,
        spec.n_threads.max(1) as f64,
        1.0,
        false,
        &mut m,
    );
    m
}

fn cost_block(cs: &[Construct], n: f64, mult: f64, under_lock: bool, m: &mut CostModel) {
    // Per-thread concurrent work: elapsed time if run free, serialized
    // n-fold if performed while holding a lock.
    let spmd_work = |m: &mut CostModel, us: f64| {
        if under_lock {
            m.serialized_us += us * n * mult;
        } else {
            m.parallel_us += us * mult;
        }
    };
    for c in cs {
        match c {
            Construct::DelayUs(us) => spmd_work(m, *us),
            Construct::Compute { cycles, .. } => spmd_work(m, cycles / (1e3 * NOMINAL_GHZ)),
            Construct::StreamBytes(b) => spmd_work(m, b / STREAM_BYTES_PER_US),
            Construct::ParallelFor {
                total_iters,
                body_us,
                ordered_us,
                nowait,
                ..
            } => {
                let iters = *total_iters as f64;
                if under_lock {
                    // Only the lock holder makes progress.
                    m.serialized_us += iters * body_us * mult;
                } else {
                    m.parallel_us += iters * body_us / n * mult;
                }
                if let Some(o) = ordered_us {
                    m.serialized_us += iters * o * mult;
                }
                if !nowait {
                    m.team_syncs += mult as u64;
                }
            }
            Construct::Barrier => m.team_syncs += mult as u64,
            Construct::Critical { body_us } | Construct::LockUnlock { body_us } => {
                m.serialized_us += body_us * n * mult;
                m.lock_acquires += (n * mult) as u64;
            }
            Construct::Locked { body, .. } => {
                m.lock_acquires += (n * mult) as u64;
                cost_block(body, n, mult, true, m);
            }
            Construct::Atomic => m.serialized_us += ATOMIC_US * n * mult,
            Construct::Single { body_us } => {
                m.serialized_us += body_us * mult;
                m.team_syncs += mult as u64;
            }
            Construct::Reduction { body_us } => {
                spmd_work(m, *body_us);
                m.serialized_us += COMBINE_US * n * mult;
                m.team_syncs += mult as u64;
                m.lock_acquires += (n * mult) as u64;
            }
            Construct::Tasks {
                per_spawner,
                body_us,
                master_only,
            } => {
                let spawners = if *master_only { 1.0 } else { n };
                m.parallel_us += spawners * f64::from(*per_spawner) * body_us / n * mult;
                m.team_syncs += 2 * mult as u64;
            }
            Construct::ParallelRegion { body } => {
                m.team_syncs += 2 * mult as u64;
                cost_block(body, n, mult, under_lock, m);
            }
            Construct::Repeat { count, body } => {
                cost_block(body, n, mult * f64::from(*count), under_lock, m);
            }
            Construct::MarkBegin(_) | Construct::MarkEnd(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Schedule;

    #[test]
    fn cost_splits_serialized_from_parallel() {
        let m = cost(&RegionSpec {
            n_threads: 4,
            constructs: vec![
                Construct::DelayUs(10.0),
                Construct::Critical { body_us: 1.0 },
                Construct::Barrier,
            ],
        });
        assert_eq!(m.parallel_us, 10.0);
        assert_eq!(m.serialized_us, 4.0);
        assert_eq!(m.team_syncs, 1);
        assert_eq!(m.lock_acquires, 4);
    }

    #[test]
    fn cost_scales_with_repeat_and_divides_loop_work() {
        let m = cost(&RegionSpec {
            n_threads: 2,
            constructs: vec![Construct::Repeat {
                count: 5,
                body: vec![Construct::ParallelFor {
                    schedule: Schedule::Static { chunk: 1 },
                    total_iters: 8,
                    body_us: 1.0,
                    ordered_us: Some(0.5),
                    nowait: false,
                }],
            }],
        });
        // 8 iters × 1 µs / 2 threads × 5 reps.
        assert_eq!(m.parallel_us, 20.0);
        // Ordered sections serialize: 8 × 0.5 × 5.
        assert_eq!(m.serialized_us, 20.0);
        assert_eq!(m.team_syncs, 5);
    }

    #[test]
    fn work_under_a_held_lock_is_serialized() {
        let free = cost(&RegionSpec {
            n_threads: 4,
            constructs: vec![Construct::DelayUs(1.0)],
        });
        assert_eq!(free.serialized_us, 0.0);
        let held = cost(&RegionSpec {
            n_threads: 4,
            constructs: vec![Construct::Locked {
                lock: 0,
                body: vec![Construct::DelayUs(1.0)],
            }],
        });
        assert_eq!(held.parallel_us, 0.0);
        assert_eq!(held.serialized_us, 4.0);
        assert_eq!(held.lock_acquires, 4);
    }
}
