//! Figure 5 kernel: syncbench barrier under ST vs MT placement,
//! simulated Dardel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::EpccConfig;
use ompvar_harness::Platform;
use ompvar_rt::runner::RegionRunner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = EpccConfig::syncbench_default().fast(10);
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Barrier, 32, 16);
    let mut g = c.benchmark_group("fig5_smt_syncbench32");
    for (label, rt) in [
        ("ST", Platform::Dardel.pinned_rt(32)),
        ("MT", Platform::Dardel.pinned_mt_rt(32)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(rt.run_region(&region, seed).expect("bench region completes").wall_us)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
