//! Figure 1 kernel: syncbench reduction at increasing thread counts on
//! simulated Dardel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::EpccConfig;
use ompvar_harness::Platform;
use ompvar_rt::runner::RegionRunner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = EpccConfig::syncbench_default().fast(5);
    let mut g = c.benchmark_group("fig1_syncbench_reduction");
    for threads in [4usize, 32, 128, 254] {
        let rt = Platform::Dardel.pinned_rt(threads);
        let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, threads, 10);
        g.throughput(Throughput::Elements(threads as u64));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(rt.run_region(&region, seed).expect("bench region completes").wall_us)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
