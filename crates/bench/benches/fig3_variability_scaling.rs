//! Figure 3 kernel: the variability-envelope computation for one
//! benchmark/platform cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_harness::fig3::{envelope, Bench};
use ompvar_harness::{ExpOptions, Platform};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let opts = ExpOptions::fast();
    let mut g = c.benchmark_group("fig3_envelope");
    g.sample_size(10);
    for bench in [Bench::Sync, Bench::Stream] {
        g.bench_with_input(
            BenchmarkId::new("vera30", bench.label()),
            &bench,
            |b, &bench| b.iter(|| black_box(envelope(&opts, Platform::Vera, bench, 30).hi)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
