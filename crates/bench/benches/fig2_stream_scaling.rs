//! Figure 2 kernel: BabelStream at increasing thread counts on simulated
//! Dardel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_bench_stream::kernels::StreamConfig;
use ompvar_harness::Platform;
use ompvar_rt::runner::RegionRunner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = StreamConfig {
        iterations: 10,
        ..StreamConfig::default()
    };
    let mut g = c.benchmark_group("fig2_babelstream");
    for threads in [2usize, 16, 128, 254] {
        let rt = Platform::Dardel.pinned_rt(threads);
        let region = ompvar_bench_stream::region(&cfg, threads);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(rt.run_region(&region, seed).expect("bench region completes").wall_us)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
