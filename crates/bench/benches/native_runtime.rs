//! Native-runtime micro-benchmarks: the real-thread cost of this crate's
//! own synchronization primitives on the host machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_rt::native::barrier::SenseBarrier;
use ompvar_rt::native::delay;
use ompvar_rt::native::workshare::{LoopCursor, NativeLoop};
use ompvar_rt::region::Schedule;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Single-thread barrier round (the uncontended fast path).
    c.bench_function("native/barrier_single_thread", |b| {
        let bar = SenseBarrier::new(1);
        let mut sense = false;
        b.iter(|| bar.wait(black_box(&mut sense)))
    });

    // Calibrated delay accuracy envelope.
    c.bench_function("native/delay_1us", |b| b.iter(|| delay::delay(1.0)));

    // Chunk dispatch of each schedule (single-thread drain of 1024 iters).
    let mut g = c.benchmark_group("native/loop_dispatch_1024");
    for (label, sched) in [
        ("static1", Schedule::Static { chunk: 1 }),
        ("dynamic1", Schedule::Dynamic { chunk: 1 }),
        ("guided1", Schedule::Guided { min_chunk: 1 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &sched, |b, &sched| {
            b.iter(|| {
                let lp = NativeLoop::new(sched, 1024, 1);
                let mut cur = LoopCursor::default();
                let mut total = 0u64;
                while let Some((_, len)) = lp.grab(0, &mut cur) {
                    total += len;
                }
                lp.observe_exhausted(&mut cur);
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
