//! Figure 6 kernel: schedbench on simulated Vera, one vs two NUMA
//! domains, with the frequency logger running.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_bench_epcc::{schedbench, EpccConfig};
use ompvar_harness::Platform;
use ompvar_rt::region::Schedule;
use ompvar_rt::runner::RegionRunner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut cfg = EpccConfig::schedbench_default().fast(5);
    cfg.iters_per_thr = 256;
    let region = schedbench::region(&cfg, Schedule::Static { chunk: 1 }, 16);
    let mut g = c.benchmark_group("fig6_freq_schedbench16");
    for (label, rt) in [
        ("one_numa", Platform::Vera.numa_rt(&[0], 16)),
        ("two_numas", Platform::Vera.numa_rt(&[0, 1], 8)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(rt.run_region(&region, seed).expect("bench region completes").freq_samples.len())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
