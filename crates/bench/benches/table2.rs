//! Table 2 kernel: schedbench dynamic_1 on simulated Dardel/Vera.
//! One sample = one full simulated run (reduced iteration count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_bench_epcc::{schedbench, EpccConfig};
use ompvar_harness::Platform;
use ompvar_rt::region::Schedule;
use ompvar_rt::runner::RegionRunner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut cfg = EpccConfig::schedbench_default().fast(5);
    cfg.iters_per_thr = 512;
    let mut g = c.benchmark_group("table2_schedbench_dynamic1");
    for (platform, threads) in [
        (Platform::Dardel, 4usize),
        (Platform::Dardel, 254),
        (Platform::Vera, 4),
        (Platform::Vera, 30),
    ] {
        let rt = platform.pinned_rt(threads);
        let region = schedbench::region(&cfg, Schedule::Dynamic { chunk: 1 }, threads);
        g.bench_with_input(
            BenchmarkId::new(platform.label(), threads),
            &threads,
            |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(rt.run_region(&region, seed).expect("bench region completes").wall_us)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
