//! Figure 7 kernel: syncbench reduction on simulated Vera, one vs two
//! NUMA domains, with the frequency logger running.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::EpccConfig;
use ompvar_harness::Platform;
use ompvar_rt::runner::RegionRunner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = EpccConfig::syncbench_default().fast(10);
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, 16, 20);
    let mut g = c.benchmark_group("fig7_freq_syncbench16");
    for (label, rt) in [
        ("one_numa", Platform::Vera.numa_rt(&[0], 16)),
        ("two_numas", Platform::Vera.numa_rt(&[0, 1], 8)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(rt.run_region(&region, seed).expect("bench region completes").wall_us)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
