//! Engine hot-path microbenchmarks: the bare event loop's `events/sec`
//! on the workloads the `BENCH_sim.json` perf trajectory tracks (see
//! `ompvar_bench::throughput`), on both engine paths.
//!
//! One fuzz sample = the whole measurement corpus (generation excluded);
//! one calibrated sample = one paper-figure-shaped run; one straggler
//! sample = one deadlock-endgame run. `cargo bench --bench sim_hotpath`
//! is CI-smoke-runnable in seconds; the committed trajectory and the
//! regression gate live in the `sim_throughput` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_bench::throughput::{
    fuzz_corpus, run_calibrated_workload, run_fuzz_workload, run_straggler_workload,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus = fuzz_corpus(16);
    let mut g = c.benchmark_group("sim_hotpath");
    for reference in [false, true] {
        let path = if reference { "reference" } else { "optimized" };
        g.bench_with_input(
            BenchmarkId::new("fuzz_corpus16", path),
            &reference,
            |b, &reference| {
                b.iter(|| black_box(run_fuzz_workload(&corpus, reference).events))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("calibrated_run", path),
            &reference,
            |b, &reference| {
                b.iter(|| black_box(run_calibrated_workload(1, reference).events))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("straggler_run", path),
            &reference,
            |b, &reference| {
                b.iter(|| black_box(run_straggler_workload(1, reference).wall_s))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
