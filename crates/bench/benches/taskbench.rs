//! Taskbench extension kernel: explicit-task spawn/drain on simulated
//! Dardel under both spawn patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ompvar_bench_epcc::taskbench::{self, TaskPattern};
use ompvar_bench_epcc::EpccConfig;
use ompvar_harness::Platform;
use ompvar_rt::runner::RegionRunner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = EpccConfig::syncbench_default().fast(5);
    let mut g = c.benchmark_group("taskbench");
    for pattern in TaskPattern::ALL {
        for threads in [8usize, 64] {
            let rt = Platform::Dardel.pinned_rt(threads);
            let region = taskbench::region(&cfg, pattern, threads, 64);
            g.bench_with_input(
                BenchmarkId::new(pattern.label(), threads),
                &threads,
                |b, _| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        black_box(rt.run_region(&region, seed).expect("bench region completes").wall_us)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = ompvar_bench::sim_criterion();
    targets = bench
}
criterion_main!(benches);
