//! `sim_throughput` — measure engine throughput and maintain the
//! `BENCH_sim.json` perf trajectory.
//!
//! Runs the two workloads defined in [`ompvar_bench::throughput`] on both
//! engine paths (optimized and reference) and reports `events/sec` and
//! `cases/sec`. Modes:
//!
//! * default — print a human summary plus the JSON trajectory entry;
//! * `--append FILE` — append the entry to the trajectory file (created
//!   with the `ompvar-bench-sim/1` schema when missing);
//! * `--baseline` — measure the reference path only and record it as the
//!   entry's primary numbers (no `*_ref_*` fields): a stand-in for the
//!   pre-optimization engine, which had no second path to compare
//!   against. Used once, for the trajectory's first point;
//! * `--check FILE` — CI regression gate: re-measure, normalize by the
//!   reference path to cancel machine speed out, and exit non-zero if
//!   the optimized fuzz throughput regressed more than `--tolerance`
//!   (default 20%) against the file's most recent entry.
//!
//! The reference path is the pre-optimization engine (binary-heap event
//! queue, naive topology lookups, no tick fast-forward) processing the
//! identical event stream, so `now.ref / committed.ref` is a pure
//! machine-speed ratio: the gate compares
//! `now.opt  >=  committed.opt * (now.ref / committed.ref) * (1 - tol)`,
//! which holds machine-independently.

use ompvar_bench::throughput::{
    fuzz_corpus, render_entry, run_calibrated_workload, run_fuzz_workload,
    run_straggler_workload, Throughput,
};
use std::process::ExitCode;

struct Args {
    cases: u64,
    reps: u64,
    rounds: u32,
    label: String,
    commit: String,
    append: Option<String>,
    check: Option<String>,
    tolerance: f64,
    baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 64,
        reps: 20,
        rounds: 3,
        label: "local".to_string(),
        commit: "unknown".to_string(),
        append: None,
        check: None,
        tolerance: 0.20,
        baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--cases" => args.cases = val("--cases")?.parse().map_err(|e| format!("{e}"))?,
            "--reps" => args.reps = val("--reps")?.parse().map_err(|e| format!("{e}"))?,
            "--rounds" => args.rounds = val("--rounds")?.parse().map_err(|e| format!("{e}"))?,
            "--label" => args.label = val("--label")?,
            "--commit" => args.commit = val("--commit")?,
            "--append" => args.append = Some(val("--append")?),
            "--check" => args.check = Some(val("--check")?),
            "--tolerance" => {
                args.tolerance = val("--tolerance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--baseline" => args.baseline = true,
            "--help" | "-h" => {
                return Err("usage: sim_throughput [--cases N] [--reps N] [--rounds N] [--label L] \
                     [--commit C] [--baseline] [--append FILE | --check FILE] [--tolerance F]"
                    .to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Pull the last numeric value of `"key": <num>` out of a trajectory
/// file (entries are appended, so the last occurrence is the most
/// recent entry's).
fn last_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let mut out = None;
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        let tail = &rest[at + needle.len()..];
        let num: String = tail
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse() {
            out = Some(v);
        }
        rest = &rest[at + needle.len()..];
    }
    out
}

/// Best-of-N measurement: rerun the workload and keep the round with the
/// shortest wall time. Each round is well under a second, so scheduler
/// noise and cold caches inflate some rounds badly; the minimum is the
/// stable estimator of what the machine can actually do, which keeps the
/// CI regression gate from flapping.
fn best_of(rounds: u32, mut measure: impl FnMut() -> Throughput) -> Throughput {
    let mut best = measure();
    for _ in 1..rounds.max(1) {
        let t = measure();
        if t.wall_s < best.wall_s {
            best = t;
        }
    }
    best
}

fn empty_trajectory() -> String {
    "{\n  \"schema\": \"ompvar-bench-sim/1\",\n  \"entries\": [\n  ]\n}\n".to_string()
}

/// Insert `entry` into the trajectory's `entries` array, before the
/// closing bracket.
fn append_entry(path: &str, entry: &str) -> Result<(), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => empty_trajectory(),
    };
    let close = text
        .rfind("\n  ]")
        .ok_or_else(|| format!("{path}: no entries array to append to"))?;
    let empty = !text[..close].trim_end().ends_with('}');
    let mut out = String::with_capacity(text.len() + entry.len() + 8);
    out.push_str(&text[..close]);
    if !empty {
        out.push(',');
    }
    out.push('\n');
    out.push_str(entry);
    out.push_str(&text[close..]);
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))?;
    Ok(())
}

fn summarize(name: &str, opt: &Throughput, refr: &Throughput) {
    println!(
        "{name:>10}: {:>12.0} events/sec  ({:.2} cases/sec, {} events, {:.2}s)",
        opt.events_per_sec(),
        opt.cases_per_sec(),
        opt.events,
        opt.wall_s
    );
    println!(
        "{:>10}  {:>12.0} events/sec  (speedup {:.2}x)",
        "reference:",
        refr.events_per_sec(),
        opt.events_per_sec() / refr.events_per_sec()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let corpus = fuzz_corpus(args.cases);

    if args.baseline {
        eprintln!(
            "measuring BASELINE (reference engine path only): fuzz workload ({} cases x2 runs), \
             calibrated workload ({} reps)",
            args.cases, args.reps
        );
        let fuzz = best_of(args.rounds, || run_fuzz_workload(&corpus, true));
        let calibrated = best_of(args.rounds, || run_calibrated_workload(args.reps, true));
        let straggler = best_of(args.rounds, || run_straggler_workload(args.reps, true));
        println!(
            "      fuzz: {:>12.0} events/sec  ({:.2} cases/sec)",
            fuzz.events_per_sec(),
            fuzz.cases_per_sec()
        );
        println!(
            "calibrated: {:>12.0} events/sec",
            calibrated.events_per_sec()
        );
        println!(
            " straggler: {:>12.1} cases/sec",
            straggler.cases_per_sec()
        );
        let entry = render_entry(
            &args.label,
            &args.commit,
            args.cases,
            &fuzz,
            None,
            &calibrated,
            None,
            &straggler,
            None,
        );
        if let Some(path) = &args.append {
            if let Err(e) = append_entry(path, &entry) {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
            println!("appended baseline entry to {path}");
            return ExitCode::SUCCESS;
        }
        println!("{entry}");
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "measuring: fuzz workload ({} cases x2 runs), calibrated workload ({} reps), both engine paths",
        args.cases, args.reps
    );
    let fuzz = best_of(args.rounds, || run_fuzz_workload(&corpus, false));
    let fuzz_ref = best_of(args.rounds, || run_fuzz_workload(&corpus, true));
    let calibrated = best_of(args.rounds, || run_calibrated_workload(args.reps, false));
    let calibrated_ref = best_of(args.rounds, || run_calibrated_workload(args.reps, true));
    let straggler = best_of(args.rounds, || run_straggler_workload(args.reps, false));
    let straggler_ref = best_of(args.rounds, || run_straggler_workload(args.reps, true));

    summarize("fuzz", &fuzz, &fuzz_ref);
    summarize("calibrated", &calibrated, &calibrated_ref);
    println!(
        "{:>10}: {:>12.1} cases/sec  (reference {:.1}, speedup {:.2}x)",
        "straggler",
        straggler.cases_per_sec(),
        straggler_ref.cases_per_sec(),
        straggler.cases_per_sec() / straggler_ref.cases_per_sec()
    );

    // Cross-path sanity: both engines must have processed the identical
    // event stream. This is the cheapest continuous equivalence check —
    // the full one is qcheck oracle #11.
    if fuzz.events != fuzz_ref.events || calibrated.events != calibrated_ref.events {
        eprintln!(
            "FATAL: optimized and reference paths diverged: fuzz {} vs {}, calibrated {} vs {}",
            fuzz.events, fuzz_ref.events, calibrated.events, calibrated_ref.events
        );
        return ExitCode::from(3);
    }

    let entry = render_entry(
        &args.label,
        &args.commit,
        args.cases,
        &fuzz,
        Some(&fuzz_ref),
        &calibrated,
        Some(&calibrated_ref),
        &straggler,
        Some(&straggler_ref),
    );

    if let Some(path) = &args.check {
        let committed = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let (Some(base_opt), Some(base_ref)) = (
            last_field(&committed, "fuzz_events_per_sec"),
            last_field(&committed, "fuzz_ref_events_per_sec"),
        ) else {
            eprintln!("{path}: no committed entry with fuzz_events_per_sec / fuzz_ref_events_per_sec");
            return ExitCode::from(2);
        };
        // Cancel machine speed: this machine's reference-path throughput
        // over the committed one scales the committed optimized number
        // to what it should be here.
        let scale = fuzz_ref.events_per_sec() / base_ref;
        let expected = base_opt * scale;
        let floor = expected * (1.0 - args.tolerance);
        let now = fuzz.events_per_sec();
        println!(
            "perf gate: now {now:.0} ev/s vs expected {expected:.0} ev/s (machine scale {scale:.2}, floor {floor:.0})"
        );
        if now < floor {
            eprintln!(
                "PERF REGRESSION: optimized fuzz throughput {now:.0} ev/s is below {:.0}% of the \
                 machine-normalized committed baseline {expected:.0} ev/s",
                (1.0 - args.tolerance) * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("perf gate: OK");
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.append {
        if let Err(e) = append_entry(path, &entry) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
        println!("appended entry to {path}");
        return ExitCode::SUCCESS;
    }

    println!("{entry}");
    ExitCode::SUCCESS
}
