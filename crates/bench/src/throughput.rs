//! Simulator throughput measurement: the workloads, the measurement
//! loop, and the `BENCH_sim.json` trajectory format.
//!
//! Two workloads are defined here and shared by the `sim_throughput`
//! binary (CI perf gate + trajectory appender) and the `sim_hotpath`
//! criterion bench:
//!
//! * **fuzz** — the differential-fuzz campaign's sim side: a corpus of
//!   generator-drawn [`RegionSpec`]s run on the same runtime the qcheck
//!   oracles use (vera, pinned close, sterile parameters, tracing on),
//!   each case executed twice (the determinism-replay the campaign
//!   performs). This is the workload the ISSUE's ≥5× acceptance bar is
//!   measured on.
//! * **calibrated** — one schedbench-shaped region on vera with the
//!   machine's calibrated parameters, OS noise, timer ticks and the
//!   frequency logger enabled: the hot path of the paper-figure
//!   experiments, exercising the `TimerTick`/`FreqSample`/noise event
//!   chains the sterile fuzz runs never touch.
//!
//! Throughput is reported as `events/sec` (engine events processed per
//! wall-clock second, from [`Counters::events`]) and `cases/sec` for the
//! fuzz workload. Both appear as entries in the committed
//! `BENCH_sim.json` (`ompvar-bench-sim/1` schema); see
//! [`render_entry`] for the exact shape.

use ompvar_qcheck::gen::{self, GenConfig};
use ompvar_rt::region::{Construct, RegionSpec, Schedule};
use ompvar_rt::simrt::{FreqLoggerCfg, SimRuntime};
use ompvar_rt::RtConfig;
use ompvar_sim::params::SimParams;
use ompvar_sim::time::SEC;
use ompvar_topology::{MachineSpec, Places};
use std::time::Instant;

/// Base seed of the measurement corpus (fixed: the workload must be the
/// same program mix in every run of the trajectory).
pub const CORPUS_SEED: u64 = 0x5EED_F00D;

/// Measured throughput of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Engine events processed.
    pub events: u64,
    /// Region runs completed (a fuzz "case" is two runs).
    pub cases: u64,
    /// Wall-clock seconds spent inside `SimRuntime::run`.
    pub wall_s: f64,
}

impl Throughput {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }

    /// Cases per wall-clock second.
    pub fn cases_per_sec(&self) -> f64 {
        self.cases as f64 / self.wall_s
    }
}

/// The sim runtime the fuzz campaign uses (mirrors
/// `ompvar_qcheck::oracle::sim_runtime`): vera, threads pinned close,
/// sterile parameters, tracing enabled.
pub fn fuzz_runtime(n_threads: usize) -> SimRuntime {
    SimRuntime::new(
        MachineSpec::vera(),
        RtConfig::pinned_close(Places::Threads(Some(n_threads))),
    )
    .with_params(SimParams::sterile())
    .with_time_limit(300 * SEC)
    .with_tracing(true)
}

/// Generator configuration of the measurement corpus: the same shape
/// grammar the qcheck campaign draws from, scaled up (deeper nesting,
/// longer loops, bigger teams) so each case spends its time in the
/// engine's event loop rather than in per-run setup — the regime a
/// long fuzz campaign operates in.
pub fn fuzz_gen_config() -> GenConfig {
    GenConfig {
        max_threads: 8,
        max_block_len: 8,
        max_depth: 3,
        max_repeat: 8,
        max_iters: 96,
        max_body_us: 2.0,
        max_tasks: 6,
    }
}

/// Draw the fixed measurement corpus: `cases` generator programs.
pub fn fuzz_corpus(cases: u64) -> Vec<(RegionSpec, u64)> {
    let cfg = fuzz_gen_config();
    (0..cases)
        .map(|i| {
            let seed = ompvar_qcheck::case_seed(CORPUS_SEED, i);
            (gen::generate(seed, &cfg), seed)
        })
        .collect()
}

/// Run the fuzz workload: every corpus case twice (campaign-style
/// determinism replay) on [`fuzz_runtime`]. Generation happens outside
/// the timed section; the clock covers only `SimRuntime::run`.
///
/// `reference` routes every run through the engine's reference path
/// (pre-optimization event queue and topology lookups), the yardstick
/// the CI regression gate normalizes against.
pub fn run_fuzz_workload(corpus: &[(RegionSpec, u64)], reference: bool) -> Throughput {
    let mut events = 0u64;
    let mut cases = 0u64;
    let t0 = Instant::now();
    for (region, seed) in corpus {
        let rt = fuzz_runtime(region.n_threads).with_reference_engine(reference);
        for _ in 0..2 {
            match rt.run(region, *seed) {
                Ok(r) => {
                    events += r.counters.map_or(0, |c| c.events);
                    cases += 1;
                }
                Err(e) => {
                    // Analyzer-flagged may-deadlock programs are allowed
                    // to stop early (oracle #9 semantics); their event
                    // work still counts via the partial report when one
                    // is attached, and the case is excluded either way.
                    let _ = e;
                }
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    Throughput {
        events,
        cases: cases / 2,
        wall_s,
    }
}

/// Corpus index of the straggler case: the first generator program (at
/// [`CORPUS_SEED`], [`fuzz_gen_config`]) that deadlocks at runtime via a
/// lock-order inversion the static analyzer can only flag as
/// *may*-deadlock. Such cases are the fuzz campaign's wall-clock
/// stragglers: the engine grinds self-rescheduling no-op events
/// (`LoadBalance` under sterile parameters, timer ticks otherwise) until
/// the 300s virtual-time limit trips the deadlock detector. The idle
/// fast-forward absorbs those chains in O(1), which is exactly what this
/// workload measures.
pub const STRAGGLER_CASE: u64 = 264;

/// The straggler case itself: `(region, seed)`.
pub fn straggler_case() -> (RegionSpec, u64) {
    let seed = ompvar_qcheck::case_seed(CORPUS_SEED, STRAGGLER_CASE);
    (gen::generate(seed, &fuzz_gen_config()), seed)
}

/// Run the straggler workload `reps` times. Every run ends in the
/// expected [`Deadlock`](ompvar_sim::SimError::Deadlock) (that is the
/// point), so no counters are attached and throughput is meaningful as
/// `cases/sec` only — the rate at which the campaign can retire its
/// worst-case runs.
pub fn run_straggler_workload(reps: u64, reference: bool) -> Throughput {
    let (region, seed) = straggler_case();
    let rt = fuzz_runtime(region.n_threads).with_reference_engine(reference);
    let t0 = Instant::now();
    for _ in 0..reps {
        // The deadlock error is the expected outcome; a success here
        // would mean the case stopped being a straggler (gen drift).
        let _ = rt.run(&region, seed);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    Throughput {
        events: 0,
        cases: reps,
        wall_s,
    }
}

/// The calibrated-workload region: a schedbench-shaped kernel (dynamic
/// workshare + barrier, repeated) big enough that the engine spends its
/// time in the boundary/tick/noise event chains.
pub fn calibrated_region() -> RegionSpec {
    RegionSpec::new(
        8,
        vec![Construct::Repeat {
            count: 24,
            body: vec![
                Construct::ParallelFor {
                    schedule: Schedule::Dynamic { chunk: 2 },
                    total_iters: 256,
                    body_us: 2.0,
                    ordered_us: None,
                    nowait: false,
                },
                Construct::Barrier,
            ],
        }],
    )
    .expect("calibrated workload region is valid")
}

/// Run the calibrated workload `reps` times.
pub fn run_calibrated_workload(reps: u64, reference: bool) -> Throughput {
    let machine = MachineSpec::vera();
    let rt = SimRuntime::new(machine, RtConfig::unbound())
        .with_freq_logger(FreqLoggerCfg::on_spare_core(0))
        .with_tracing(true)
        .with_reference_engine(reference);
    let region = calibrated_region();
    let mut events = 0u64;
    let mut cases = 0u64;
    let t0 = Instant::now();
    for rep in 0..reps {
        if let Ok(r) = rt.run(&region, CORPUS_SEED ^ rep) {
            events += r.counters.map_or(0, |c| c.events);
            cases += 1;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    Throughput {
        events,
        cases,
        wall_s,
    }
}

/// One trajectory entry, rendered as a JSON object (hand-rolled: the
/// workspace is offline and carries no serde).
#[allow(clippy::too_many_arguments)]
pub fn render_entry(
    label: &str,
    commit: &str,
    cases: u64,
    fuzz: &Throughput,
    fuzz_ref: Option<&Throughput>,
    calibrated: &Throughput,
    calibrated_ref: Option<&Throughput>,
    straggler: &Throughput,
    straggler_ref: Option<&Throughput>,
) -> String {
    let mut s = String::new();
    s.push_str("    {\n");
    s.push_str(&format!("      \"label\": \"{label}\",\n"));
    s.push_str(&format!("      \"commit\": \"{commit}\",\n"));
    s.push_str(&format!("      \"fuzz_cases\": {cases},\n"));
    s.push_str(&format!("      \"fuzz_events\": {},\n", fuzz.events));
    s.push_str(&format!(
        "      \"fuzz_events_per_sec\": {:.0},\n",
        fuzz.events_per_sec()
    ));
    s.push_str(&format!(
        "      \"fuzz_cases_per_sec\": {:.2},\n",
        fuzz.cases_per_sec()
    ));
    if let Some(r) = fuzz_ref {
        s.push_str(&format!(
            "      \"fuzz_ref_events_per_sec\": {:.0},\n",
            r.events_per_sec()
        ));
        s.push_str(&format!(
            "      \"fuzz_speedup_vs_ref\": {:.2},\n",
            fuzz.events_per_sec() / r.events_per_sec()
        ));
    }
    s.push_str(&format!(
        "      \"calibrated_events_per_sec\": {:.0},\n",
        calibrated.events_per_sec()
    ));
    if let Some(r) = calibrated_ref {
        s.push_str(&format!(
            "      \"calibrated_ref_events_per_sec\": {:.0},\n",
            r.events_per_sec()
        ));
        s.push_str(&format!(
            "      \"calibrated_speedup_vs_ref\": {:.2},\n",
            calibrated.events_per_sec() / r.events_per_sec()
        ));
    }
    s.push_str(&format!(
        "      \"straggler_cases_per_sec\": {:.1}",
        straggler.cases_per_sec()
    ));
    if let Some(r) = straggler_ref {
        s.push_str(&format!(
            ",\n      \"straggler_ref_cases_per_sec\": {:.1},\n",
            r.cases_per_sec()
        ));
        s.push_str(&format!(
            "      \"straggler_speedup_vs_ref\": {:.2}\n",
            straggler.cases_per_sec() / r.cases_per_sec()
        ));
    } else {
        s.push('\n');
    }
    s.push_str("    }");
    s
}
