//! # ompvar-bench — Criterion benchmark harness
//!
//! One bench target per paper table/figure, each timing the experiment's
//! core simulated kernel at reduced scale (so `cargo bench` completes in
//! minutes), plus a native-runtime micro-benchmark. The full-scale
//! regeneration of the paper's artifacts lives in the `ompvar-repro` CLI
//! (`crates/harness`); these benches track the *cost* of the experiments
//! and guard the simulator against performance regressions.

pub mod throughput;

use criterion::Criterion;

/// Criterion configured for simulation benches: few samples (each sample
/// is a whole simulated run), modest measurement time.
pub fn sim_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}
