//! End-to-end tests of the `ompvar-repro` CLI binary.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ompvar-repro"))
}

#[test]
fn fast_table2_prints_table_and_checks() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_test");
    let out = repro()
        .args(["--fast", "--seed", "5", "--out"])
        .arg(&out_dir)
        .arg("table2")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("Table 2"));
    assert!(stdout.contains("[PASS]"));
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    // CSV written.
    assert!(out_dir.join("table2_0.csv").exists());
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = repro().arg("fig99").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment: fig99"), "{stderr}");
    assert!(stderr.contains("usage:"));
}

/// A typo anywhere in the target list is rejected before any experiment
/// runs — the valid first target must not start.
#[test]
fn late_unknown_experiment_rejected_up_front() {
    let out = repro()
        .args(["--fast", "fig2", "fig99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment: fig99"));
    // fig2 must not have produced any output before the rejection.
    assert!(out.stdout.is_empty(), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = repro()
        .args(["--frobnicate", "fig2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag: --frobnicate"), "{stderr}");
    assert!(stderr.contains("usage:"));
}

/// Duplicate targets run once (first-occurrence order).
#[test]
fn duplicate_targets_are_deduped() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_dedupe");
    let out = repro()
        .args(["--fast", "--out"])
        .arg(&out_dir)
        .args(["fig2", "fig2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("==== fig2 ====").count(), 1, "{stdout}");
    std::fs::remove_dir_all(&out_dir).ok();
}

/// The faults experiment completes in fast mode, prints its sweep table
/// (including the diagnosed deadlock cell), and writes its CSV.
#[test]
fn faults_fast_reports_diagnosed_deadlock() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_faults");
    let out = repro()
        .args(["--fast", "--out"])
        .arg(&out_dir)
        .arg("faults")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("lost-wakeup"), "{stdout}");
    assert!(stdout.contains("simulation deadlock"), "{stdout}");
    assert!(stdout.contains("waiting on"), "{stdout}");
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    assert!(out_dir.join("faults_0.csv").exists());
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn same_seed_reproduces_identical_output() {
    let run = || {
        let out = repro()
            .args(["--fast", "--seed", "9", "--out"])
            .arg(std::env::temp_dir().join("ompvar_cli_det"))
            .arg("fig2")
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains("took") && !l.contains("wrote"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(run(), run());
    std::fs::remove_dir_all(std::env::temp_dir().join("ompvar_cli_det")).ok();
}

/// The fuzz experiment honors `--fuzz-cases` and passes on a small
/// fixed-seed campaign.
#[test]
fn fuzz_smoke_with_case_budget() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_fuzz_test");
    let out = repro()
        .args(["--fuzz-cases", "5", "--seed", "42", "--out"])
        .arg(&out_dir)
        .arg("fuzz")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {stdout}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("5 differential case(s)"), "{stdout}");
    assert!(stdout.contains("[PASS]"));
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    assert!(out_dir.join("fuzz_0.csv").exists());
    std::fs::remove_dir_all(&out_dir).ok();
}
