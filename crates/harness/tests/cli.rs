//! End-to-end tests of the `ompvar-repro` CLI binary.

use ompvar_obs::json::{parse, Value};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ompvar-repro"))
}

#[test]
fn fast_table2_prints_table_and_checks() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_test");
    let out = repro()
        .args(["--fast", "--seed", "5", "--out"])
        .arg(&out_dir)
        .arg("table2")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("Table 2"));
    assert!(stdout.contains("[PASS]"));
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    // CSV written.
    assert!(out_dir.join("table2_0.csv").exists());
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = repro().arg("fig99").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment: fig99"), "{stderr}");
    assert!(stderr.contains("usage:"));
}

/// A typo anywhere in the target list is rejected before any experiment
/// runs — the valid first target must not start.
#[test]
fn late_unknown_experiment_rejected_up_front() {
    let out = repro()
        .args(["--fast", "fig2", "fig99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment: fig99"));
    // fig2 must not have produced any output before the rejection.
    assert!(out.stdout.is_empty(), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = repro()
        .args(["--frobnicate", "fig2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag: --frobnicate"), "{stderr}");
    assert!(stderr.contains("usage:"));
}

/// Duplicate targets run once (first-occurrence order).
#[test]
fn duplicate_targets_are_deduped() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_dedupe");
    let out = repro()
        .args(["--fast", "--out"])
        .arg(&out_dir)
        .args(["fig2", "fig2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("==== fig2 ====").count(), 1, "{stdout}");
    std::fs::remove_dir_all(&out_dir).ok();
}

/// The faults experiment completes in fast mode, prints its sweep table
/// (including the diagnosed deadlock cell), and writes its CSV.
#[test]
fn faults_fast_reports_diagnosed_deadlock() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_faults");
    let out = repro()
        .args(["--fast", "--out"])
        .arg(&out_dir)
        .arg("faults")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("lost-wakeup"), "{stdout}");
    assert!(stdout.contains("simulation deadlock"), "{stdout}");
    assert!(stdout.contains("waiting on"), "{stdout}");
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    assert!(out_dir.join("faults_0.csv").exists());
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn same_seed_reproduces_identical_output() {
    let run = || {
        let out = repro()
            .args(["--fast", "--seed", "9", "--out"])
            .arg(std::env::temp_dir().join("ompvar_cli_det"))
            .arg("fig2")
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains("took") && !l.contains("wrote"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(run(), run());
    std::fs::remove_dir_all(std::env::temp_dir().join("ompvar_cli_det")).ok();
}

/// The trace experiment honors `--trace`, writes Perfetto-loadable
/// Chrome traces for both backends, and `--report-json` captures the
/// whole run — tables and checks — as parseable JSON.
#[test]
fn trace_writes_chrome_traces_and_json_report() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_trace_test");
    let trace = out_dir.join("out.json");
    let report = out_dir.join("report.json");
    let out = repro()
        .args(["--fast", "--seed", "7", "--out"])
        .arg(&out_dir)
        .arg("--trace")
        .arg(&trace)
        .arg("--report-json")
        .arg(&report)
        .arg("trace")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {stdout}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    // Both Chrome traces are valid JSON with begin/end span events; the
    // simulated one also carries the per-core frequency counter track.
    for (path, want_counters) in [(&trace, true), (&out_dir.join("out.native.json"), false)] {
        let doc = std::fs::read_to_string(path).expect("trace written");
        let v = parse(&doc).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("array");
        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
                .count()
        };
        assert!(count("B") > 0 && count("B") == count("E"), "{}", path.display());
        assert_eq!(count("C") > 0, want_counters, "{}", path.display());
    }
    // The run report round-trips: experiment name, pass/fail, and the
    // per-construct percentile tables are all present.
    let doc = std::fs::read_to_string(&report).expect("report written");
    let v = parse(&doc).expect("report parses");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("ompvar-run-report/1")
    );
    assert_eq!(v.get("seed").and_then(Value::as_f64), Some(7.0));
    assert_eq!(v.get("all_passed").and_then(Value::as_bool), Some(true));
    let exps = v.get("experiments").and_then(Value::as_arr).expect("array");
    assert_eq!(exps.len(), 1);
    assert_eq!(exps[0].get("name").and_then(Value::as_str), Some("trace"));
    let tables = exps[0].get("tables").and_then(Value::as_arr).expect("tables");
    assert_eq!(tables.len(), 2, "sim + native percentile tables");
    for t in tables {
        let header: Vec<&str> = t
            .get("header")
            .and_then(Value::as_arr)
            .expect("header")
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(header, ["construct", "count", "p50", "p95", "p99", "max"]);
        assert!(!t.get("rows").and_then(Value::as_arr).expect("rows").is_empty());
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

/// `--report-json` works for any experiment, not just `trace`.
#[test]
fn report_json_captures_non_trace_experiments() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_report_test");
    let report = out_dir.join("r.json");
    let out = repro()
        .args(["--fast", "--out"])
        .arg(&out_dir)
        .arg("--report-json")
        .arg(&report)
        .arg("fig2")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let v = parse(&std::fs::read_to_string(&report).expect("report written"))
        .expect("report parses");
    let exps = v.get("experiments").and_then(Value::as_arr).expect("array");
    assert_eq!(exps[0].get("name").and_then(Value::as_str), Some("fig2"));
    assert!(!exps[0].get("checks").and_then(Value::as_arr).unwrap().is_empty());
    std::fs::remove_dir_all(&out_dir).ok();
}

/// Poll until `path` holds at least `lines` newline-terminated lines
/// (the checkpoint manifest grows one line per completed experiment).
fn wait_for_lines(path: &std::path::Path, lines: usize) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let n = std::fs::read_to_string(path)
            .map(|s| s.lines().count())
            .unwrap_or(0);
        if n >= lines {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{} never reached {lines} line(s)",
            path.display()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// No `.tmp` staging residue anywhere under `dir` (atomic writes either
/// complete or clean up).
fn assert_no_tmp_residue(dir: &std::path::Path) {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&d) else { continue };
        for e in rd.filter_map(Result::ok) {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                assert!(
                    !p.file_name().unwrap().to_string_lossy().ends_with(".tmp"),
                    "staging residue: {}",
                    p.display()
                );
            }
        }
    }
}

/// The tentpole end to end: a campaign killed with SIGKILL after its
/// first checkpointed experiment resumes with `--resume` and produces a
/// `--report-json` document byte-identical to an uninterrupted run's.
/// Also the satellite-1 regression: the kill must leave no half-written
/// report and no temp-file residue.
#[test]
fn kill_then_resume_reproduces_report_byte_for_byte() {
    let base = std::env::temp_dir().join("ompvar_cli_resume");
    std::fs::remove_dir_all(&base).ok();
    let targets = ["fig2", "table2"];

    // Uninterrupted reference.
    let ref_dir = base.join("ref");
    let ref_json = base.join("ref.json");
    let out = repro()
        .args(["--fast", "--seed", "3", "--out"])
        .arg(&ref_dir)
        .arg("--report-json")
        .arg(&ref_json)
        .args(targets)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Same campaign, killed right after the first experiment checkpoints.
    let kill_dir = base.join("kill");
    let kill_json = base.join("kill.json");
    let mut child = repro()
        .args(["--fast", "--seed", "3", "--out"])
        .arg(&kill_dir)
        .arg("--report-json")
        .arg(&kill_json)
        .args(targets)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary spawns");
    let manifest = kill_dir.join("checkpoint").join("manifest.jsonl");
    // Header + first unit entry.
    wait_for_lines(&manifest, 2);
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");
    // The kill left either no report or a complete one — never a torn
    // file — and no staging residue.
    assert!(!kill_json.exists(), "report must not exist before the run completes");
    assert_no_tmp_residue(&base);

    // Resume: the journaled experiment replays, the rest re-runs.
    let out = repro()
        .args(["--fast", "--seed", "3", "--out"])
        .arg(&kill_dir)
        .arg("--report-json")
        .arg(&kill_json)
        .arg("--resume")
        .arg(kill_dir.join("checkpoint"))
        .args(targets)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("replayed from checkpoint"), "{stdout}");
    assert_eq!(
        std::fs::read(&ref_json).expect("reference report"),
        std::fs::read(&kill_json).expect("resumed report"),
        "resumed run report differs from uninterrupted run"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// Resuming against a manifest from a different campaign (other seed,
/// mode, or target list) is rejected up front, not silently mixed in.
#[test]
fn resume_rejects_mismatched_campaign() {
    let base = std::env::temp_dir().join("ompvar_cli_resume_mismatch");
    std::fs::remove_dir_all(&base).ok();
    let out = repro()
        .args(["--fast", "--seed", "3", "--out"])
        .arg(&base)
        .arg("fig2")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let out = repro()
        .args(["--fast", "--seed", "4", "--out"])
        .arg(&base)
        .arg("--resume")
        .arg(base.join("checkpoint"))
        .arg("fig2")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot resume"), "{stderr}");
    std::fs::remove_dir_all(&base).ok();
}

/// Ctrl-C between experiments flushes a partial run report marked
/// `"interrupted": true` and exits with the conventional 130; the
/// checkpoint manifest keeps every experiment completed so far.
#[test]
fn sigint_flushes_partial_report_and_exits_130() {
    let base = std::env::temp_dir().join("ompvar_cli_sigint");
    std::fs::remove_dir_all(&base).ok();
    let report = base.join("partial.json");
    let mut child = repro()
        .args(["--fast", "--seed", "3", "--out"])
        .arg(&base)
        .arg("--report-json")
        .arg(&report)
        .args(["fig2", "table2", "fig3", "fig4"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary spawns");
    wait_for_lines(&base.join("checkpoint").join("manifest.jsonl"), 2);
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = child.wait().expect("reaped");
    assert_eq!(status.code(), Some(130), "{status:?}");
    let v = parse(&std::fs::read_to_string(&report).expect("partial report written"))
        .expect("partial report parses");
    assert_eq!(v.get("interrupted").and_then(Value::as_bool), Some(true));
    let exps = v.get("experiments").and_then(Value::as_arr).expect("array");
    assert!(!exps.is_empty(), "at least the first experiment is in the partial report");
    assert!(exps.len() < 4, "the sweep must have stopped early");
    std::fs::remove_dir_all(&base).ok();
}

/// The crash matrix, end to end: a multi-worker campaign killed with
/// SIGKILL mid-flight and resumed (still multi-worker) produces a
/// `--report-json` document byte-identical to an uninterrupted
/// single-worker run's — the executor's merge order, not the steal
/// schedule or crash point, determines the report.
#[test]
fn parallel_kill_then_resume_matches_sequential_report() {
    let base = std::env::temp_dir().join("ompvar_cli_par_resume");
    std::fs::remove_dir_all(&base).ok();
    let targets = ["fig2", "table2", "fig4"];

    // Uninterrupted sequential reference.
    let ref_dir = base.join("ref");
    let ref_json = base.join("ref.json");
    let out = repro()
        .args(["--fast", "--seed", "3", "--jobs", "1", "--out"])
        .arg(&ref_dir)
        .arg("--report-json")
        .arg(&ref_json)
        .args(targets)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Same campaign on 3 workers, killed after the first checkpoint.
    let kill_dir = base.join("kill");
    let kill_json = base.join("kill.json");
    let mut child = repro()
        .args(["--fast", "--seed", "3", "--jobs", "3", "--out"])
        .arg(&kill_dir)
        .arg("--report-json")
        .arg(&kill_json)
        .args(targets)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary spawns");
    wait_for_lines(&kill_dir.join("checkpoint").join("manifest.jsonl"), 2);
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");
    assert_no_tmp_residue(&base);

    // Resume on 3 workers again: journaled units replay from the shard
    // merge, the rest re-run.
    let out = repro()
        .args(["--fast", "--seed", "3", "--jobs", "3", "--out"])
        .arg(&kill_dir)
        .arg("--report-json")
        .arg(&kill_json)
        .arg("--resume")
        .arg(kill_dir.join("checkpoint"))
        .args(targets)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("replayed from checkpoint"), "{stdout}");
    assert_eq!(
        std::fs::read(&ref_json).expect("reference report"),
        std::fs::read(&kill_json).expect("resumed report"),
        "parallel resumed report differs from sequential uninterrupted run"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// `--jobs` validation: non-numeric and out-of-range counts are usage
/// errors before anything runs; `--jobs 0` auto-detects and works.
#[test]
fn jobs_flag_is_validated() {
    for bad in [&["--jobs", "three"][..], &["--jobs", "2000"][..], &["--jobs"][..]] {
        let out = repro().args(bad).arg("fig2").output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "args {bad:?}"
        );
    }
    let out_dir = std::env::temp_dir().join("ompvar_cli_jobs_auto");
    let out = repro()
        .args(["--fast", "--jobs", "0", "--out"])
        .arg(&out_dir)
        .arg("fig2")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_dir_all(&out_dir).ok();
}

/// `--unit-timeout` rejects junk, and an impossibly small deadline
/// reaps every attempt: the campaign quarantines the experiment and
/// finishes (exit 1 for the FAIL check) instead of hanging.
#[test]
fn unit_timeout_reaps_and_quarantines_without_hanging() {
    for bad in [&["--unit-timeout", "abc"][..], &["--unit-timeout", "-1"][..]] {
        let out = repro().args(bad).arg("fig2").output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
    }
    let out_dir = std::env::temp_dir().join("ompvar_cli_timeout");
    std::fs::remove_dir_all(&out_dir).ok();
    let out = repro()
        .args([
            "--fast",
            "--seed",
            "3",
            "--unit-timeout",
            "0.000001",
            "--max-retries",
            "1",
            "--out",
        ])
        .arg(&out_dir)
        .arg("fig2")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The campaign must terminate on its own with the quarantine FAIL
    // check — a hung watchdog would trip the harness timeout instead.
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("[quarantined]"), "{stdout}");
    assert!(stdout.contains("[FAIL]"), "{stdout}");
    std::fs::remove_dir_all(&out_dir).ok();
}

/// SIGINT with a multi-worker pool: every worker stops at its next unit
/// boundary, every shard manifest on disk is complete and parseable,
/// and the partial report still lands atomically with exit 130.
#[test]
fn parallel_sigint_flushes_all_shards_and_exits_130() {
    let base = std::env::temp_dir().join("ompvar_cli_par_sigint");
    std::fs::remove_dir_all(&base).ok();
    let report = base.join("partial.json");
    let mut child = repro()
        .args(["--fast", "--seed", "3", "--jobs", "2", "--out"])
        .arg(&base)
        .arg("--report-json")
        .arg(&report)
        .args(["fig2", "table2", "fig3", "fig4"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary spawns");
    wait_for_lines(&base.join("checkpoint").join("manifest.jsonl"), 2);
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = child.wait().expect("reaped");
    assert_eq!(status.code(), Some(130), "{status:?}");
    let v = parse(&std::fs::read_to_string(&report).expect("partial report written"))
        .expect("partial report parses");
    assert_eq!(v.get("interrupted").and_then(Value::as_bool), Some(true));
    // Every shard manifest is line-complete JSON: the interrupt flushed
    // them at a unit boundary, never mid-append.
    let ckpt = base.join("checkpoint");
    for shard in [ckpt.join("manifest.jsonl"), ckpt.join("manifest.shard-1.jsonl")] {
        let text = std::fs::read_to_string(&shard)
            .unwrap_or_else(|e| panic!("{}: {e}", shard.display()));
        assert!(text.ends_with('\n'), "torn tail in {}", shard.display());
        for line in text.lines() {
            parse(line).unwrap_or_else(|e| panic!("{}: {e}: {line}", shard.display()));
        }
    }
    assert_no_tmp_residue(&base);
    std::fs::remove_dir_all(&base).ok();
}

/// The fuzz experiment honors `--fuzz-cases` and passes on a small
/// fixed-seed campaign.
#[test]
fn fuzz_smoke_with_case_budget() {
    let out_dir = std::env::temp_dir().join("ompvar_cli_fuzz_test");
    let out = repro()
        .args(["--fuzz-cases", "5", "--seed", "42", "--out"])
        .arg(&out_dir)
        .arg("fuzz")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}\nstdout: {stdout}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("5 differential case(s)"), "{stdout}");
    assert!(stdout.contains("[PASS]"));
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    assert!(out_dir.join("fuzz_0.csv").exists());
    std::fs::remove_dir_all(&out_dir).ok();
}
