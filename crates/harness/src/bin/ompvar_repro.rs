//! `ompvar-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! ompvar-repro [--fast] [--seed N] [--out DIR] [--trace FILE] \
//!              [--report-json FILE] [--resume DIR] [--max-retries N] \
//!              [--jobs N] [--unit-timeout SECS] [--stability-cov X] \
//!              <table2|fig1|...|trace|campaign|all>
//! ```
//!
//! Each experiment prints its paper-style table(s), runs the shape checks
//! against the paper's qualitative findings, and writes CSVs under the
//! output directory (default `results/`). `--trace` names the Chrome
//! trace file written by the `trace` experiment; `--report-json` writes
//! a machine-readable summary of every table and check in the run.
//!
//! The whole sweep runs on the fault-tolerant campaign executor
//! (`ompvar-supervisor`): `--jobs N` shards the experiments across a
//! work-stealing pool of N workers (`0` auto-detects; the default `1`
//! preserves measurement fidelity), each journaling completed units into
//! its own `ompvar-checkpoint/1` shard manifest under
//! `<out>/checkpoint/` so a `kill -9` at any instant tears at most the
//! final line of one shard. A panicking experiment is retried on a
//! seeded deterministic backoff schedule and quarantined — reported as a
//! synthesized FAIL check — only once its budget is exhausted, while the
//! sweep continues; `--unit-timeout SECS` arms a watchdog that reaps a
//! hung attempt into the same retry path. `--resume <dir>` merges the
//! shard manifests deterministically, replays the journaled experiments
//! and re-runs only the rest, producing a `--report-json` document
//! byte-identical to an uninterrupted run regardless of worker count or
//! crash history. Ctrl-C stops every worker at the next unit boundary,
//! flushes a partial report marked `"interrupted": true` and exits 130.

use ompvar_harness::{
    ablation, analyze_exp, campaign_exp, chunks, common, faults_exp, fig1, fig2, fig3, fig4, fig5,
    fig67, fuzz_exp, table2, taskbench_exp, trace_exp, variability, Check, ExpOptions, ExpReport,
};
use ompvar_supervisor::{
    atomic_write, attempt_seed, create_shards, resolve_jobs, resume_shards, run_campaign,
    ExecUnit, ExecutorConfig, Header, Outcome, SupervisorConfig, UnitError, UnitResult,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

const EXPERIMENTS: [&str; 17] = [
    "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "ablation", "taskbench",
    "chunks", "faults", "fuzz", "analyze", "trace", "campaign", "variability",
];

/// Set by the SIGINT handler; polled between experiments so an
/// interrupted sweep still flushes its checkpoint manifest and a partial
/// run report before exiting with the conventional 130.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_sig: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

fn install_sigint_handler() {
    // The libc stub carries no `signal`, but the symbol itself links
    // from the C library std already binds to.
    const SIGINT: i32 = 2;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ompvar-repro [--fast] [--seed N] [--out DIR] [--fuzz-cases N] \
         [--trace FILE] [--attr] [--report-json FILE] [--resume DIR] [--max-retries N] \
         [--jobs N] [--unit-timeout SECS] [--stability-cov X] <{}|all>",
        EXPERIMENTS.join("|")
    );
    std::process::exit(2);
}

fn run_one(name: &str, opts: &ExpOptions) -> ExpReport {
    match name {
        "table2" => table2::run(opts),
        "fig1" => fig1::run(opts),
        "fig2" => fig2::run(opts),
        "fig3" => fig3::run(opts),
        "fig4" => fig4::run(opts),
        "fig5" => fig5::run(opts),
        "fig6" => fig67::run_fig6(opts),
        "fig7" => fig67::run_fig7(opts),
        "ablation" => ablation::run(opts),
        "taskbench" => taskbench_exp::run(opts),
        "chunks" => chunks::run(opts),
        "faults" => faults_exp::run(opts),
        "fuzz" => fuzz_exp::run(opts),
        "analyze" => analyze_exp::run(opts),
        "trace" => trace_exp::run(opts),
        "campaign" => campaign_exp::run(opts),
        "variability" => variability::run(opts),
        // Names are validated before any experiment runs.
        other => unreachable!("unvalidated experiment name {other:?}"),
    }
}

/// One supervised attempt of an experiment: a panic anywhere inside it
/// becomes a classified transient failure the supervisor can retry.
fn attempt(name: &str, opts: &ExpOptions, n: u32) -> Result<ExpReport, UnitError> {
    // Retries re-run under a decorrelated seed (attempt 0 keeps the base
    // seed, so a never-retried run matches an unsupervised one).
    let opts = ExpOptions { seed: attempt_seed(opts.seed, n), ..opts.clone() };
    match catch_unwind(AssertUnwindSafe(|| run_one(name, &opts))) {
        Ok(report) => Ok(report),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(UnitError::from_panic(msg))
        }
    }
}

/// The FAIL report synthesized for a quarantined experiment.
fn quarantine_report(name: &str, retries: &[ompvar_supervisor::RetryRecord]) -> ExpReport {
    let history = retries
        .iter()
        .map(|r| format!("attempt {}: {} [{}]", r.attempt, r.error, r.transience.name()))
        .collect::<Vec<_>>()
        .join("; ");
    ExpReport {
        name: name.to_string(),
        tables: Vec::new(),
        checks: vec![Check::new(
            "experiment completes within its retry budget",
            false,
            format!("quarantined after {} attempt(s): {history}", retries.len()),
        )],
    }
}

fn write_report(opts: &ExpOptions, interrupted: bool, reports: &[ExpReport]) -> bool {
    let Some(path) = &opts.report_json else {
        return true;
    };
    let doc = common::run_report_json(opts.seed, opts.fast, interrupted, reports);
    match atomic_write(path, doc.as_bytes()) {
        Ok(()) => {
            println!("wrote {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("error: could not write JSON report {}: {e}", path.display());
            false
        }
    }
}

/// Flush the executor's merged Chrome trace (attempt spans, retry /
/// quarantine / timeout / resume / checkpoint instants, one lane per
/// worker) next to the manifest.
fn write_supervisor_trace(trace: &ompvar_obs::Trace, opts: &ExpOptions) {
    let path = opts.checkpoint_dir().join("supervisor.json");
    let doc = ompvar_obs::chrome_trace_lanes(trace, &[], "ompvar-supervisor", "worker");
    if let Err(e) = atomic_write(&path, doc.as_bytes()) {
        eprintln!("warning: could not write supervisor trace {}: {e}", path.display());
    }
}

fn main() -> ExitCode {
    install_sigint_handler();
    let mut opts = ExpOptions::default();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => opts.fast = true,
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.out_dir = v.into();
            }
            "--fuzz-cases" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.fuzz_cases = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--trace" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.trace_path = Some(v.into());
            }
            "--attr" => opts.attr = true,
            "--report-json" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.report_json = Some(v.into());
            }
            "--resume" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.resume = Some(v.into());
            }
            "--max-retries" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.max_retries = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                let n: usize = v.parse().unwrap_or_else(|_| usage());
                // 0 means auto-detect; anything past 1024 is a typo, not
                // a machine.
                if n > 1024 {
                    eprintln!("error: --jobs {n} is out of range (max 1024, 0 = auto)");
                    usage();
                }
                opts.jobs = n;
            }
            "--unit-timeout" => {
                let v = args.next().unwrap_or_else(|| usage());
                let secs: f64 = v.parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs <= 0.0 {
                    eprintln!("error: --unit-timeout must be a positive number of seconds");
                    usage();
                }
                opts.unit_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--stability-cov" => {
                let v = args.next().unwrap_or_else(|| usage());
                let x: f64 = v.parse().unwrap_or_else(|_| usage());
                if !x.is_finite() || x <= 0.0 {
                    usage();
                }
                opts.stability_cov = Some(x);
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    // Validate every requested name up front: a typo in the last target
    // must not surface only after hours of earlier experiments.
    if let Some(bad) = targets
        .iter()
        .find(|t| *t != "all" && !EXPERIMENTS.contains(&t.as_str()))
    {
        eprintln!("unknown experiment: {bad}");
        usage();
    }
    let names: Vec<&str> = if targets.iter().any(|t| t == "all") {
        EXPERIMENTS.to_vec()
    } else {
        // Dedupe while preserving first-occurrence order.
        let mut seen = Vec::new();
        for t in &targets {
            if !seen.contains(&t.as_str()) {
                seen.push(t.as_str());
            }
        }
        seen
    };

    // The campaign executor and its sharded checkpoint manifests. A
    // resumed campaign must describe the same work: seed, mode and
    // target list are validated against every shard's header. Shard 0 is
    // the legacy `manifest.jsonl`, so sequential checkpoints from older
    // runs resume unchanged.
    let jobs = resolve_jobs(opts.jobs);
    let header = Header {
        seed: opts.seed,
        fast: opts.fast,
        targets: names.iter().map(|s| s.to_string()).collect(),
    };
    let ckpt_dir = opts.checkpoint_dir();
    let manifest_path = ckpt_dir.join("manifest.jsonl");
    let (manifests, replay) = if opts.resume.is_some() {
        match resume_shards(&ckpt_dir, "manifest", &header, jobs) {
            Ok((ms, merged)) => {
                println!(
                    "resuming from {} ({} completed experiment(s))",
                    manifest_path.display(),
                    merged.len()
                );
                (Some(ms), merged)
            }
            Err(e) => {
                eprintln!("error: cannot resume from {}: {e}", manifest_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match create_shards(&ckpt_dir, "manifest", &header, jobs) {
            Ok(ms) => (Some(ms), Vec::new()),
            Err(e) => {
                eprintln!(
                    "warning: no checkpoint manifest at {}: {e}; running unjournaled",
                    manifest_path.display()
                );
                (None, Vec::new())
            }
        }
    };
    let cfg = ExecutorConfig {
        jobs,
        unit_timeout: opts.unit_timeout,
        supervisor: SupervisorConfig {
            seed: opts.seed,
            max_retries: opts.max_retries.unwrap_or(2),
            sleep: true,
            ..SupervisorConfig::default()
        },
    };
    let units: Vec<ExecUnit<ExpReport>> = names
        .iter()
        .map(|name| {
            let name = name.to_string();
            let opts = opts.clone();
            ExecUnit::new(name.clone(), move |n| {
                // Static pre-flight gate: analyze the experiment's
                // built-in region specs before running anything. An
                // Error-severity finding is structural — a permanent
                // failure (quarantined, journaled, a FAIL check in the
                // JSON report) that never spends the experiment's
                // wall-clock budget.
                let rejected = analyze_exp::preflight_specs(&name, &opts)
                    .into_iter()
                    .find_map(|(label, spec)| {
                        ompvar_analyze::analyze(&spec)
                            .first_error()
                            .map(|d| (label, d.render(), d.cause))
                    });
                if let Some((label, rendered, cause)) = rejected {
                    eprintln!("preflight: {name} spec `{label}` statically rejected: {rendered}");
                    let cause =
                        cause.expect("Error-severity diagnostics carry their RegionError");
                    return Err(UnitError::from_rt(&ompvar_rt::RtError::InvalidRegion(cause)));
                }
                attempt(&name, &opts, n)
            })
        })
        .collect();
    // Stream each experiment's block (tables, CSV paths, timing line)
    // the moment it reaches a terminal state. Stdout is locked per unit
    // so blocks stay contiguous under `--jobs > 1`; with one worker the
    // callback fires in canonical order, matching sequential output.
    let progress = |r: &UnitResult<ExpReport>| {
        let (rendered, csvs, note) = match &r.outcome {
            Outcome::Completed { value, attempts, from_checkpoint, .. } => {
                let note = if *from_checkpoint {
                    " [replayed from checkpoint]".to_string()
                } else if *attempts > 1 {
                    format!(" [recovered after {attempts} attempts]")
                } else {
                    String::new()
                };
                (value.render(), value.write_csvs(&opts.out_dir), note)
            }
            Outcome::Quarantined { retries, .. } => {
                let rep = quarantine_report(&r.name, retries);
                (rep.render(), rep.write_csvs(&opts.out_dir), " [quarantined]".to_string())
            }
        };
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let _ = write!(out, "{rendered}");
        match csvs {
            Ok(paths) => {
                for p in paths {
                    let _ = writeln!(out, "wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("warning: could not write CSVs: {e}"),
        }
        let _ = writeln!(out, "({} took {:.1}s{note})\n", r.name, r.duration.as_secs_f64());
    };
    let run = run_campaign(
        &cfg,
        &units,
        manifests,
        &replay,
        Some(&INTERRUPTED),
        Some(&progress),
    );
    write_supervisor_trace(&run.trace, &opts);

    let mut all_ok = true;
    let mut reports = Vec::new();
    for r in run.results {
        let report = match r.outcome {
            Outcome::Completed { value, .. } => value,
            Outcome::Quarantined { retries, .. } => quarantine_report(&r.name, &retries),
        };
        all_ok &= report.all_passed();
        reports.push(report);
    }
    if run.interrupted {
        eprintln!("interrupted: flushing partial report and checkpoint manifest");
        write_report(&opts, true, &reports);
        std::process::exit(130);
    }
    all_ok &= write_report(&opts, false, &reports);
    if all_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("some shape checks FAILED");
        ExitCode::FAILURE
    }
}
