//! `ompvar-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! ompvar-repro [--fast] [--seed N] [--out DIR] [--trace FILE] \
//!              [--report-json FILE] <table2|fig1|...|trace|all>
//! ```
//!
//! Each experiment prints its paper-style table(s), runs the shape checks
//! against the paper's qualitative findings, and writes CSVs under the
//! output directory (default `results/`). `--trace` names the Chrome
//! trace file written by the `trace` experiment; `--report-json` writes
//! a machine-readable summary of every table and check in the run.
//!
//! Experiments are isolated: a panicking experiment is reported as a
//! synthesized FAIL check, and the sweep continues through the remaining
//! experiments (the exit code still reflects the failure).

use ompvar_harness::{
    ablation, chunks, common, faults_exp, fig1, fig2, fig3, fig4, fig5, fig67, fuzz_exp, table2,
    taskbench_exp, trace_exp, Check, ExpOptions, ExpReport,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

const EXPERIMENTS: [&str; 14] = [
    "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "ablation", "taskbench",
    "chunks", "faults", "fuzz", "trace",
];

fn usage() -> ! {
    eprintln!(
        "usage: ompvar-repro [--fast] [--seed N] [--out DIR] [--fuzz-cases N] \
         [--trace FILE] [--report-json FILE] <{}|all>",
        EXPERIMENTS.join("|")
    );
    std::process::exit(2);
}

fn run_one(name: &str, opts: &ExpOptions) -> ExpReport {
    match name {
        "table2" => table2::run(opts),
        "fig1" => fig1::run(opts),
        "fig2" => fig2::run(opts),
        "fig3" => fig3::run(opts),
        "fig4" => fig4::run(opts),
        "fig5" => fig5::run(opts),
        "fig6" => fig67::run_fig6(opts),
        "fig7" => fig67::run_fig7(opts),
        "ablation" => ablation::run(opts),
        "taskbench" => taskbench_exp::run(opts),
        "chunks" => chunks::run(opts),
        "faults" => faults_exp::run(opts),
        "fuzz" => fuzz_exp::run(opts),
        "trace" => trace_exp::run(opts),
        // Names are validated before any experiment runs.
        other => unreachable!("unvalidated experiment name {other:?}"),
    }
}

/// Run one experiment, converting a panic anywhere inside it into a
/// synthesized FAIL report so the rest of the sweep still runs.
fn run_isolated(name: &str, opts: &ExpOptions) -> ExpReport {
    match catch_unwind(AssertUnwindSafe(|| run_one(name, opts))) {
        Ok(report) => report,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            ExpReport {
                name: name.to_string(),
                tables: Vec::new(),
                checks: vec![Check::new(
                    "experiment completes without panicking",
                    false,
                    msg,
                )],
            }
        }
    }
}

fn main() -> ExitCode {
    let mut opts = ExpOptions::default();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => opts.fast = true,
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.out_dir = v.into();
            }
            "--fuzz-cases" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.fuzz_cases = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--trace" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.trace_path = Some(v.into());
            }
            "--report-json" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.report_json = Some(v.into());
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    // Validate every requested name up front: a typo in the last target
    // must not surface only after hours of earlier experiments.
    if let Some(bad) = targets
        .iter()
        .find(|t| *t != "all" && !EXPERIMENTS.contains(&t.as_str()))
    {
        eprintln!("unknown experiment: {bad}");
        usage();
    }
    let names: Vec<&str> = if targets.iter().any(|t| t == "all") {
        EXPERIMENTS.to_vec()
    } else {
        // Dedupe while preserving first-occurrence order.
        let mut seen = Vec::new();
        for t in &targets {
            if !seen.contains(&t.as_str()) {
                seen.push(t.as_str());
            }
        }
        seen
    };
    let mut all_ok = true;
    let mut reports = Vec::new();
    for name in names {
        let t0 = std::time::Instant::now();
        let report = run_isolated(name, &opts);
        print!("{}", report.render());
        match report.write_csvs(&opts.out_dir) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("warning: could not write CSVs: {e}"),
        }
        println!("({name} took {:.1}s)\n", t0.elapsed().as_secs_f64());
        all_ok &= report.all_passed();
        reports.push(report);
    }
    if let Some(path) = &opts.report_json {
        let doc = common::run_report_json(opts.seed, opts.fast, &reports);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(path, doc) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write JSON report {}: {e}", path.display());
                all_ok = false;
            }
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("some shape checks FAILED");
        ExitCode::FAILURE
    }
}
