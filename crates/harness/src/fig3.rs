//! Figure 3: scalability of performance variability — per-run normalized
//! min/max execution time for `schedbench`, `syncbench` and `BabelStream`
//! as the hardware-thread count grows, on both platforms.
//!
//! The paper's observations: variability grows with the thread count,
//! pronounced for `syncbench` and `BabelStream` at high counts (≥128 on
//! Dardel, ≥30 on Vera), and much less pronounced for `schedbench`
//! (dynamic scheduling self-balances perturbations).

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::{run_many, schedbench, EpccConfig};
use ompvar_bench_stream::{kernel_stats, kernels::StreamConfig, StreamKernel};
use ompvar_core::{fmt_ratio, RunSet, Table};
use ompvar_rt::region::Schedule;
use ompvar_rt::runner::RegionRunner;

/// The three benchmarks of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    /// schedbench, dynamic_1.
    Sched,
    /// syncbench, reduction.
    Sync,
    /// BabelStream (worst kernel).
    Stream,
}

impl Bench {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            Bench::Sched => "schedbench",
            Bench::Sync => "syncbench",
            Bench::Stream => "babelstream",
        }
    }
}

/// Variability envelope of one configuration: the *quartile over runs*
/// of the per-run normalized min and max (25th percentile of the mins,
/// 75th of the maxs). Residual noise hits only a fraction of runs, so a
/// median would miss it, while a worst-case envelope would be dominated
/// by a single rare multi-millisecond IRQ burst; the quartiles capture
/// "a typical bad run".
#[derive(Debug, Clone, Copy)]
pub struct Envelope {
    /// 25th-percentile per-run `min/avg` (≤ 1).
    pub lo: f64,
    /// 75th-percentile per-run `max/avg` (≥ 1).
    pub hi: f64,
}

impl Envelope {
    fn of_runset(rs: &RunSet) -> Envelope {
        Envelope {
            lo: ompvar_core::percentile(&rs.run_norm_mins(), 25.0),
            hi: ompvar_core::percentile(&rs.run_norm_maxs(), 75.0),
        }
    }

    /// Total envelope width (`hi − lo`).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

fn sched_cfg(opts: &ExpOptions) -> EpccConfig {
    let mut cfg = EpccConfig::schedbench_default().fast(opts.outer_reps().min(20));
    if opts.fast {
        cfg.iters_per_thr = 512;
    } else {
        // Keep simulated event counts tractable across the full sweep;
        // per-iteration behaviour is unchanged.
        cfg.iters_per_thr = 2048;
    }
    cfg
}

/// Envelope of one benchmark at one thread count.
pub fn envelope(opts: &ExpOptions, platform: Platform, bench: Bench, n: usize) -> Envelope {
    match bench {
        Bench::Sched => {
            let cfg = sched_cfg(opts);
            let rt = platform.pinned_rt(n);
            let region = schedbench::region(&cfg, Schedule::Dynamic { chunk: 1 }, n);
            Envelope::of_runset(&run_many(&rt, &region, opts.n_runs(), opts.seed))
        }
        Bench::Sync => {
            // Residual noise events are rare (a few per second): the
            // measured window needs enough repetitions to sample them, so
            // fast mode uses *more* (cheap, short) repetitions here.
            let reps = if opts.fast { 60 } else { opts.outer_reps() };
            let cfg = EpccConfig::syncbench_default().fast(reps);
            let rt = platform.pinned_rt(n);
            let cap = crate::fig1::inner_cap(opts, n);
            let inner = syncbench::calibrate_inner_reps(&rt, &cfg, SyncConstruct::Reduction, n, cap);
            let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, n, inner);
            Envelope::of_runset(&run_many(&rt, &region, opts.n_runs(), opts.seed))
        }
        Bench::Stream => {
            let cfg = StreamConfig {
                iterations: opts.stream_iters(),
                ..StreamConfig::default()
            };
            let rt = platform.pinned_rt(n);
            let region = ompvar_bench_stream::region(&cfg, n);
            // Per run: worst normalized extremes across kernels; then the
            // median over runs, like the other benchmarks.
            let mut los = Vec::new();
            let mut his = Vec::new();
            for i in 0..opts.n_runs() {
                let res = rt.run_region(&region, opts.seed + i as u64).expect("experiment region completes");
                let stats = kernel_stats(&res);
                los.push(
                    StreamKernel::ALL
                        .iter()
                        .map(|k| stats[k].norm_min())
                        .fold(f64::INFINITY, f64::min),
                );
                his.push(
                    StreamKernel::ALL
                        .iter()
                        .map(|k| stats[k].norm_max())
                        .fold(f64::NEG_INFINITY, f64::max),
                );
            }
            Envelope {
                lo: ompvar_core::percentile(&los, 25.0),
                hi: ompvar_core::percentile(&his, 75.0),
            }
        }
    }
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut tables = Vec::new();
    let mut checks = Vec::new();
    for platform in [Platform::Dardel, Platform::Vera] {
        let counts = if opts.fast {
            // A low and a high count suffice for the shape in fast mode.
            match platform {
                Platform::Dardel => vec![8, 128],
                Platform::Vera => vec![4, 30],
            }
        } else {
            platform.scaling_threads()
        };
        let mut t = Table::new(
            &format!(
                "Fig 3 ({}): normalized min/max envelope vs threads",
                platform.label()
            ),
            &["bench", "threads", "norm min", "norm max"],
        );
        for bench in [Bench::Sched, Bench::Sync, Bench::Stream] {
            let mut envs = Vec::new();
            for &n in &counts {
                let e = envelope(opts, platform, bench, n);
                t.row(&[
                    bench.label().to_string(),
                    n.to_string(),
                    fmt_ratio(e.lo),
                    fmt_ratio(e.hi),
                ]);
                envs.push((n, e));
            }
            if matches!(bench, Bench::Sync | Bench::Stream) {
                // Shape: high thread counts show a wider envelope.
                let low = envs.first().unwrap();
                let high = envs.last().unwrap();
                checks.push(Check::new(
                    &format!(
                        "{} {}: variability grows with threads",
                        platform.label(),
                        bench.label()
                    ),
                    high.1.width() > low.1.width(),
                    format!(
                        "width {:.4} @ {} thr → {:.4} @ {} thr",
                        low.1.width(),
                        low.0,
                        high.1.width(),
                        high.0
                    ),
                ));
            }
        }
        tables.push(t);
    }
    ExpReport {
        name: "fig3".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "fig3 checks failed:\n{}", rep.render());
    }
}
