//! Figures 6 and 7: the effect of frequency variation on Vera.
//!
//! Sixteen threads pinned to cores, two placements: all 16 cores of one
//! NUMA domain (= one socket on Vera), or 8 + 8 cores across both NUMA
//! domains. A frequency logger samples every core from a spare core, as
//! in the paper. Figure 6 uses `schedbench`, Figure 7 `syncbench`
//! (reduction).
//!
//! The paper's observations: the cross-NUMA placement shows more frequency
//! transitions (the brown/grey regions of Figures 6d/7d) and higher
//! execution-time variability, both run-to-run and across repetitions.
//!
//! Mechanism (modeled): with 16 active cores, a Vera socket sits at its
//! stable all-core turbo bin; with 8 active cores per socket, both
//! sockets run in an unstable few-core turbo state with stochastic droop
//! pulses, and OS daemons waking on the sockets' idle cores keep changing
//! the active-core count, forcing retargets.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::{run_many_full, schedbench, EpccConfig};
use ompvar_core::{fmt_ratio, FreqTrace, RunSet, Table};
use ompvar_rt::config::RegionResult;
use ompvar_rt::region::{RegionSpec, Schedule};

const PLATFORM: Platform = Platform::Vera;

/// Which benchmark drives the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Figure 6: schedbench (static schedule).
    Sched,
    /// Figure 7: syncbench reduction.
    Sync,
}

/// The two placements compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// 16 cores of NUMA domain 0.
    OneNuma,
    /// 8 cores each from NUMA domains 0 and 1.
    TwoNumas,
}

impl Placement {
    fn runtime(&self) -> ompvar_rt::simrt::SimRuntime {
        match self {
            Placement::OneNuma => PLATFORM.numa_rt(&[0], 16),
            Placement::TwoNumas => PLATFORM.numa_rt(&[0, 1], 8),
        }
    }

    /// Cores hosting benchmark threads under this placement.
    pub fn benchmark_cores(&self) -> Vec<usize> {
        match self {
            Placement::OneNuma => (0..16).collect(),
            Placement::TwoNumas => (0..8).chain(16..24).collect(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Placement::OneNuma => "1 NUMA",
            Placement::TwoNumas => "2 NUMAs",
        }
    }
}

fn build_region(driver: Driver, opts: &ExpOptions) -> RegionSpec {
    match driver {
        Driver::Sched => {
            let mut cfg = EpccConfig::schedbench_default().fast(opts.outer_reps().min(30));
            cfg.iters_per_thr = if opts.fast { 256 } else { 1024 };
            schedbench::region(&cfg, Schedule::Static { chunk: 1 }, 16)
        }
        Driver::Sync => {
            let reps = if opts.fast { 40 } else { opts.outer_reps() };
            let cfg = EpccConfig::syncbench_default().fast(reps);
            // Inner count sized for EPCC's ~1 ms test time at 16 threads,
            // so the measured window is long enough to observe frequency
            // events.
            syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, 16, 300)
        }
    }
}

/// One placement's outcome: repetition times and frequency behaviour.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// Per-run repetition times.
    pub runs: RunSet,
    /// Frequency transitions per benchmark core per second, averaged over
    /// runs.
    pub transitions_per_core_sec: f64,
    /// Fraction of logger samples where some benchmark core ran below
    /// its placement's top observed frequency band.
    pub drooped_fraction: f64,
}

/// Run one driver × placement cell.
pub fn outcome(opts: &ExpOptions, driver: Driver, placement: Placement) -> PlacementOutcome {
    let rt = placement.runtime();
    let region = build_region(driver, opts);
    let (runs, full) = run_many_full(&rt, &region, opts.n_runs(), opts.seed);
    let cores = placement.benchmark_cores();
    let mut transitions = 0usize;
    let mut droop_samples = 0usize;
    let mut total_samples = 0usize;
    let mut total_secs = 0.0;
    for res in &full {
        let trace = to_trace(res);
        transitions += trace.transitions_over(&cores, 0.05);
        total_secs += res.wall_us / 1e6;
        // A sample "droops" when any benchmark core is >100 MHz below the
        // maximum frequency observed on benchmark cores in this run.
        let peak = cores
            .iter()
            .map(|&c| trace.band(c).1)
            .fold(f32::NEG_INFINITY, f32::max);
        for i in 0..trace.len() {
            total_samples += 1;
            if cores.iter().any(|&c| trace.core_ghz[i][c] < peak - 0.1) {
                droop_samples += 1;
            }
        }
    }
    PlacementOutcome {
        runs,
        transitions_per_core_sec: transitions as f64
            / (cores.len() as f64 * total_secs.max(1e-9)),
        drooped_fraction: droop_samples as f64 / total_samples.max(1) as f64,
    }
}

/// Median of the per-run CVs: robust against one run being hit by a rare
/// long IRQ burst, which would otherwise dominate a pooled CV.
fn median_cv(rs: &RunSet) -> f64 {
    ompvar_core::percentile(&rs.run_cvs(), 50.0)
}

fn to_trace(res: &RegionResult) -> FreqTrace {
    FreqTrace::new(
        res.freq_samples
            .iter()
            .map(|s| (s.time, s.core_ghz.clone()))
            .collect(),
    )
    .expect("simulated logger emits ordered, rectangular samples")
}

/// Execute Figure 6 or 7 and report.
pub fn run_driver(opts: &ExpOptions, driver: Driver) -> ExpReport {
    let name = match driver {
        Driver::Sched => "fig6",
        Driver::Sync => "fig7",
    };
    let one = outcome(opts, driver, Placement::OneNuma);
    let two = outcome(opts, driver, Placement::TwoNumas);

    let mut t = Table::new(
        &format!(
            "{}: {} on Vera, 16 threads, 1 vs 2 NUMA domains",
            name,
            match driver {
                Driver::Sched => "schedbench (static_1)",
                Driver::Sync => "syncbench (reduction)",
            }
        ),
        &[
            "placement",
            "mean rep µs",
            "pooled cv",
            "run spread",
            "freq trans/core/s",
            "droop frac",
        ],
    );
    for (p, o) in [(Placement::OneNuma, &one), (Placement::TwoNumas, &two)] {
        let pooled = o.runs.pooled();
        t.row(&[
            p.label().to_string(),
            format!("{:.2}", pooled.mean),
            format!("{:.5}", pooled.cv),
            fmt_ratio(o.runs.run_spread()),
            format!("{:.2}", o.transitions_per_core_sec),
            format!("{:.4}", o.drooped_fraction),
        ]);
    }

    let checks = vec![
        Check::new(
            "cross-NUMA placement has more frequency transitions",
            two.transitions_per_core_sec > one.transitions_per_core_sec * 1.5,
            format!(
                "{:.3} vs {:.3} transitions/core/s",
                one.transitions_per_core_sec, two.transitions_per_core_sec
            ),
        ),
        Check::new(
            "cross-NUMA placement has higher repetition variability",
            median_cv(&two.runs) > median_cv(&one.runs),
            format!(
                "median per-run cv {:.5} (1 NUMA) vs {:.5} (2 NUMAs)",
                median_cv(&one.runs),
                median_cv(&two.runs)
            ),
        ),
    ];

    ExpReport {
        name: name.into(),
        tables: vec![t],
        checks,
    }
}

/// Figure 6 entry point.
pub fn run_fig6(opts: &ExpOptions) -> ExpReport {
    run_driver(opts, Driver::Sched)
}

/// Figure 7 entry point.
pub fn run_fig7(opts: &ExpOptions) -> ExpReport {
    run_driver(opts, Driver::Sync)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_fast_mode_shapes_hold() {
        let rep = run_fig6(&ExpOptions::fast());
        assert!(rep.all_passed(), "fig6 checks failed:\n{}", rep.render());
    }

    #[test]
    fn fig7_fast_mode_shapes_hold() {
        let rep = run_fig7(&ExpOptions::fast());
        assert!(rep.all_passed(), "fig7 checks failed:\n{}", rep.render());
    }
}
