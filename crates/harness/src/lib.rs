#![warn(missing_docs)]

//! # ompvar-harness — the paper's experiments
//!
//! One module per table/figure of the evaluation, each producing an
//! [`common::ExpReport`] with paper-style tables and shape checks.

pub mod common;
pub mod table2;

pub use common::{Check, ExpOptions, ExpReport, Platform};
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig67;
pub mod ablation;
pub mod taskbench_exp;
pub mod chunks;
pub mod faults_exp;
pub mod fuzz_exp;
pub mod analyze_exp;
pub mod trace_exp;
pub mod campaign_exp;
pub mod variability;
