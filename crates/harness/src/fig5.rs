//! Figure 5: the effect of simultaneous multithreading on Dardel.
//!
//! Same thread count, two placements: **ST** (one thread per physical
//! core, siblings left idle for the OS) vs. **MT** (both hardware threads
//! of half as many cores). The paper's observations:
//!
//! * (a/d) `schedbench` at 128 threads: MT shows very high variability
//!   among the outer repetitions of each run;
//! * (b/e) `syncbench` at 32 threads: the per-run CV of the repetitions
//!   is much higher under MT, especially for `for`, `single`, `ordered`
//!   and `reduction`;
//! * (c/f) BabelStream at 128 threads: MT widens the normalized min/max
//!   band.
//!
//! Mechanism (modeled): with the sibling idle, most per-core kernel
//! housekeeping runs there, costing only a mild SMT co-run slowdown;
//! with both contexts busy, kernel work must preempt a benchmark thread
//! outright (plus a cache-refill penalty on resume).

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::{run_many, schedbench, EpccConfig};
use ompvar_bench_stream::{kernel_stats, kernels::StreamConfig, StreamKernel};
use ompvar_core::{fmt_ratio, RunSet, Table};
use ompvar_rt::region::Schedule;
use ompvar_rt::runner::RegionRunner;

const PLATFORM: Platform = Platform::Dardel;

/// The constructs the paper singles out as most SMT-sensitive.
pub const SENSITIVE: [SyncConstruct; 4] = [
    SyncConstruct::For,
    SyncConstruct::Single,
    SyncConstruct::Ordered,
    SyncConstruct::Reduction,
];

/// schedbench at high thread count: `(st, mt)` run sets.
///
/// Uses `static_1`: unlike the dynamic schedule (which self-balances
/// around perturbations), a static partition exposes every preemption of
/// any thread directly in the repetition time — the configuration where
/// the paper's MT variability is starkest.
pub fn schedbench_runs(opts: &ExpOptions) -> (RunSet, RunSet) {
    let n = if opts.fast { 64 } else { 128 };
    let mut cfg = EpccConfig::schedbench_default().fast(opts.outer_reps().min(40));
    cfg.iters_per_thr = if opts.fast { 256 } else { 1024 };
    let region = schedbench::region(&cfg, Schedule::Static { chunk: 1 }, n);
    let st = run_many(&PLATFORM.pinned_rt(n), &region, opts.n_runs(), opts.seed);
    let mt = run_many(&PLATFORM.pinned_mt_rt(n), &region, opts.n_runs(), opts.seed);
    (st, mt)
}

/// syncbench per-construct CV comparison at 32 threads: for each
/// construct, `(mean CV over runs under ST, under MT)`.
pub fn syncbench_cvs(opts: &ExpOptions) -> Vec<(SyncConstruct, f64, f64)> {
    let n = 32;
    let reps = if opts.fast { 60 } else { opts.outer_reps() };
    let cfg = EpccConfig::syncbench_default().fast(reps);
    let cap = crate::fig1::inner_cap(opts, n);
    let st_rt = PLATFORM.pinned_rt(n);
    let mt_rt = PLATFORM.pinned_mt_rt(n);
    SyncConstruct::ALL
        .iter()
        .map(|&c| {
            let inner = syncbench::calibrate_inner_reps(&st_rt, &cfg, c, n, cap);
            let region = syncbench::region_with_inner(&cfg, c, n, inner);
            let st = run_many(&st_rt, &region, opts.n_runs(), opts.seed);
            let mt = run_many(&mt_rt, &region, opts.n_runs(), opts.seed);
            let mean_cv = |rs: &RunSet| {
                let cvs = rs.run_cvs();
                cvs.iter().sum::<f64>() / cvs.len() as f64
            };
            (c, mean_cv(&st), mean_cv(&mt))
        })
        .collect()
}

/// Median of a sample.
fn median(xs: &[f64]) -> f64 {
    ompvar_core::percentile(xs, 50.0)
}

/// BabelStream comparison: `(st, mt)` as `(mean kernel time µs, mean
/// absolute intra-run spread µs)`. Absolute spread is the right
/// variability axis here: MT kernels take ~2× longer (half the engaged
/// NUMA domains), which would *dilute* a normalized band even while the
/// microsecond-level spread grows.
pub fn stream_envelopes(opts: &ExpOptions) -> ((f64, f64), (f64, f64)) {
    let n = if opts.fast { 64 } else { 128 };
    let cfg = StreamConfig {
        iterations: opts.stream_iters(),
        ..StreamConfig::default()
    };
    let region = ompvar_bench_stream::region(&cfg, n);
    let envelope = |rt: &ompvar_rt::simrt::SimRuntime| {
        let (mut time_sum, mut spread_sum, mut count) = (0.0, 0.0, 0usize);
        for i in 0..opts.n_runs() {
            let res = rt.run_region(&region, opts.seed + i as u64).expect("experiment region completes");
            let stats = kernel_stats(&res);
            for k in StreamKernel::ALL {
                time_sum += stats[&k].avg_us;
                spread_sum += stats[&k].max_us - stats[&k].min_us;
                count += 1;
            }
        }
        (time_sum / count as f64, spread_sum / count as f64)
    };
    (
        envelope(&PLATFORM.pinned_rt(n)),
        envelope(&PLATFORM.pinned_mt_rt(n)),
    )
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut tables = Vec::new();
    let mut checks = Vec::new();

    // (a/d) schedbench.
    let (st, mt) = schedbench_runs(opts);
    let mut t = Table::new(
        "Fig 5a/5d: schedbench per-run intra-run spread (max/min of reps), Dardel",
        &["run #", "ST", "MT"],
    );
    for i in 0..st.n_runs() {
        t.row(&[
            (i + 1).to_string(),
            fmt_ratio(st.runs[i].summary().spread()),
            fmt_ratio(mt.runs[i].summary().spread()),
        ]);
    }
    tables.push(t);
    let st_w = median(&st.run_cvs());
    let mt_w = median(&mt.run_cvs());
    checks.push(Check::new(
        "schedbench: MT has higher repetition variability than ST",
        mt_w > st_w,
        format!("median per-run cv ST {st_w:.5} vs MT {mt_w:.5}"),
    ));

    // (b/e) syncbench CVs.
    let cvs = syncbench_cvs(opts);
    let mut t = Table::new(
        "Fig 5b/5e: syncbench mean per-run CV, 32 threads, Dardel",
        &["construct", "ST cv", "MT cv"],
    );
    for (c, s, m) in &cvs {
        t.row(&[c.label().to_string(), format!("{s:.5}"), format!("{m:.5}")]);
    }
    tables.push(t);
    let worse = SENSITIVE
        .iter()
        .filter(|c| {
            cvs.iter()
                .find(|(cc, _, _)| cc == *c)
                .map(|(_, s, m)| m > s)
                .unwrap_or(false)
        })
        .count();
    checks.push(Check::new(
        "syncbench: MT raises CV for most SMT-sensitive constructs",
        worse >= 3,
        format!("{worse}/4 of for/single/ordered/reduction worse under MT"),
    ));

    // (c/f) BabelStream.
    let ((st_time, st_spread), (mt_time, mt_spread)) = stream_envelopes(opts);
    let mut t = Table::new(
        "Fig 5c/5f: BabelStream mean kernel time and intra-run spread (µs), Dardel",
        &["config", "mean kernel µs", "mean max−min µs"],
    );
    t.row(&["ST".into(), fmt_ratio(st_time), fmt_ratio(st_spread)]);
    t.row(&["MT".into(), fmt_ratio(mt_time), fmt_ratio(mt_spread)]);
    tables.push(t);
    checks.push(Check::new(
        "babelstream: no benefit from SMT (MT clearly slower)",
        mt_time > st_time * 1.5,
        format!("mean kernel ST {st_time:.1} µs vs MT {mt_time:.1} µs"),
    ));
    checks.push(Check::new(
        "babelstream: MT has larger absolute intra-run spread",
        mt_spread > st_spread,
        format!("mean max−min ST {st_spread:.1} µs vs MT {mt_spread:.1} µs"),
    ));

    ExpReport {
        name: "fig5".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "fig5 checks failed:\n{}", rep.render());
    }
}
