//! The `variability` experiment: causal variability attribution +
//! streaming cross-run analytics (`ompvar-variability/1`).
//!
//! Where the paper can only *correlate* run-to-run variability with
//! configuration knobs, the simulator's attribution ledger gives the
//! causal decomposition: every cell below runs with attribution enabled
//! and every nanosecond of wall time comes back charged to a typed
//! [`AttrSource`] (or to useful compute). The experiment sweeps a
//! construct × interference grid on pinned Vera threads:
//!
//! * workloads: `sched` (schedbench `dynamic,1` — the paper's most
//!   schedule-sensitive loop) and `sync` (syncbench `barrier` — the
//!   noise-amplifying construct);
//! * configurations: `sterile` (no interference — the control),
//!   `noise` (a machine-wide kernel-noise storm), `freq_cap` (a
//!   fault-injected frequency cap) and `stall` (a one-shot stall of
//!   rank 1, the classic straggler).
//!
//! Every `(cell, run)` pair is one unit on the fault-tolerant campaign
//! executor, so `--jobs N` shards the measurement matrix and `--resume`
//! replays it. Per-run results are folded into **streaming mergeable
//! statistics** — [`QuantileSketch`] + [`VarAccum`], whose merges are
//! bit-exact associative — in canonical unit order, which is what makes
//! the final report byte-identical at any worker count and across
//! kill-and-resume. Artifacts:
//!
//! * `<out>/variability.json` — the `ompvar-variability/1` document:
//!   per-cell wall-time dispersion (mean/CoV/quantiles), per-source
//!   attribution shares (summing to 1.0), and the top variance sources;
//! * `<out>/variability.trace.json` — a Chrome trace of one attributed
//!   `sched/noise` run with the per-source cumulative counter tracks
//!   (`attr_cum_ms`), the "where did my time go" timeline view.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_core::Table;
use ompvar_bench_epcc::{schedbench, syncbench, EpccConfig, SyncConstruct};
use ompvar_obs::json::Value;
use ompvar_obs::{AttrSource, QuantileSketch, RunAttribution, ThreadAttribution, VarAccum, N_SOURCES};
use ompvar_rt::region::{RegionSpec, Schedule};
use ompvar_sim::fault::FaultPlan;
use ompvar_sim::params::SimParams;
use ompvar_sim::time::{SEC, US};
use ompvar_supervisor::{
    atomic_write, attempt_seed, create_shards, name_seed, resolve_jobs, resume_shards,
    run_campaign, Checkpointable, ExecUnit, ExecutorConfig, Header, Outcome, SupervisorConfig,
    UnitError,
};

const PLATFORM: Platform = Platform::Vera;
const THREADS: usize = 8;
/// Every fault fires once the region is warmed up but far from done.
const AT: ompvar_sim::time::Time = 50 * US;

/// Workload axis of the grid (the "construct" dimension).
const WORKLOADS: [&str; 2] = ["sched", "sync"];
/// Interference axis of the grid.
const CONFIGS: [&str; 4] = ["sterile", "noise", "freq_cap", "stall"];

/// Independent runs per cell (ISSUE: fast 6 / full 16).
fn runs_per_cell(opts: &ExpOptions) -> usize {
    if opts.fast {
        6
    } else {
        16
    }
}

/// The schedbench workload: `dynamic,1`, the paper's most
/// schedule-sensitive configuration.
fn sched_region(opts: &ExpOptions) -> RegionSpec {
    let mut cfg = EpccConfig::schedbench_default().fast(if opts.fast { 4 } else { 10 });
    cfg.iters_per_thr = if opts.fast { 128 } else { 512 };
    schedbench::region(&cfg, Schedule::Dynamic { chunk: 1 }, THREADS)
}

/// The syncbench barrier workload: the construct that amplifies a delay
/// on one thread into wait time on all of them.
fn sync_region(opts: &ExpOptions) -> RegionSpec {
    let cfg = EpccConfig::syncbench_default().fast(if opts.fast { 4 } else { 10 });
    syncbench::region_with_inner(
        &cfg,
        SyncConstruct::Barrier,
        THREADS,
        if opts.fast { 16 } else { 64 },
    )
}

fn region_for(workload: &str, opts: &ExpOptions) -> RegionSpec {
    match workload {
        "sched" => sched_region(opts),
        "sync" => sync_region(opts),
        other => unreachable!("unknown workload {other:?}"),
    }
}

/// The interference plan of one configuration. Everything else about the
/// runtime is sterile, so each cell isolates exactly one noise family.
fn plan_for(config: &str) -> FaultPlan {
    match config {
        "noise" => FaultPlan::new().noise_storm(AT, SEC, 20 * US, 50 * US, 0.3),
        "freq_cap" => FaultPlan::new().freq_cap(AT, None, 1.2, None),
        "stall" => FaultPlan::new().task_stall(AT, Some(1), 2e5),
        _ => FaultPlan::new(),
    }
}

/// One attributed run, collapsed to what the streaming aggregation
/// needs. This is the unit payload that goes through the checkpoint
/// manifest, so a resumed campaign replays the exact numbers.
#[derive(Debug, Clone, PartialEq)]
struct VarRun {
    /// Whole-region wall time, ns (rounded).
    wall_ns: u64,
    /// Per-repetition times of the measured interval, ns (rounded).
    rep_ns: Vec<u64>,
    /// Total useful compute across threads, ns.
    useful_ns: f64,
    /// Total per-source charges across threads, ns, in ledger order.
    by_source: [f64; N_SOURCES],
    /// Whether the run satisfied the per-thread conservation invariant.
    conserved: bool,
}

impl Checkpointable for VarRun {
    fn to_ckpt(&self) -> Value {
        Value::Obj(vec![
            ("wall_ns".into(), Value::Num(self.wall_ns as f64)),
            (
                "rep_ns".into(),
                Value::Arr(self.rep_ns.iter().map(|&r| Value::Num(r as f64)).collect()),
            ),
            ("useful_ns".into(), Value::Num(self.useful_ns)),
            (
                "by_source".into(),
                Value::Arr(self.by_source.iter().map(|&x| Value::Num(x)).collect()),
            ),
            ("conserved".into(), Value::Bool(self.conserved)),
        ])
    }

    fn from_ckpt(v: &Value) -> Option<VarRun> {
        let nums = |v: &Value| -> Option<Vec<f64>> {
            v.as_arr()?.iter().map(Value::as_f64).collect()
        };
        let src = nums(v.get("by_source")?)?;
        if src.len() != N_SOURCES {
            return None;
        }
        let mut by_source = [0.0; N_SOURCES];
        by_source.copy_from_slice(&src);
        Some(VarRun {
            wall_ns: v.get("wall_ns")?.as_f64()? as u64,
            rep_ns: nums(v.get("rep_ns")?)?.into_iter().map(|x| x as u64).collect(),
            useful_ns: v.get("useful_ns")?.as_f64()?,
            by_source,
            conserved: v.get("conserved")?.as_bool()?,
        })
    }
}

/// One attributed measurement run of a cell.
fn measure(region: &RegionSpec, config: &str, seed: u64) -> Result<VarRun, UnitError> {
    let rt = PLATFORM
        .pinned_rt(THREADS)
        .with_params(SimParams::sterile())
        .with_faults(plan_for(config))
        .with_time_limit(10 * SEC)
        .with_attribution(true);
    match rt.run(region, seed) {
        Ok(res) => {
            let attr = res
                .attribution
                .as_ref()
                .expect("attributed sim run returns a ledger");
            let mut by_source = [0.0; N_SOURCES];
            for (i, &s) in AttrSource::ALL.iter().enumerate() {
                by_source[i] = attr.total(s);
            }
            Ok(VarRun {
                wall_ns: (res.wall_us * 1e3).round() as u64,
                rep_ns: res.reps().iter().map(|&us| (us * 1e3).round() as u64).collect(),
                useful_ns: attr.useful_total(),
                by_source,
                conserved: attr.check_conservation(res.wall_us * 1e3, 1e-6).is_ok(),
            })
        }
        Err(e) => Err(UnitError::from_rt(&e)),
    }
}

/// Streaming per-cell aggregate, folded run by run in canonical unit
/// order. Every field merges associatively (integer sketch/moment state,
/// fixed-order f64 sums), so the derived report is byte-identical at any
/// `--jobs` count and across resume.
struct CellAgg {
    name: String,
    /// Per-run wall times.
    wall: VarAccum,
    /// Per-repetition times, merged sketch-by-sketch (one per run).
    reps: QuantileSketch,
    useful_ns: f64,
    by_source: [f64; N_SOURCES],
    /// Per-source per-run totals — the "which source varies" view.
    src_var: [VarAccum; N_SOURCES],
    runs: usize,
    conserved: bool,
}

impl CellAgg {
    fn new(name: &str) -> CellAgg {
        CellAgg {
            name: name.to_string(),
            wall: VarAccum::new(),
            reps: QuantileSketch::new(),
            useful_ns: 0.0,
            by_source: [0.0; N_SOURCES],
            src_var: [VarAccum::new(); N_SOURCES],
            runs: 0,
            conserved: true,
        }
    }

    fn fold(&mut self, run: &VarRun) {
        self.wall.record(run.wall_ns);
        // Each run contributes a sketch of its own repetitions; the cell
        // keeps the merge (exactly equal to bulk-recording, by the
        // sketch's merge law — this is the cross-run streaming path).
        let mut s = QuantileSketch::new();
        for &r in &run.rep_ns {
            s.record(r);
        }
        self.reps.merge(&s);
        self.useful_ns += run.useful_ns;
        for i in 0..N_SOURCES {
            self.by_source[i] += run.by_source[i];
            self.src_var[i].record(run.by_source[i].round() as u64);
        }
        self.runs += 1;
        self.conserved &= run.conserved;
    }

    /// The cell's aggregate ledger as a [`RunAttribution`], for shares.
    fn attr(&self) -> RunAttribution {
        let mut t = ThreadAttribution::new(0);
        t.useful_ns = self.useful_ns;
        t.by_source = self.by_source;
        RunAttribution { threads: vec![t], samples: Vec::new() }
    }

    /// Total ns charged to noise sources.
    fn noise_ns(&self) -> f64 {
        AttrSource::ALL
            .iter()
            .filter(|s| s.is_noise())
            .map(|&s| self.by_source[s.index()])
            .sum()
    }

    /// Sources ranked by the dispersion of their per-run totals
    /// (descending standard deviation, ties by ledger order), zero-mean
    /// sources omitted — "which sources drive the variability".
    fn top_sources(&self) -> Vec<(AttrSource, &VarAccum)> {
        let mut v: Vec<(AttrSource, &VarAccum)> = AttrSource::ALL
            .iter()
            .map(|&s| (s, &self.src_var[s.index()]))
            .filter(|(_, a)| a.mean() > 0.0)
            .collect();
        v.sort_by(|a, b| {
            b.1.std()
                .partial_cmp(&a.1.std())
                .unwrap()
                .then(a.0.cmp(&b.0))
        });
        v
    }
}

/// The `ompvar-variability/1` document. Built as a [`Value`] tree and
/// serialized with the hand-rolled writer, so field order is fixed and
/// the bytes are reproducible for a given run.
fn variability_json(opts: &ExpOptions, cells: &[CellAgg]) -> String {
    let q = |s: &QuantileSketch, q: f64| Value::Num(s.quantile(q).unwrap_or(0) as f64);
    let cell_val = |c: &CellAgg| {
        let shares = c.attr().shares();
        Value::Obj(vec![
            ("name".into(), Value::Str(c.name.clone())),
            ("runs".into(), Value::Num(c.runs as f64)),
            (
                "wall_ns".into(),
                Value::Obj(vec![
                    ("mean".into(), Value::Num(c.wall.mean())),
                    ("std".into(), Value::Num(c.wall.std())),
                    ("cov".into(), Value::Num(c.wall.cov())),
                    ("min".into(), Value::Num(c.wall.min().unwrap_or(0) as f64)),
                    ("max".into(), Value::Num(c.wall.max().unwrap_or(0) as f64)),
                ]),
            ),
            (
                "rep_ns".into(),
                Value::Obj(vec![
                    ("count".into(), Value::Num(c.reps.count() as f64)),
                    ("p50".into(), q(&c.reps, 0.50)),
                    ("p95".into(), q(&c.reps, 0.95)),
                    ("p99".into(), q(&c.reps, 0.99)),
                    ("max".into(), Value::Num(c.reps.max().unwrap_or(0) as f64)),
                    ("iqr".into(), Value::Num(c.reps.iqr().unwrap_or(0) as f64)),
                ]),
            ),
            (
                "shares".into(),
                Value::Obj(
                    shares
                        .iter()
                        .map(|&(n, s)| (n.to_string(), Value::Num(s)))
                        .collect(),
                ),
            ),
            ("noise_ns".into(), Value::Num(c.noise_ns())),
            ("conserved".into(), Value::Bool(c.conserved)),
            (
                "top_sources".into(),
                Value::Arr(
                    c.top_sources()
                        .iter()
                        .take(3)
                        .map(|(s, a)| {
                            Value::Obj(vec![
                                ("source".into(), Value::Str(s.name().to_string())),
                                ("mean_ns".into(), Value::Num(a.mean())),
                                ("std_ns".into(), Value::Num(a.std())),
                                ("cov".into(), Value::Num(a.cov())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    };
    let mut sources = vec![Value::Str("useful_compute".into())];
    sources.extend(AttrSource::ALL.iter().map(|s| Value::Str(s.name().into())));
    let doc = Value::Obj(vec![
        ("schema".into(), Value::Str("ompvar-variability/1".into())),
        ("seed".into(), Value::Num(opts.seed as f64)),
        ("fast".into(), Value::Bool(opts.fast)),
        ("platform".into(), Value::Str(PLATFORM.label().into())),
        ("threads".into(), Value::Num(THREADS as f64)),
        ("runs_per_cell".into(), Value::Num(runs_per_cell(opts) as f64)),
        ("sources".into(), Value::Arr(sources)),
        ("cells".into(), Value::Arr(cells.iter().map(cell_val).collect())),
    ]);
    let mut s = ompvar_obs::json::write(&doc);
    s.push('\n');
    s
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let runs = runs_per_cell(opts);
    let cell_names: Vec<String> = WORKLOADS
        .iter()
        .flat_map(|wl| CONFIGS.iter().map(move |cfg| format!("{wl}/{cfg}")))
        .collect();

    // One executor unit per (cell, run): the measurement matrix shards
    // across `--jobs` workers and journals into the campaign's
    // checkpoint shards for kill-and-resume.
    let mut unit_names = Vec::new();
    for cell in &cell_names {
        for i in 0..runs {
            unit_names.push(format!("{cell}/{i}"));
        }
    }
    let header = Header {
        seed: opts.seed,
        fast: opts.fast,
        targets: unit_names.clone(),
    };
    let ckpt_dir = opts.checkpoint_dir();
    let jobs = resolve_jobs(opts.jobs);
    let opened = if opts.resume.is_some() {
        resume_shards(&ckpt_dir, "variability", &header, jobs)
            .map(|(ms, merged)| (Some(ms), merged))
            .map_err(|e| e.to_string())
    } else {
        create_shards(&ckpt_dir, "variability", &header, jobs)
            .map(|ms| (Some(ms), Vec::new()))
            .map_err(|e| e.to_string())
    };
    let (manifests, replay) = opened.unwrap_or_else(|e| {
        eprintln!("warning: no variability manifest under {}: {e}; running unjournaled",
            ckpt_dir.display());
        (None, Vec::new())
    });

    let seed = opts.seed;
    let fast = opts.fast;
    let units: Vec<ExecUnit<VarRun>> = unit_names
        .iter()
        .map(|name| {
            let name = name.clone();
            let opts_probe = ExpOptions { fast, seed, ..ExpOptions::fast() };
            ExecUnit::new(name.clone(), move |attempt| {
                let mut parts = name.split('/');
                let (wl, cfg) = (parts.next().unwrap(), parts.next().unwrap());
                let region = region_for(wl, &opts_probe);
                // Decorrelated per-unit seed stream; attempt 0 keeps the
                // base stream so an unretried campaign is reproducible.
                let s = attempt_seed(seed ^ name_seed(&name), attempt);
                measure(&region, cfg, s)
            })
        })
        .collect();
    let exec_cfg = ExecutorConfig {
        jobs,
        unit_timeout: opts.unit_timeout,
        supervisor: SupervisorConfig {
            seed: opts.seed,
            max_retries: opts.max_retries.unwrap_or(2),
            sleep: false,
            ..SupervisorConfig::default()
        },
    };
    let campaign = run_campaign(&exec_cfg, &units, manifests, &replay, None, None);

    // Fold into per-cell streaming aggregates. `campaign.results` is in
    // canonical unit order regardless of worker count, so the fold order
    // — and with it every derived f64 — is identical at any `--jobs`.
    let mut cells: Vec<CellAgg> = cell_names.iter().map(|n| CellAgg::new(n)).collect();
    let mut failed_units: Vec<String> = Vec::new();
    for r in &campaign.results {
        match &r.outcome {
            Outcome::Completed { value, .. } => cells[r.index / runs].fold(value),
            Outcome::Quarantined { .. } => failed_units.push(r.name.clone()),
        }
    }

    // ---- Tables --------------------------------------------------------
    let ms = |ns: f64| format!("{:.3}", ns / 1e6);
    let us_of = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
    let mut t_disp = Table::new(
        "Variability: wall-time dispersion per cell (Vera, 8 pinned threads)",
        &["cell", "runs", "mean ms", "cov", "rep p50 µs", "rep p99 µs", "rep max µs"],
    );
    for c in &cells {
        t_disp.row(&[
            c.name.clone(),
            c.runs.to_string(),
            ms(c.wall.mean()),
            format!("{:.4}", c.wall.cov()),
            us_of(c.reps.quantile(0.50).unwrap_or(0)),
            us_of(c.reps.quantile(0.99).unwrap_or(0)),
            us_of(c.reps.max().unwrap_or(0)),
        ]);
    }
    let mut t_shares = Table::new(
        "Attribution: where did the time go (share of accounted time per cell)",
        &["cell", "useful", "noise", "sync_wait", "mem", "runtime", "top noise source"],
    );
    for c in &cells {
        let shares = c.attr().shares();
        let share = |name: &str| {
            shares
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0.0, |&(_, s)| s)
        };
        let noise: f64 = AttrSource::ALL
            .iter()
            .filter(|s| s.is_noise())
            .map(|s| share(s.name()))
            .sum();
        let top_noise = c
            .top_sources()
            .into_iter()
            .find(|(s, _)| s.is_noise())
            .map_or("-".to_string(), |(s, _)| s.name().to_string());
        t_shares.row(&[
            c.name.clone(),
            format!("{:.4}", share("useful_compute")),
            format!("{:.4}", noise),
            format!(
                "{:.4}",
                share("sync_contention") + share("noise_delayed_arrival")
            ),
            format!("{:.4}", share("mem_contention")),
            format!("{:.4}", share("runtime_overhead")),
            top_noise,
        ]);
    }
    let mut t_top = Table::new(
        "Top variance sources per cell (by per-run std of the charge)",
        &["cell", "source", "mean µs", "std µs", "cov"],
    );
    for c in &cells {
        for (s, a) in c.top_sources().into_iter().take(2) {
            t_top.row(&[
                c.name.clone(),
                s.name().to_string(),
                format!("{:.1}", a.mean() / 1e3),
                format!("{:.1}", a.std() / 1e3),
                format!("{:.4}", a.cov()),
            ]);
        }
    }

    // ---- Artifacts -----------------------------------------------------
    let mut checks = Vec::new();
    let json_path = opts.out_dir.join("variability.json");
    let _ = std::fs::create_dir_all(&opts.out_dir);
    let doc = variability_json(opts, &cells);
    let wrote = atomic_write(&json_path, doc.as_bytes());
    checks.push(Check::new(
        "ompvar-variability/1 report written",
        wrote.is_ok(),
        match &wrote {
            Ok(()) => format!("{} ({} bytes)", json_path.display(), doc.len()),
            Err(e) => format!("{}: {e}", json_path.display()),
        },
    ));

    // One representative attributed + traced run of `sched/noise` for the
    // per-source cumulative counter tracks ("where did my time go", over
    // time, in a Perfetto-loadable timeline).
    let trace_path = opts.out_dir.join("variability.trace.json");
    let traced = PLATFORM
        .pinned_rt(THREADS)
        .with_params(SimParams::sterile())
        .with_faults(plan_for("noise"))
        .with_time_limit(10 * SEC)
        .with_tracing(true)
        .with_attribution(true)
        .run(&region_for("sched", opts), opts.seed);
    match traced {
        Ok(res) => {
            let trace = res.trace.as_ref().expect("traced run records a trace");
            let attr = res.attribution.as_ref().expect("attributed run has a ledger");
            let doc = ompvar_obs::chrome_trace_attr(
                trace,
                &[],
                &attr.samples,
                "ompvar variability (Vera, sched/noise, attributed)",
            );
            let wrote = atomic_write(&trace_path, doc.as_bytes());
            checks.push(Check::new(
                "attribution counter tracks exported",
                wrote.is_ok() && doc.contains("attr_cum_ms") && !attr.samples.is_empty(),
                format!(
                    "{} ({} bytes, {} ledger samples)",
                    trace_path.display(),
                    doc.len(),
                    attr.samples.len()
                ),
            ));
        }
        Err(e) => checks.push(Check::new(
            "attribution counter tracks exported",
            false,
            format!("traced sched/noise run failed: {e}"),
        )),
    }

    // ---- Shape checks --------------------------------------------------
    let cell = |name: &str| cells.iter().find(|c| c.name == name).unwrap();
    checks.push(Check::new(
        "every unit completed",
        failed_units.is_empty(),
        if failed_units.is_empty() {
            format!("{} unit(s)", campaign.results.len())
        } else {
            format!("quarantined: {}", failed_units.join(", "))
        },
    ));
    checks.push(Check::new(
        "every run conserves attributed time",
        cells.iter().all(|c| c.conserved),
        cells
            .iter()
            .map(|c| format!("{}:{}", c.name, if c.conserved { "ok" } else { "VIOLATED" }))
            .collect::<Vec<_>>()
            .join(" "),
    ));
    let sterile_noise: f64 = WORKLOADS.iter().map(|wl| cell(&format!("{wl}/sterile")).noise_ns()).sum();
    checks.push(Check::new(
        "sterile cells charge exactly 0 ns to every noise source",
        sterile_noise == 0.0,
        format!("total noise charge {sterile_noise} ns across sterile cells"),
    ));
    let share_errs: Vec<String> = cells
        .iter()
        .filter_map(|c| {
            let sum: f64 = c.attr().shares().iter().map(|&(_, s)| s).sum();
            ((sum - 1.0).abs() > 1e-9).then(|| format!("{} sums to {sum}", c.name))
        })
        .collect();
    checks.push(Check::new(
        "per-cell attribution shares sum to 1.0",
        share_errs.is_empty(),
        if share_errs.is_empty() {
            format!("{} cells within 1e-9", cells.len())
        } else {
            share_errs.join("; ")
        },
    ));
    let pre = |c: &CellAgg| c.by_source[AttrSource::Preemption.index()];
    checks.push(Check::new(
        "noise storm charges preemption in every noise cell",
        WORKLOADS.iter().all(|wl| pre(cell(&format!("{wl}/noise"))) > 0.0),
        WORKLOADS
            .iter()
            .map(|wl| format!("{wl}: {:.0} ns", pre(cell(&format!("{wl}/noise")))))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    let sub = |c: &CellAgg| c.by_source[AttrSource::SubNominalFreq.index()];
    checks.push(Check::new(
        "frequency cap charges sub-nominal frequency (and only when capped)",
        WORKLOADS
            .iter()
            .all(|wl| sub(cell(&format!("{wl}/freq_cap"))) > 0.0 && sub(cell(&format!("{wl}/sterile"))) == 0.0),
        WORKLOADS
            .iter()
            .map(|wl| {
                format!(
                    "{wl}: capped {:.0} ns, sterile {:.0} ns",
                    sub(cell(&format!("{wl}/freq_cap"))),
                    sub(cell(&format!("{wl}/sterile")))
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    ));
    let stall_cell = cell("sync/stall");
    checks.push(Check::new(
        "a straggler stall charges the victim and its barrier waiters",
        stall_cell.by_source[AttrSource::FaultStall.index()] > 0.0
            && stall_cell.by_source[AttrSource::NoiseDelayedArrival.index()] > 0.0,
        format!(
            "fault_stall {:.0} ns, noise_delayed_arrival {:.0} ns",
            stall_cell.by_source[AttrSource::FaultStall.index()],
            stall_cell.by_source[AttrSource::NoiseDelayedArrival.index()]
        ),
    ));
    checks.push(Check::new(
        "noise raises wall-time dispersion over the sterile control",
        WORKLOADS
            .iter()
            .all(|wl| cell(&format!("{wl}/noise")).wall.cov() > cell(&format!("{wl}/sterile")).wall.cov()),
        WORKLOADS
            .iter()
            .map(|wl| {
                format!(
                    "{wl}: noise cov {:.5} vs sterile cov {:.5}",
                    cell(&format!("{wl}/noise")).wall.cov(),
                    cell(&format!("{wl}/sterile")).wall.cov()
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    ));

    ExpReport {
        name: "variability".into(),
        tables: vec![t_disp, t_shares, t_top],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_obs::json::parse;

    fn opts(tag: &str) -> ExpOptions {
        let out =
            std::env::temp_dir().join(format!("ompvar_variability_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        ExpOptions { out_dir: out, ..ExpOptions::fast() }
    }

    #[test]
    fn variability_checks_pass_and_report_parses() {
        let o = opts("pass");
        let rep = run(&o);
        for c in &rep.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
        let doc = std::fs::read_to_string(o.out_dir.join("variability.json")).unwrap();
        let v = parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("ompvar-variability/1")
        );
        let cells = v.get("cells").and_then(Value::as_arr).unwrap();
        assert_eq!(cells.len(), WORKLOADS.len() * CONFIGS.len());
        for c in cells {
            // Shares sum to 1 in the serialized document too.
            let shares = c.get("shares").unwrap();
            let sum: f64 = [
                "useful_compute",
                "preemption",
                "migration",
                "smt_corun",
                "subnominal_freq",
                "timer_tick",
                "fault_stall",
                "noise_delayed_arrival",
                "sync_contention",
                "mem_contention",
                "runtime_overhead",
            ]
            .iter()
            .map(|n| shares.get(n).and_then(Value::as_f64).unwrap())
            .sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: shares sum {sum}", doc);
            assert_eq!(c.get("conserved").and_then(Value::as_bool), Some(true));
        }
        // The Chrome artifact parses and carries the counter tracks.
        let trace = std::fs::read_to_string(o.out_dir.join("variability.trace.json")).unwrap();
        parse(&trace).expect("valid chrome trace");
        assert!(trace.contains("attr_cum_ms"));
        let _ = std::fs::remove_dir_all(&o.out_dir);
    }

    /// The acceptance bar: the `ompvar-variability/1` document is
    /// byte-identical across `--jobs 1` and `--jobs 4`.
    #[test]
    fn report_is_byte_identical_across_jobs() {
        let o1 = ExpOptions { jobs: 1, ..opts("jobs1") };
        let o4 = ExpOptions { jobs: 4, ..opts("jobs4") };
        let r1 = run(&o1);
        let r4 = run(&o4);
        // Check details embed the (distinct) output paths; the measured
        // content — every table cell — must match exactly.
        for (t1, t4) in r1.tables.iter().zip(r4.tables.iter()) {
            assert_eq!(t1.render(), t4.render());
        }
        let d1 = std::fs::read(o1.out_dir.join("variability.json")).unwrap();
        let d4 = std::fs::read(o4.out_dir.join("variability.json")).unwrap();
        assert_eq!(d1, d4, "variability.json differs between --jobs 1 and --jobs 4");
        let _ = std::fs::remove_dir_all(&o1.out_dir);
        let _ = std::fs::remove_dir_all(&o4.out_dir);
    }

    /// Kill-and-resume: a campaign resumed from its own shard manifests
    /// replays every unit and produces the identical report.
    #[test]
    fn report_survives_resume() {
        let o = opts("resume");
        let fresh = run(&o);
        let d_fresh = std::fs::read(o.out_dir.join("variability.json")).unwrap();
        let resumed = run(&ExpOptions { resume: Some(o.checkpoint_dir()), ..o.clone() });
        let d_resumed = std::fs::read(o.out_dir.join("variability.json")).unwrap();
        assert_eq!(fresh.render(), resumed.render());
        assert_eq!(d_fresh, d_resumed, "variability.json changed across resume");
        let _ = std::fs::remove_dir_all(&o.out_dir);
    }
}
