//! Shared experiment scaffolding: platforms, runtime construction, and
//! the experiment report type.

use ompvar_rt::config::RtConfig;
use ompvar_rt::simrt::{FreqLoggerCfg, SimRuntime};

use ompvar_core::Table;
use ompvar_obs::json::Value;
use ompvar_topology::{MachineSpec, NumaId, Places, ProcBind};
use std::path::PathBuf;

/// The two platforms of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// HPE Cray EX, 2× AMD EPYC Zen2, 128 cores / 256 HW threads.
    Dardel,
    /// 2× Intel Xeon Gold 6130, 32 cores, no SMT.
    Vera,
}

impl Platform {
    /// Machine model.
    pub fn machine(&self) -> MachineSpec {
        match self {
            Platform::Dardel => MachineSpec::dardel(),
            Platform::Vera => MachineSpec::vera(),
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            Platform::Dardel => "Dardel",
            Platform::Vera => "Vera",
        }
    }

    /// Thread counts used in the scalability figures. The top count
    /// spares two hardware threads for the OS (254 of 256 on Dardel, 30
    /// of 32 on Vera), as in the paper.
    pub fn scaling_threads(&self) -> Vec<usize> {
        match self {
            Platform::Dardel => vec![4, 8, 16, 32, 64, 128, 254],
            Platform::Vera => vec![2, 4, 8, 16, 30],
        }
    }

    /// Place list for `n` threads in the ST style: one thread per
    /// physical core, SMT siblings left idle. For counts above the core
    /// count (Dardel's 254), falls back to SMT-packed placement.
    pub fn st_places(&self, n: usize) -> Places {
        let m = self.machine();
        if n <= m.n_cores() {
            Places::one_per_core(&m, n)
        } else {
            assert!(n <= m.n_hw_threads(), "{n} exceeds {}", m.n_hw_threads());
            Places::smt_packed(&m, n.div_ceil(m.smt))
        }
    }

    /// Place list for `n` threads in the MT style: both hardware threads
    /// of each core used before moving to the next core.
    pub fn mt_places(&self, n: usize) -> Places {
        let m = self.machine();
        assert!(m.smt > 1, "{} has no SMT", self.label());
        assert!(n <= m.n_hw_threads());
        Places::smt_packed(&m, n.div_ceil(m.smt))
    }

    /// Pinned (close) simulated runtime for `n` ST threads.
    pub fn pinned_rt(&self, n: usize) -> SimRuntime {
        SimRuntime::new(
            self.machine(),
            RtConfig {
                places: self.st_places(n),
                bind: ProcBind::Close,
            },
        )
    }

    /// Pinned runtime in the MT configuration.
    pub fn pinned_mt_rt(&self, n: usize) -> SimRuntime {
        SimRuntime::new(
            self.machine(),
            RtConfig {
                places: self.mt_places(n),
                bind: ProcBind::Close,
            },
        )
    }

    /// Unbound runtime (`OMP_PROC_BIND=false`).
    pub fn unbound_rt(&self) -> SimRuntime {
        SimRuntime::new(self.machine(), RtConfig::unbound())
    }

    /// Pinned runtime over the cores of specific NUMA domains (the Vera
    /// Figure 6/7 placements), with the frequency logger on a spare core
    /// as in the paper.
    pub fn numa_rt(&self, numas: &[usize], per_numa: usize) -> SimRuntime {
        let m = self.machine();
        let numas: Vec<NumaId> = numas.iter().map(|&d| NumaId(d)).collect();
        let places = Places::cores_of_numas(&m, &numas, per_numa);
        // Spare core for the logger: last core of the last socket. The
        // paper's Python logger polled sysfs continuously; sample fast
        // enough (2 ms) to resolve individual turbo droop pulses.
        let logger_cpu = m.n_cores() - 1;
        SimRuntime::new(
            m,
            RtConfig {
                places,
                bind: ProcBind::Close,
            },
        )
        .with_freq_logger(FreqLoggerCfg {
            cpu: Some(logger_cpu),
            period: 2 * ompvar_sim::time::MS,
            cost: 20 * ompvar_sim::time::US,
        })
    }
}

/// Options common to all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Reduced repetition counts for quick runs and tests.
    pub fast: bool,
    /// Base seed; run `i` of an experiment uses `seed + i`.
    pub seed: u64,
    /// Directory for CSV outputs (created on demand).
    pub out_dir: PathBuf,
    /// Fuzz-case budget override for the `fuzz` experiment
    /// (`--fuzz-cases`); `None` uses the experiment's default.
    pub fuzz_cases: Option<u64>,
    /// Chrome trace output path (`--trace`), honored by the `trace`
    /// experiment; `None` defaults to `<out_dir>/trace.json`.
    pub trace_path: Option<PathBuf>,
    /// Machine-readable JSON run-report path (`--report-json`); `None`
    /// writes no report.
    pub report_json: Option<PathBuf>,
    /// Retry budget per experiment for transient failures
    /// (`--max-retries`); `None` uses the supervisor default.
    pub max_retries: Option<u32>,
    /// Stability target for adaptive re-measurement
    /// (`--stability-cov`); `None` uses the policy default.
    pub stability_cov: Option<f64>,
    /// Resume a previous campaign from its checkpoint directory
    /// (`--resume DIR`): completed experiments replay from the manifest
    /// instead of re-running.
    pub resume: Option<PathBuf>,
    /// Worker threads for the campaign executor (`--jobs`). Defaults to
    /// 1 — experiments here *measure*, and concurrent native runs
    /// perturb each other's timing shapes; `--jobs 0` auto-detects for
    /// throughput-oriented campaigns (fuzzing, CI smoke).
    pub jobs: usize,
    /// Per-unit wall-clock deadline enforced by the executor's watchdog
    /// (`--unit-timeout SECS`); `None` disables reaping.
    pub unit_timeout: Option<std::time::Duration>,
    /// Enable the causal attribution ledger on the `trace` experiment's
    /// simulated run (`--attr`): the exported Chrome trace gains the
    /// per-source cumulative counter tracks. The `variability`
    /// experiment always attributes, flag or not.
    pub attr: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            fast: false,
            seed: 20230714, // arbitrary fixed default: SC'23 submission era
            out_dir: PathBuf::from("results"),
            fuzz_cases: None,
            trace_path: None,
            report_json: None,
            max_retries: None,
            stability_cov: None,
            resume: None,
            jobs: 1,
            unit_timeout: None,
            attr: false,
        }
    }
}

impl ExpOptions {
    /// Fast preset (used by tests and `--fast`).
    pub fn fast() -> Self {
        ExpOptions {
            fast: true,
            ..Default::default()
        }
    }

    /// Number of independent runs per configuration (paper: 10).
    pub fn n_runs(&self) -> usize {
        if self.fast {
            4
        } else {
            10
        }
    }

    /// EPCC outer repetitions (paper: 100).
    pub fn outer_reps(&self) -> u32 {
        if self.fast {
            8
        } else {
            100
        }
    }

    /// BabelStream iterations (paper: 100).
    pub fn stream_iters(&self) -> u32 {
        if self.fast {
            12
        } else {
            100
        }
    }

    /// Where this run's checkpoint manifest and supervisor artifacts
    /// live: the `--resume` directory when given, else
    /// `<out_dir>/checkpoint`.
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.resume
            .clone()
            .unwrap_or_else(|| self.out_dir.join("checkpoint"))
    }
}

/// One paper-shape validation check.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being checked (e.g. "pinning reduces run spread").
    pub name: String,
    /// Whether the reproduced data shows the paper's shape.
    pub passed: bool,
    /// Supporting numbers.
    pub detail: String,
}

impl Check {
    /// Build a check result.
    pub fn new(name: &str, passed: bool, detail: String) -> Check {
        Check {
            name: name.to_string(),
            passed,
            detail,
        }
    }
}

/// The outcome of one experiment.
#[derive(Debug, Clone, Default)]
pub struct ExpReport {
    /// Experiment id (e.g. "table2").
    pub name: String,
    /// Paper-style tables.
    pub tables: Vec<Table>,
    /// Shape checks against the paper's qualitative findings.
    pub checks: Vec<Check>,
}

impl ExpReport {
    /// Render everything to a printable string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("==== {} ====\n", self.name));
        for t in &self.tables {
            s.push_str(&t.render());
            s.push('\n');
        }
        for c in &self.checks {
            s.push_str(&format!(
                "[{}] {} — {}\n",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            ));
        }
        s
    }

    /// Whether every shape check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Write all tables as CSVs under `dir`, named
    /// `<experiment>_<index>.csv`.
    pub fn write_csvs(&self, dir: &std::path::Path) -> std::io::Result<Vec<PathBuf>> {
        let mut paths = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            let p = dir.join(format!("{}_{}.csv", self.name, i));
            t.write_csv(&p)?;
            paths.push(p);
        }
        Ok(paths)
    }
}

/// Serialize a whole CLI run — every experiment's tables and shape
/// checks — as a machine-readable JSON document (`--report-json`).
///
/// Hand-rolled like the Chrome exporter: stable field order, every
/// string escaped via [`ompvar_obs::json::escape`], so the output is
/// byte-reproducible for a given run and parses with
/// [`ompvar_obs::json::parse`].
pub fn run_report_json(seed: u64, fast: bool, interrupted: bool, reports: &[ExpReport]) -> String {
    use ompvar_obs::json::escape;
    let mut out = String::new();
    out.push_str("{\"schema\":\"ompvar-run-report/1\",");
    out.push_str(&format!(
        "\"seed\":{seed},\"fast\":{fast},\"interrupted\":{interrupted},"
    ));
    let all = reports.iter().all(ExpReport::all_passed);
    out.push_str(&format!("\"all_passed\":{all},\"experiments\":["));
    for (i, rep) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"passed\":{},\"checks\":[",
            escape(&rep.name),
            rep.all_passed()
        ));
        for (j, c) in rep.checks.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n {{\"name\":\"{}\",\"passed\":{},\"detail\":\"{}\"}}",
                escape(&c.name),
                c.passed,
                escape(&c.detail)
            ));
        }
        out.push_str("],\"tables\":[");
        for (j, t) in rep.tables.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let cells = |row: &[String]| {
                row.iter()
                    .map(|c| format!("\"{}\"", escape(c)))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "\n {{\"title\":\"{}\",\"header\":[{}],\"rows\":[",
                escape(t.title()),
                cells(t.header())
            ));
            for (k, row) in t.rows().iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n  [{}]", cells(row)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("\n]}\n");
    out
}

/// An [`ExpReport`] can live in the checkpoint manifest: the whole
/// report — tables cell-for-cell, checks verbatim — is the payload, so a
/// resumed campaign replays it and the final `--report-json` document is
/// byte-identical to an uninterrupted run's.
impl ompvar_supervisor::Checkpointable for ExpReport {
    fn to_ckpt(&self) -> Value {
        let str_arr = |xs: &[String]| {
            Value::Arr(xs.iter().map(|s| Value::Str(s.clone())).collect())
        };
        let tables = self
            .tables
            .iter()
            .map(|t| {
                Value::Obj(vec![
                    ("title".into(), Value::Str(t.title().to_string())),
                    ("header".into(), str_arr(t.header())),
                    (
                        "rows".into(),
                        Value::Arr(t.rows().iter().map(|r| str_arr(r)).collect()),
                    ),
                ])
            })
            .collect();
        let checks = self
            .checks
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("name".into(), Value::Str(c.name.clone())),
                    ("passed".into(), Value::Bool(c.passed)),
                    ("detail".into(), Value::Str(c.detail.clone())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("tables".into(), Value::Arr(tables)),
            ("checks".into(), Value::Arr(checks)),
        ])
    }

    fn from_ckpt(v: &Value) -> Option<ExpReport> {
        let strings = |v: &Value| -> Option<Vec<String>> {
            v.as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect()
        };
        let name = v.get("name")?.as_str()?.to_string();
        let mut tables = Vec::new();
        for t in v.get("tables")?.as_arr()? {
            let title = t.get("title")?.as_str()?;
            let header = strings(t.get("header")?)?;
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table = Table::new(title, &header_refs);
            for row in t.get("rows")?.as_arr()? {
                table.row(&strings(row)?);
            }
            tables.push(table);
        }
        let mut checks = Vec::new();
        for c in v.get("checks")?.as_arr()? {
            checks.push(Check {
                name: c.get("name")?.as_str()?.to_string(),
                passed: c.get("passed")?.as_bool()?,
                detail: c.get("detail")?.as_str()?.to_string(),
            });
        }
        Some(ExpReport { name, tables, checks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_thread_lists_spare_two() {
        assert_eq!(*Platform::Dardel.scaling_threads().last().unwrap(), 254);
        assert_eq!(*Platform::Vera.scaling_threads().last().unwrap(), 30);
    }

    #[test]
    fn st_places_prefer_distinct_cores() {
        let p = Platform::Dardel.st_places(128);
        let m = Platform::Dardel.machine();
        let resolved = p.resolve(&m);
        assert_eq!(resolved.len(), 128);
        // All first-context hardware threads.
        assert!(resolved.iter().all(|pl| pl.first().0 < 128));
    }

    #[test]
    fn st_places_fall_back_to_smt_for_254() {
        let p = Platform::Dardel.st_places(254);
        let m = Platform::Dardel.machine();
        assert_eq!(p.resolve(&m).len(), 254);
    }

    #[test]
    #[should_panic(expected = "no SMT")]
    fn vera_has_no_mt_mode() {
        Platform::Vera.mt_places(8);
    }

    #[test]
    fn fast_options_shrink_work() {
        let fast = ExpOptions::fast();
        let full = ExpOptions::default();
        assert!(fast.n_runs() < full.n_runs());
        assert!(fast.outer_reps() < full.outer_reps());
        assert_eq!(full.n_runs(), 10);
        assert_eq!(full.outer_reps(), 100);
    }

    #[test]
    fn report_renders_checks() {
        let mut r = ExpReport {
            name: "demo".into(),
            ..Default::default()
        };
        r.checks.push(Check::new("x", true, "ok".into()));
        assert!(r.render().contains("[PASS] x"));
        assert!(r.all_passed());
        r.checks.push(Check::new("y", false, "bad".into()));
        assert!(!r.all_passed());
    }

    #[test]
    fn run_report_json_round_trips_hostile_strings() {
        use ompvar_obs::json::{parse, Value};
        let mut t = Table::new("T \"quoted\"", &["a", "b"]);
        t.row(&["1".into(), "x\ny".into()]);
        let rep = ExpReport {
            name: "demo".into(),
            tables: vec![t],
            checks: vec![Check::new("c", true, "d \\ e".into())],
        };
        let reps = std::slice::from_ref(&rep);
        let doc = run_report_json(7, true, false, reps);
        assert_eq!(doc, run_report_json(7, true, false, reps), "not reproducible");
        let v = parse(&doc).expect("valid JSON");
        assert_eq!(v.get("seed").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("interrupted").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("all_passed").and_then(Value::as_bool), Some(true));
        let exps = v.get("experiments").and_then(Value::as_arr).unwrap();
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0].get("name").and_then(Value::as_str), Some("demo"));
        let tables = exps[0].get("tables").and_then(Value::as_arr).unwrap();
        assert_eq!(
            tables[0].get("title").and_then(Value::as_str),
            Some("T \"quoted\"")
        );
        let rows = tables[0].get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[1].as_str(), Some("x\ny"));
        let checks = exps[0].get("checks").and_then(Value::as_arr).unwrap();
        assert_eq!(checks[0].get("detail").and_then(Value::as_str), Some("d \\ e"));
    }

    #[test]
    fn exp_report_checkpoints_roundtrip_exactly() {
        use ompvar_supervisor::Checkpointable;
        let mut t = Table::new("T \"q\"", &["col a", "col b"]);
        t.row(&["1.25".into(), "x\ny".into()]);
        let rep = ExpReport {
            name: "faults".into(),
            tables: vec![t],
            checks: vec![Check::new("c", false, "d \\ e".into())],
        };
        // Through the manifest's own serialization layer: to JSON text
        // and back, not just Value-to-Value.
        let text = ompvar_obs::json::write(&rep.to_ckpt());
        let back =
            ExpReport::from_ckpt(&ompvar_obs::json::parse(&text).unwrap()).expect("parses");
        assert_eq!(back.name, rep.name);
        assert_eq!(back.tables[0].title(), rep.tables[0].title());
        assert_eq!(back.tables[0].rows(), rep.tables[0].rows());
        assert_eq!(back.checks[0].detail, rep.checks[0].detail);
        assert!(!back.checks[0].passed);
        // The replayed report renders to identical JSON.
        assert_eq!(
            run_report_json(1, true, false, &[back]),
            run_report_json(1, true, false, &[rep])
        );
    }

    #[test]
    fn checkpoint_dir_prefers_resume() {
        let mut o = ExpOptions::fast();
        assert_eq!(o.checkpoint_dir(), PathBuf::from("results/checkpoint"));
        o.resume = Some(PathBuf::from("/tmp/prev"));
        assert_eq!(o.checkpoint_dir(), PathBuf::from("/tmp/prev"));
    }
}
