//! Figure 2: BabelStream execution time (ms) when increasing the number
//! of hardware threads on Dardel (2–254) and Vera (2–30).
//!
//! The paper's observation: execution time *decreases* as threads are
//! added (more cores engage more NUMA domains' bandwidth), flattening as
//! each domain's bandwidth saturates.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_stream::{kernel_stats, kernels::StreamConfig, region, StreamKernel};
use ompvar_core::Table;
use ompvar_rt::runner::RegionRunner;

/// Mean kernel time (ms, averaged over the five kernels) per thread
/// count.
pub fn scaling_series(opts: &ExpOptions, platform: Platform) -> Vec<(usize, f64)> {
    let cfg = StreamConfig {
        iterations: opts.stream_iters(),
        ..StreamConfig::default()
    };
    let mut counts = platform.scaling_threads();
    if counts[0] != 2 {
        counts.insert(0, 2);
    }
    counts
        .into_iter()
        .map(|n| {
            let rt = platform.pinned_rt(n);
            let res = rt.run_region(&region(&cfg, n), opts.seed).expect("experiment region completes");
            let stats = kernel_stats(&res);
            let avg_ms = StreamKernel::ALL
                .iter()
                .map(|k| stats[k].avg_us)
                .sum::<f64>()
                / (StreamKernel::ALL.len() as f64 * 1e3);
            (n, avg_ms)
        })
        .collect()
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut tables = Vec::new();
    let mut checks = Vec::new();
    for platform in [Platform::Dardel, Platform::Vera] {
        let series = scaling_series(opts, platform);
        let mut t = Table::new(
            &format!(
                "Fig 2{}: BabelStream mean kernel time (ms) vs threads on {}",
                if platform == Platform::Dardel { "a" } else { "b" },
                platform.label()
            ),
            &["threads", "mean kernel ms"],
        );
        for &(n, ms) in &series {
            t.row(&[n.to_string(), format!("{ms:.3}")]);
        }
        tables.push(t);

        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        checks.push(Check::new(
            &format!("{}: time decreases with threads", platform.label()),
            last < first * 0.7,
            format!("{first:.2} → {last:.2} ms"),
        ));
        // Never *increases* significantly from one step to the next.
        let monotone = series.windows(2).all(|w| w[1].1 <= w[0].1 * 1.15);
        checks.push(Check::new(
            &format!("{}: scaling is (near-)monotone", platform.label()),
            monotone,
            format!("{series:?}"),
        ));
    }
    ExpReport {
        name: "fig2".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "fig2 checks failed:\n{}", rep.render());
    }
}
