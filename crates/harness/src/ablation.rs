//! Ablation study: remove one modeled variability mechanism at a time and
//! show which observed effect disappears.
//!
//! This experiment goes beyond the paper: because the substrate is a
//! simulator whose noise/DVFS/scheduling mechanisms are explicit, each of
//! the paper's variability classes can be *causally attributed* — not
//! just correlated — to its source:
//!
//! * the frequency-variation effect (Fig 6/7) disappears when DVFS is
//!   frozen, but survives the removal of OS noise;
//! * the unbound blow-ups (Fig 4) disappear when wake migration and
//!   misplacement are disabled, even with all noise still present;
//! * the residual pinned variability (Fig 3) disappears with OS noise
//!   removed, even with DVFS fully active.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::{run_many, EpccConfig};
use ompvar_core::Table;
use ompvar_sim::params::{NoiseParams, SimParams};

/// One model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The full model.
    Full,
    /// OS noise sources removed (DVFS, scheduler churn intact).
    NoNoise,
    /// DVFS frozen at the maximum frequency (noise intact).
    NoFreq,
    /// Both OS noise and DVFS removed.
    NoNoiseNoFreq,
    /// Unbound placement churn removed: no wake migration, no
    /// misplacement, perfect balancer (noise and DVFS intact).
    NoChurn,
}

impl Variant {
    /// All variants in reporting order.
    pub const ALL: [Variant; 5] = [
        Variant::Full,
        Variant::NoNoise,
        Variant::NoFreq,
        Variant::NoNoiseNoFreq,
        Variant::NoChurn,
    ];

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Full => "full",
            Variant::NoNoise => "no-noise",
            Variant::NoFreq => "no-freq",
            Variant::NoNoiseNoFreq => "no-noise-no-freq",
            Variant::NoChurn => "no-churn",
        }
    }

    /// Apply the ablation to a parameter set.
    pub fn apply(&self, mut p: SimParams) -> SimParams {
        match self {
            Variant::Full => p,
            Variant::NoNoise => {
                p.noise = NoiseParams::quiet();
                p.sched.tick_cost = 0;
                p
            }
            Variant::NoFreq => {
                p.freq.pulse_mean_interval = u64::MAX / 4;
                p
            }
            Variant::NoNoiseNoFreq => {
                Variant::NoFreq.apply(Variant::NoNoise.apply(p))
            }
            Variant::NoChurn => {
                p.sched.wake_migrate_prob = 0.0;
                p.sched.wake_misplace_prob = 0.0;
                p.sched.balance_stale_prob = 0.0;
                p
            }
        }
    }
}

/// Frozen-frequency machines need flat turbo tables too (the bin table is
/// part of the machine spec).
fn freeze_clock(platform: Platform) -> ompvar_topology::MachineSpec {
    let mut m = platform.machine();
    let flat = m.clock.max_ghz;
    m.clock.base_ghz = flat;
    m.clock.turbo_bins.clear();
    m
}

/// Cell A — the frequency effect (Vera, 16 threads across 2 NUMA
/// domains, Fig 6 cell): per-variant median per-run CV.
pub fn frequency_cell(opts: &ExpOptions) -> Vec<(Variant, f64)> {
    Variant::ALL
        .iter()
        .map(|&v| {
            let mut rt = Platform::Vera.numa_rt(&[0, 1], 8);
            rt.params = v.apply(rt.params.clone());
            if matches!(v, Variant::NoFreq | Variant::NoNoiseNoFreq) {
                rt.machine = freeze_clock(Platform::Vera);
            }
            let region = {
                // Same workload as fig6's syncbench driver.
                let reps = if opts.fast { 40 } else { opts.outer_reps() };
                let cfg = EpccConfig::syncbench_default().fast(reps);
                syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, 16, 300)
            };
            let rs = run_many(&rt, &region, opts.n_runs(), opts.seed);
            let cvs = rs.run_cvs();
            (v, ompvar_core::percentile(&cvs, 50.0))
        })
        .collect()
}

/// Cell B — the unbound blow-up (Dardel, 48 threads, Fig 4 cell):
/// per-variant pooled max/min spread of unbound execution.
pub fn unbound_cell(opts: &ExpOptions) -> Vec<(Variant, f64)> {
    let cfg = EpccConfig::syncbench_default().fast(if opts.fast { 20 } else { 40 });
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, 48, 12);
    Variant::ALL
        .iter()
        .map(|&v| {
            let mut rt = Platform::Dardel.unbound_rt();
            rt.params = v.apply(rt.params.clone());
            if matches!(v, Variant::NoFreq | Variant::NoNoiseNoFreq) {
                rt.machine = freeze_clock(Platform::Dardel);
            }
            let rs = run_many(&rt, &region, opts.n_runs(), opts.seed);
            (v, rs.pooled().spread())
        })
        .collect()
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut tables = Vec::new();
    let mut checks = Vec::new();

    let freq = frequency_cell(opts);
    let mut t = Table::new(
        "Ablation A: Vera 16-thread cross-NUMA syncbench — median per-run CV",
        &["variant", "median cv"],
    );
    for (v, cv) in &freq {
        t.row(&[v.label().to_string(), format!("{cv:.5}")]);
    }
    tables.push(t);
    let get = |xs: &[(Variant, f64)], v: Variant| xs.iter().find(|(x, _)| *x == v).unwrap().1;
    checks.push(Check::new(
        "cross-NUMA variability is attributable to DVFS + OS noise",
        get(&freq, Variant::NoFreq) < get(&freq, Variant::Full)
            && get(&freq, Variant::NoNoise) < get(&freq, Variant::Full)
            && get(&freq, Variant::NoNoiseNoFreq) < get(&freq, Variant::Full) / 5.0,
        format!(
            "cv full {:.5}, no-freq {:.5}, no-noise {:.5}, neither {:.5}",
            get(&freq, Variant::Full),
            get(&freq, Variant::NoFreq),
            get(&freq, Variant::NoNoise),
            get(&freq, Variant::NoNoiseNoFreq)
        ),
    ));

    let unb = unbound_cell(opts);
    let mut t = Table::new(
        "Ablation B: Dardel 48-thread unbound syncbench — pooled max/min spread",
        &["variant", "spread"],
    );
    for (v, s) in &unb {
        t.row(&[v.label().to_string(), format!("{s:.2}")]);
    }
    tables.push(t);
    checks.push(Check::new(
        "unbound blow-ups are placement-churn-driven",
        get(&unb, Variant::NoChurn) < get(&unb, Variant::Full) / 3.0,
        format!(
            "spread full {:.1}, no-churn {:.1}, no-noise {:.1}, no-freq {:.1}",
            get(&unb, Variant::Full),
            get(&unb, Variant::NoChurn),
            get(&unb, Variant::NoNoise),
            get(&unb, Variant::NoFreq)
        ),
    ));

    ExpReport {
        name: "ablation".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "ablation checks failed:\n{}", rep.render());
    }
}
