//! The `faults` experiment: graceful degradation under injected faults.
//!
//! Runs one Figure-4-style cell — `schedbench` with `dynamic,1` on 8
//! pinned Vera threads, sterile parameters so every effect is the
//! fault's — under each injector of `ompvar_sim::fault`:
//!
//! * a machine-wide **noise storm** for the whole run;
//! * a **CPU offline** event evacuating one pinned thread;
//! * a machine-wide **thermal frequency cap**;
//! * a 2 ms **task stall** charged to rank 0;
//! * one **lost wakeup**, which deadlocks the run — the watchdog must
//!   diagnose it with a typed error instead of hanging the harness.
//!
//! The checks assert the paper-shaped qualitative outcome: every
//! perturbation costs time relative to the sterile baseline, and the
//! lost-wakeup cell fails *diagnosably and deterministically*.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::{schedbench, EpccConfig};
use ompvar_core::{fmt_ratio, fmt_us, Table};
use ompvar_rt::region::{RegionSpec, Schedule};
use ompvar_rt::runner::RegionRunner;
use ompvar_rt::RtError;
use ompvar_sim::fault::FaultPlan;
use ompvar_sim::params::SimParams;
use ompvar_sim::time::{SEC, US};

const PLATFORM: Platform = Platform::Vera;
const THREADS: usize = 8;

/// Open-ended faults fire early so their window covers the whole run.
const AT: ompvar_sim::time::Time = 50 * US;

/// The fault scenarios, in report order. The baseline comes first so
/// every other row can be normalized to it. One-shot faults (the task
/// stall) must land inside the *measured* window, past the region's two
/// warm-up repetitions — `stall_at` is derived from the baseline's
/// repetition time.
fn scenarios(stall_at: ompvar_sim::time::Time) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("baseline", FaultPlan::new()),
        (
            "noise-storm",
            // 20 µs mean arrivals machine-wide for a full second: an
            // antagonist job sharing the node.
            FaultPlan::new().noise_storm(AT, SEC, 20 * US, 50 * US, 0.3),
        ),
        (
            "cpu-offline",
            // Rank 0's hardware thread is evacuated and never returns.
            FaultPlan::new().cpu_offline(AT, 0, None),
        ),
        (
            "freq-cap",
            // All sockets clamped to 1 GHz, far below Vera's bins.
            FaultPlan::new().freq_cap(AT, None, 1.0, None),
        ),
        (
            "task-stall",
            // 2 ms swallowed at once by rank 0 (major fault / SMI),
            // mid-way through a measured repetition.
            FaultPlan::new().task_stall(stall_at, Some(0), 2.0e6),
        ),
        (
            "lost-wakeup",
            // One swallowed release: the classic silent-hang bug.
            FaultPlan::new().lost_wakeups(AT, 1),
        ),
    ]
}

fn region(opts: &ExpOptions) -> RegionSpec {
    let mut cfg = EpccConfig::schedbench_default().fast(opts.outer_reps().min(20));
    cfg.iters_per_thr = if opts.fast { 512 } else { 2048 };
    schedbench::region(&cfg, Schedule::Dynamic { chunk: 1 }, THREADS)
}

/// One completed cell: mean repetition time (µs) and migration count.
type Cell = Result<(f64, u64), RtError>;

fn run_cell(region: &RegionSpec, plan: &FaultPlan, seed: u64) -> Cell {
    let rt = PLATFORM
        .pinned_rt(THREADS)
        .with_params(SimParams::sterile())
        .with_faults(plan.clone())
        .with_time_limit(10 * SEC);
    let res = rt.run_region(region, seed)?;
    let reps = res.reps();
    let mean = reps.iter().sum::<f64>() / reps.len() as f64;
    let migrations = res.counters.as_ref().map_or(0, |c| c.migrations);
    Ok((mean, migrations))
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let region = region(opts);
    let mut t = Table::new(
        "Faults: schedbench (dynamic_1, 8 thr, sterile) under injected faults, Vera",
        &["scenario", "status", "mean rep", "vs baseline", "diagnostic"],
    );
    let mut checks = Vec::new();
    // The baseline runs first: its repetition time places the one-shot
    // stall 2.5 repetitions in, i.e. half a rep past the 2 warm-ups.
    let baseline = run_cell(&region, &FaultPlan::new(), opts.seed);
    let baseline_us = match &baseline {
        Ok((mean, _)) => *mean,
        Err(_) => f64::NAN,
    };
    let stall_at = if baseline_us.is_finite() {
        (2.5 * baseline_us * 1_000.0) as ompvar_sim::time::Time
    } else {
        AT
    };
    let mut outcomes: Vec<(&'static str, Cell)> = Vec::new();
    for (name, plan) in scenarios(stall_at) {
        outcomes.push((
            name,
            if name == "baseline" {
                baseline.clone()
            } else {
                run_cell(&region, &plan, opts.seed)
            },
        ));
    }
    for (name, out) in &outcomes {
        match out {
            Ok((mean, _)) => {
                t.row(&[
                    name.to_string(),
                    "ok".into(),
                    fmt_us(*mean),
                    fmt_ratio(mean / baseline_us),
                    String::new(),
                ]);
            }
            Err(e) => {
                t.row(&[
                    name.to_string(),
                    "failed".into(),
                    "—".into(),
                    "—".into(),
                    e.to_string(),
                ]);
            }
        }
    }

    checks.push(Check::new(
        "baseline cell completes",
        baseline_us.is_finite() && baseline_us > 0.0,
        format!("mean {baseline_us:.3} µs"),
    ));
    for (name, out) in &outcomes {
        match (*name, out) {
            ("baseline", _) | ("lost-wakeup", _) => {}
            ("cpu-offline", Ok((mean, migrations))) => {
                // Evacuation may land on an idle core, so the time can
                // even improve slightly; the migration itself must be
                // visible and the run must complete sanely.
                checks.push(Check::new(
                    "cpu-offline evacuates the pinned thread",
                    *migrations > 0 && mean.is_finite() && *mean > 0.0,
                    format!("{migrations} migration(s), mean {mean:.3} µs"),
                ));
            }
            (_, Ok((mean, _))) => {
                checks.push(Check::new(
                    &format!("{name} costs time over the baseline"),
                    *mean > baseline_us,
                    format!("{mean:.3} µs vs baseline {baseline_us:.3} µs"),
                ));
            }
            (_, Err(e)) => {
                checks.push(Check::new(
                    &format!("{name} completes"),
                    false,
                    format!("unexpected failure: {e}"),
                ));
            }
        }
    }

    // The lost-wakeup cell must fail with a deadlock diagnosis naming
    // the stuck waiters — and identically on a replay of the same seed.
    let lw = outcomes
        .iter()
        .find(|(n, _)| *n == "lost-wakeup")
        .map(|(_, o)| o)
        .expect("lost-wakeup scenario present");
    let diagnosed = match lw {
        Err(RtError::Sim(e)) => {
            let s = e.to_string();
            s.contains("deadlock") && s.contains("waiting on")
        }
        _ => false,
    };
    checks.push(Check::new(
        "lost wakeup deadlocks with named waiters",
        diagnosed,
        match lw {
            Err(e) => e.to_string(),
            Ok((mean, _)) => format!("unexpectedly completed, mean {mean:.3} µs"),
        },
    ));
    let plan = scenarios(stall_at).pop().expect("scenario list non-empty").1;
    let replay = run_cell(&region, &plan, opts.seed);
    let same = matches!((lw, &replay), (Err(a), Err(b)) if a.to_string() == b.to_string());
    checks.push(Check::new(
        "deadlock diagnosis is deterministic per seed",
        same,
        format!("replay: {}", match &replay {
            Err(e) => e.to_string(),
            Ok((mean, _)) => format!("completed, mean {mean:.3} µs"),
        }),
    ));

    ExpReport {
        name: "faults".into(),
        tables: vec![t],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "faults checks failed:\n{}", rep.render());
    }

    /// The same seed must produce byte-identical CSV output.
    #[test]
    fn csv_output_is_bit_identical_per_seed() {
        let base = std::env::temp_dir().join("ompvar_faults_csv_test");
        let opts_in = |sub: &str| ExpOptions {
            out_dir: base.join(sub),
            ..ExpOptions::fast()
        };
        let (a, b) = (opts_in("a"), opts_in("b"));
        let pa = run(&a).write_csvs(&a.out_dir).expect("write run A");
        let pb = run(&b).write_csvs(&b.out_dir).expect("write run B");
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            let bx = std::fs::read(x).expect("read A");
            let by = std::fs::read(y).expect("read B");
            assert_eq!(bx, by, "{} differs from {}", x.display(), y.display());
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}
