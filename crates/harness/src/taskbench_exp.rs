//! Extension experiment: EPCC `taskbench` scaling (the paper's §6 future
//! work — extending the characterization to task-based benchmarks).
//!
//! Reports per-task overhead versus thread count for the PARALLEL TASK
//! and MASTER TASK patterns on both platforms, plus an ST-vs-MT
//! variability comparison on Dardel (does the paper's SMT finding carry
//! over to tasking? It does: task queues are poll-heavy and any spawner
//! or stealer being preempted stalls the drain).

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::taskbench::{self, TaskPattern};
use ompvar_bench_epcc::{run_many, EpccConfig};
use ompvar_core::Table;
use ompvar_rt::runner::RegionRunner;

fn cfg(opts: &ExpOptions) -> EpccConfig {
    EpccConfig::syncbench_default().fast(opts.outer_reps().min(40))
}

/// Per-task overhead (µs) of `pattern` across the platform's scaling
/// thread counts.
pub fn scaling_series(
    opts: &ExpOptions,
    platform: Platform,
    pattern: TaskPattern,
) -> Vec<(usize, f64)> {
    let cfg = cfg(opts);
    let tasks = 64;
    platform
        .scaling_threads()
        .into_iter()
        .map(|n| {
            let rt = platform.pinned_rt(n);
            let region = taskbench::region(&cfg, pattern, n, tasks);
            let res = rt.run_region(&region, opts.seed).expect("experiment region completes");
            let mean = res.reps().iter().sum::<f64>() / res.reps().len() as f64;
            (
                n,
                taskbench::overhead_per_task_us(&cfg, pattern, n, tasks, mean),
            )
        })
        .collect()
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut tables = Vec::new();
    let mut checks = Vec::new();

    for platform in [Platform::Dardel, Platform::Vera] {
        let mut t = Table::new(
            &format!("Taskbench: per-task overhead (µs) vs threads on {}", platform.label()),
            &["threads", "parallel_task", "master_task"],
        );
        let par = scaling_series(opts, platform, TaskPattern::ParallelTask);
        let mas = scaling_series(opts, platform, TaskPattern::MasterTask);
        for ((n, p), (_, m)) in par.iter().zip(mas.iter()) {
            t.row(&[n.to_string(), format!("{p:.3}"), format!("{m:.3}")]);
        }
        tables.push(t);

        checks.push(Check::new(
            &format!(
                "{}: parallel-spawn overhead grows with threads",
                platform.label()
            ),
            par.last().unwrap().1 > par.first().unwrap().1 * 2.0,
            format!(
                "{:.3} µs @ {} thr → {:.3} µs @ {} thr",
                par.first().unwrap().1,
                par.first().unwrap().0,
                par.last().unwrap().1,
                par.last().unwrap().0
            ),
        ));
    }

    // SMT sensitivity of tasking on Dardel (extension of Fig 5).
    let n = 32;
    let c = cfg(opts);
    let region = taskbench::region(&c, TaskPattern::ParallelTask, n, 64);
    let cv = |rt: &ompvar_rt::simrt::SimRuntime| {
        let rs = run_many(rt, &region, opts.n_runs(), opts.seed);
        ompvar_core::percentile(&rs.run_cvs(), 50.0)
    };
    let st = cv(&Platform::Dardel.pinned_rt(n));
    let mt = cv(&Platform::Dardel.pinned_mt_rt(n));
    let mut t = Table::new(
        "Taskbench: ST vs MT median per-run CV, 32 threads, Dardel",
        &["config", "median cv"],
    );
    t.row(&["ST".into(), format!("{st:.5}")]);
    t.row(&["MT".into(), format!("{mt:.5}")]);
    tables.push(t);
    checks.push(Check::new(
        "tasking inherits the SMT-noise sensitivity (MT > ST)",
        mt > st,
        format!("median cv ST {st:.5} vs MT {mt:.5}"),
    ));

    ExpReport {
        name: "taskbench".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "taskbench checks failed:\n{}", rep.render());
    }
}
