//! Figure 4: the effect of thread pinning on Dardel.
//!
//! Three sub-experiments, each before (`OMP_PROC_BIND=false`) and after
//! (`close` pinning over one place per core):
//!
//! * (a/d) `schedbench` (dynamic_1) with 16 threads — per-run average
//!   execution time; unbound runs show elevated outlier runs;
//! * (b/e) `syncbench` reduction with 128 threads — unbound shows orders
//!   of magnitude of spread between repetitions (stacked threads share a
//!   hardware thread in 4 ms quanta), pinned is stable;
//! * (c/f) BabelStream with 128 threads — unbound shows up to ~6× min–max
//!   spread per kernel, pinned much less.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::{run_many, schedbench, EpccConfig};
use ompvar_bench_stream::{kernel_stats, kernels::StreamConfig, StreamKernel};
use ompvar_core::{fmt_ratio, fmt_us, RunSet, Table};
use ompvar_rt::region::Schedule;
use ompvar_rt::runner::RegionRunner;
use ompvar_rt::simrt::SimRuntime;

const PLATFORM: Platform = Platform::Dardel;

fn threads_high(opts: &ExpOptions) -> usize {
    if opts.fast {
        48
    } else {
        128
    }
}

/// schedbench sub-experiment: per-run mean times, `(unbound, pinned)`.
pub fn schedbench_runs(opts: &ExpOptions) -> (RunSet, RunSet) {
    let mut cfg = EpccConfig::schedbench_default().fast(opts.outer_reps().min(20));
    cfg.iters_per_thr = if opts.fast { 512 } else { 2048 };
    let region = schedbench::region(&cfg, Schedule::Dynamic { chunk: 1 }, 16);
    let unbound = run_many(&PLATFORM.unbound_rt(), &region, opts.n_runs(), opts.seed);
    let pinned = run_many(&PLATFORM.pinned_rt(16), &region, opts.n_runs(), opts.seed);
    (unbound, pinned)
}

/// syncbench reduction sub-experiment, `(unbound, pinned)`.
pub fn syncbench_runs(opts: &ExpOptions) -> (RunSet, RunSet) {
    let n = threads_high(opts);
    let cfg = EpccConfig::syncbench_default().fast(opts.outer_reps().min(40));
    let pinned_rt = PLATFORM.pinned_rt(n);
    let cap = if opts.fast { 12 } else { 50 };
    // Calibrate on the pinned runtime (EPCC calibrates in-situ; using the
    // same inner count for both keeps the comparison apples-to-apples).
    let inner = syncbench::calibrate_inner_reps(&pinned_rt, &cfg, SyncConstruct::Reduction, n, cap);
    let region = syncbench::region_with_inner(&cfg, SyncConstruct::Reduction, n, inner);
    let unbound = run_many(&PLATFORM.unbound_rt(), &region, opts.n_runs(), opts.seed);
    let pinned = run_many(&pinned_rt, &region, opts.n_runs(), opts.seed);
    (unbound, pinned)
}

/// Per-kernel worst min–max spread across runs.
pub type KernelSpreads = Vec<(StreamKernel, f64)>;

/// BabelStream sub-experiment: per-kernel worst min–max spread across
/// runs, `(unbound, pinned)`.
pub fn stream_spreads(opts: &ExpOptions) -> (KernelSpreads, KernelSpreads) {
    let n = threads_high(opts);
    let cfg = StreamConfig {
        iterations: opts.stream_iters(),
        ..StreamConfig::default()
    };
    let region = ompvar_bench_stream::region(&cfg, n);
    let spread = |rt: &SimRuntime| -> Vec<(StreamKernel, f64)> {
        let mut worst: Vec<(StreamKernel, f64)> =
            StreamKernel::ALL.iter().map(|&k| (k, 0.0)).collect();
        for i in 0..opts.n_runs() {
            let res = rt.run_region(&region, opts.seed + i as u64).expect("experiment region completes");
            let stats = kernel_stats(&res);
            for (k, w) in worst.iter_mut() {
                let s = stats[k].max_us / stats[k].min_us;
                if s > *w {
                    *w = s;
                }
            }
        }
        worst
    };
    (spread(&PLATFORM.unbound_rt()), spread(&PLATFORM.pinned_rt(n)))
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut tables = Vec::new();
    let mut checks = Vec::new();

    // (a/d) schedbench @ 16.
    let (unb, pin) = schedbench_runs(opts);
    let mut t = Table::new(
        "Fig 4a/4d: schedbench (dynamic_1, 16 thr) per-run mean (µs), Dardel",
        &["run #", "unbound", "pinned"],
    );
    for (i, (u, p)) in unb.run_means().iter().zip(pin.run_means()).enumerate() {
        t.row(&[(i + 1).to_string(), fmt_us(*u), fmt_us(p)]);
    }
    tables.push(t);
    checks.push(Check::new(
        "schedbench: pinning tightens run-to-run spread",
        pin.run_spread() <= unb.run_spread(),
        format!(
            "spread unbound {:.4} vs pinned {:.4}",
            unb.run_spread(),
            pin.run_spread()
        ),
    ));

    // (b/e) syncbench reduction @ 128.
    let (unb, pin) = syncbench_runs(opts);
    let mut t = Table::new(
        "Fig 4b/4e: syncbench reduction per-run stats (µs), Dardel",
        &["run #", "unbound mean", "unbound max/min", "pinned mean", "pinned max/min"],
    );
    for i in 0..unb.n_runs() {
        let su = unb.runs[i].summary();
        let sp = pin.runs[i].summary();
        t.row(&[
            (i + 1).to_string(),
            fmt_us(su.mean),
            fmt_ratio(su.spread()),
            fmt_us(sp.mean),
            fmt_ratio(sp.spread()),
        ]);
    }
    tables.push(t);
    let unb_spread = unb.pooled().spread();
    let pin_spread = pin.pooled().spread();
    // The paper's Fig 4b vs 4e contrast: unbound repetitions reach orders
    // of magnitude above what pinned execution ever shows.
    let ratio = unb.pooled().max / pin.pooled().mean;
    checks.push(Check::new(
        "syncbench: unbound reaches ≥50× the pinned time",
        ratio >= 50.0,
        format!(
            "worst unbound rep = {ratio:.0}× pinned mean; unbound max/min {unb_spread:.1}"
        ),
    ));
    checks.push(Check::new(
        "syncbench: unbound is internally unstable, pinned is stable",
        unb_spread > 3.0 && pin_spread < 2.0,
        format!("pooled max/min unbound {unb_spread:.1} vs pinned {pin_spread:.2}"),
    ));

    // (c/f) BabelStream @ 128.
    let (unb, pin) = stream_spreads(opts);
    let mut t = Table::new(
        "Fig 4c/4f: BabelStream worst per-kernel max/min across runs, Dardel",
        &["kernel", "unbound", "pinned"],
    );
    for ((k, u), (_, p)) in unb.iter().zip(pin.iter()) {
        t.row(&[k.label().to_string(), fmt_ratio(*u), fmt_ratio(*p)]);
    }
    tables.push(t);
    let worst_unb = unb.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
    let worst_pin = pin.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
    checks.push(Check::new(
        "babelstream: pinning reduces worst kernel spread",
        worst_pin < worst_unb,
        format!("worst unbound {worst_unb:.2}× vs pinned {worst_pin:.2}×"),
    ));
    checks.push(Check::new(
        "babelstream: unbound spread is substantial (paper: up to ~6×)",
        worst_unb > 1.5,
        format!("worst unbound {worst_unb:.2}×"),
    ));

    ExpReport {
        name: "fig4".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "fig4 checks failed:\n{}", rep.render());
    }
}
