//! Figure 1: `syncbench` execution time (µs) when increasing the number
//! of hardware threads, on Dardel (4–254) and Vera (2–30).
//!
//! The paper's observations: time grows with the thread count; it jumps
//! sharply when the second socket is first used (>16 threads on Vera,
//! >64 on Dardel) and again when SMT contexts come into play (254 on
//! > Dardel); and the `reduction` clause is the most expensive
//! > synchronization construct.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::syncbench::{self, SyncConstruct};
use ompvar_bench_epcc::{run_many, EpccConfig};
use ompvar_core::{fmt_us, Table};
use ompvar_rt::runner::RegionRunner;

/// Inner-repetition cap: full EPCC calibration targets 1000 µs per timed
/// repetition; we cap the count to bound simulated event counts (noted in
/// EXPERIMENTS.md). The cap scales inversely with the team size so that
/// repetition *durations* stay comparable across thread counts (simulated
/// event counts scale with `inner × n_threads`).
pub fn inner_cap(opts: &ExpOptions, n_threads: usize) -> u32 {
    if opts.fast {
        ((4096 / n_threads) as u32).clamp(16, 512)
    } else {
        ((32_768 / n_threads) as u32).clamp(60, 2048)
    }
}

/// Mean per-op overhead (µs) of `construct` at every thread count of
/// `platform`. Returns `(threads, mean_us, cv)` triples.
pub fn scaling_series(
    opts: &ExpOptions,
    platform: Platform,
    construct: SyncConstruct,
) -> Vec<(usize, f64, f64)> {
    let cfg = EpccConfig::syncbench_default().fast(opts.outer_reps());
    let mut out = Vec::new();
    for n in platform.scaling_threads() {
        let rt = platform.pinned_rt(n);
        let inner = syncbench::calibrate_inner_reps(&rt, &cfg, construct, n, inner_cap(opts, n));
        let region = syncbench::region_with_inner(&cfg, construct, n, inner);
        let rs = run_many(&rt, &region, opts.n_runs(), opts.seed);
        let pooled = rs.pooled();
        let per_op = pooled.mean / inner as f64;
        out.push((n, per_op, pooled.cv));
    }
    out
}

/// Per-op overhead (µs) of every construct at a fixed thread count.
pub fn construct_costs(
    opts: &ExpOptions,
    platform: Platform,
    n: usize,
) -> Vec<(SyncConstruct, f64)> {
    let cfg = EpccConfig::syncbench_default().fast(opts.outer_reps().min(10));
    let rt = platform.pinned_rt(n);
    SyncConstruct::ALL
        .iter()
        .map(|&c| {
            let inner = syncbench::calibrate_inner_reps(&rt, &cfg, c, n, inner_cap(opts, n));
            let region = syncbench::region_with_inner(&cfg, c, n, inner);
            let res = rt.run_region(&region, opts.seed).expect("experiment region completes");
            let mean = res.reps().iter().sum::<f64>() / res.reps().len() as f64;
            (c, syncbench::overhead_us(&cfg, c, mean, inner))
        })
        .collect()
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut tables = Vec::new();
    let mut checks = Vec::new();

    for platform in [Platform::Dardel, Platform::Vera] {
        let series = scaling_series(opts, platform, SyncConstruct::Reduction);
        let mut t = Table::new(
            &format!(
                "Fig 1{}: syncbench reduction per-op time (µs) vs threads on {}",
                if platform == Platform::Dardel { "a" } else { "b" },
                platform.label()
            ),
            &["threads", "per-op µs", "cv"],
        );
        for &(n, us, cv) in &series {
            t.row(&[n.to_string(), fmt_us(us), format!("{cv:.4}")]);
        }
        tables.push(t);

        // Shape: cost grows with threads end-to-end.
        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        checks.push(Check::new(
            &format!("{}: reduction cost grows with threads", platform.label()),
            last > first * 2.0,
            format!("{first:.2} → {last:.2} µs"),
        ));

        // Shape: sharp jump when the second socket comes into play.
        let socket_cores = match platform {
            Platform::Dardel => 64,
            Platform::Vera => 16,
        };
        let below = series
            .iter()
            .filter(|(n, _, _)| *n <= socket_cores)
            .map(|&(_, us, _)| us)
            .fold(f64::MIN, f64::max);
        let above = series
            .iter()
            .find(|(n, _, _)| *n > socket_cores)
            .map(|&(_, us, _)| us)
            .unwrap();
        checks.push(Check::new(
            &format!("{}: jump at socket boundary", platform.label()),
            above > below * 1.5,
            format!("max ≤{socket_cores} thr: {below:.2} µs; first >: {above:.2} µs"),
        ));
    }

    // Shape: reduction is the most expensive construct (Dardel, 32 thr).
    let costs = construct_costs(opts, Platform::Dardel, 32);
    let mut t = Table::new(
        "Fig 1 (inset): per-construct overhead (µs), Dardel, 32 threads",
        &["construct", "overhead µs"],
    );
    for (c, us) in &costs {
        t.row(&[c.label().to_string(), fmt_us(*us)]);
    }
    tables.push(t);
    let red = costs
        .iter()
        .find(|(c, _)| *c == SyncConstruct::Reduction)
        .unwrap()
        .1;
    let max_other = costs
        .iter()
        .filter(|(c, _)| *c != SyncConstruct::Reduction)
        .map(|&(_, us)| us)
        .fold(f64::MIN, f64::max);
    checks.push(Check::new(
        "reduction is the most expensive construct",
        red >= max_other,
        format!("reduction {red:.2} µs vs max other {max_other:.2} µs"),
    ));

    ExpReport {
        name: "fig1".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "fig1 checks failed:\n{}", rep.render());
    }
}
