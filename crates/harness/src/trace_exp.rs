//! The `trace` experiment: record a construct-span timeline on both
//! backends, export Chrome trace-event JSON (Perfetto-loadable), and
//! report per-construct latency percentiles.
//!
//! The simulated run exercises everything the tracer can see: a mixed
//! region (barrier, dynamic for with ordered, critical, single,
//! reduction, tasks) on pinned Vera cores with the frequency logger on a
//! spare core — its samples become the per-core `core_freq_ghz` counter
//! track — plus an injected noise storm so fault-injection and
//! noise-preemption instants appear on the timeline. The native run
//! covers the same constructs unpinned (CI-safe).
//!
//! Two Chrome traces are written: the simulated one to `--trace` (or
//! `<out_dir>/trace.json`) and the native one next to it with a
//! `.native.json` suffix. The checks assert structural well-formedness
//! (every begin matched, LIFO nesting, monotone per-thread time),
//! construct coverage, and that the instant counts on the timeline agree
//! exactly with the engine's own counters.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_core::Table;
use ompvar_obs::{chrome_trace, wellformed, InstantKind, SpanKind, Trace};
use ompvar_rt::config::{RegionResult, RtConfig};
use ompvar_rt::native::NativeRuntime;
use ompvar_rt::region::{Construct, RegionSpec, Schedule};
use ompvar_rt::simrt::FreqLoggerCfg;
use ompvar_sim::fault::FaultPlan;
use ompvar_sim::time::{SEC, US};
use std::path::{Path, PathBuf};
use std::time::Duration;

const PLATFORM: Platform = Platform::Vera;
const THREADS: usize = 4;

/// A region touching every traced construct kind.
fn mixed_region(n: usize, reps: u32) -> RegionSpec {
    RegionSpec::measured(
        n,
        reps,
        1,
        vec![
            Construct::Barrier,
            Construct::ParallelFor {
                schedule: Schedule::Dynamic { chunk: 1 },
                total_iters: 128,
                body_us: 0.5,
                ordered_us: Some(0.1),
                nowait: false,
            },
            Construct::Critical { body_us: 0.2 },
            Construct::Single { body_us: 0.2 },
            Construct::Reduction { body_us: 0.2 },
            Construct::Tasks {
                per_spawner: 4,
                body_us: 0.2,
                master_only: false,
            },
        ],
    )
}

/// The native trace lands next to the simulated one: `x.json` →
/// `x.native.json`.
fn native_path(sim: &Path) -> PathBuf {
    let stem = sim.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    sim.with_file_name(format!("{stem}.native.json"))
}

/// Per-construct percentile table from a traced result.
fn span_table(title: &str, res: &RegionResult) -> Table {
    let mut t = Table::new(title, &["construct", "count", "p50", "p95", "p99", "max"]);
    let us = |ns: u64| format!("{:.3} µs", ns as f64 / 1000.0);
    for (kind, s) in res.span_stats() {
        t.row(&[
            kind.name().to_string(),
            s.count.to_string(),
            us(s.p50_ns),
            us(s.p95_ns),
            us(s.p99_ns),
            us(s.max_ns),
        ]);
    }
    t
}

/// Structural checks shared by both backends' traces.
fn trace_checks(checks: &mut Vec<Check>, backend: &str, trace: &Trace, n_threads: usize) {
    let wf = wellformed::check(trace);
    checks.push(Check::new(
        &format!("{backend} trace is well-formed"),
        wf.is_ok(),
        match &wf {
            Ok(spans) => format!("{} events, {} paired spans", trace.len(), spans.len()),
            Err(errs) => format!("{} violation(s), first: {}", errs.len(), errs[0]),
        },
    ));
    let constructs: Vec<SpanKind> = SpanKind::ALL
        .iter()
        .copied()
        .filter(|k| k.is_construct())
        .collect();
    let missing: Vec<&str> = constructs
        .iter()
        .filter(|k| trace.count_of(**k) == 0)
        .map(|k| k.name())
        .collect();
    checks.push(Check::new(
        &format!("{backend} trace covers every construct kind"),
        missing.is_empty(),
        if missing.is_empty() {
            format!(
                "all {} kinds present, {} region span(s)",
                constructs.len(),
                trace.count_of(SpanKind::Region)
            )
        } else {
            format!("missing: {}", missing.join(", "))
        },
    ));
    checks.push(Check::new(
        &format!("{backend} trace has one region span per thread"),
        trace.count_of(SpanKind::Region) == n_threads,
        format!(
            "{} region span(s) for {n_threads} thread(s)",
            trace.count_of(SpanKind::Region)
        ),
    ));
}

/// Write a Chrome trace document, reporting the outcome as a check.
fn write_doc(checks: &mut Vec<Check>, what: &str, path: &Path, doc: &str) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let res = std::fs::write(path, doc);
    checks.push(Check::new(
        &format!("{what} Chrome trace written"),
        res.is_ok(),
        match res {
            Ok(()) => format!("{} ({} bytes)", path.display(), doc.len()),
            Err(e) => format!("{}: {e}", path.display()),
        },
    ));
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut checks = Vec::new();
    let mut tables = Vec::new();
    let sim_path = opts
        .trace_path
        .clone()
        .unwrap_or_else(|| opts.out_dir.join("trace.json"));

    // Simulated backend: pinned NUMA-0 cores, frequency logger on a
    // spare core, default (noisy) parameters so DVFS retargets happen,
    // plus a machine-wide noise storm starting 50 µs in. The run is
    // sub-millisecond, so the logger polls far faster (20 µs) than the
    // paper's 2 ms sysfs logger to land samples on the short timeline.
    let reps = if opts.fast { 4 } else { 10 };
    let region = mixed_region(THREADS, reps);
    let storm = FaultPlan::new().noise_storm(50 * US, SEC, 20 * US, 50 * US, 0.3);
    let logger_cpu = PLATFORM.machine().n_cores() - 1;
    let sim = PLATFORM
        .numa_rt(&[0], THREADS)
        .with_freq_logger(FreqLoggerCfg {
            cpu: Some(logger_cpu),
            period: 20 * US,
            cost: US,
        })
        .with_faults(storm)
        .with_time_limit(30 * SEC)
        .with_tracing(true)
        .with_attribution(opts.attr)
        .run(&region, opts.seed);
    match sim {
        Ok(res) => {
            let trace = res.trace.as_ref().expect("traced sim run records a trace");
            trace_checks(&mut checks, "sim", trace, THREADS);
            // Timeline instants must agree exactly with the engine's own
            // counters — the trace is a faithful account, not a sample.
            let counters = res.counters.as_ref().expect("sim run has counters");
            for (kind, have, label) in [
                (
                    InstantKind::FaultInjection,
                    counters.faults_injected,
                    "fault injections",
                ),
                (
                    InstantKind::NoisePreemption,
                    counters.preemptions,
                    "noise preemptions",
                ),
                (
                    InstantKind::FreqRetarget,
                    counters.freq_transitions,
                    "frequency retargets",
                ),
            ] {
                let seen = trace.instants_of(kind);
                checks.push(Check::new(
                    &format!("sim timeline {label} match engine counter"),
                    seen as u64 == have,
                    format!("{seen} instant(s) vs counter {have}"),
                ));
            }
            checks.push(Check::new(
                "noise storm lands on the timeline",
                counters.faults_injected > 0,
                format!("{} fault injection(s)", counters.faults_injected),
            ));
            checks.push(Check::new(
                "frequency logger sampled the cores",
                !res.freq_samples.is_empty(),
                format!("{} sample(s)", res.freq_samples.len()),
            ));
            let freq: Vec<(u64, Vec<f32>)> = res
                .freq_samples
                .iter()
                .map(|s| (s.time, s.core_ghz.clone()))
                .collect();
            // With `--attr` the exported timeline gains the per-source
            // cumulative attribution counter tracks; the span/instant
            // events themselves are identical either way (attribution is
            // observation-only).
            let label = "ompvar sim (Vera, numa0, noise storm)";
            let doc = match &res.attribution {
                Some(attr) => ompvar_obs::chrome_trace_attr(trace, &freq, &attr.samples, label),
                None => chrome_trace(trace, &freq, label),
            };
            if let Some(attr) = &res.attribution {
                checks.push(Check::new(
                    "attribution ledger recorded under --attr",
                    !attr.samples.is_empty() && attr.threads.len() == THREADS,
                    format!(
                        "{} ledger sample(s), {} thread(s)",
                        attr.samples.len(),
                        attr.threads.len()
                    ),
                ));
            }
            write_doc(&mut checks, "sim", &sim_path, &doc);
            tables.push(span_table(
                "Trace: per-construct span latency percentiles, sim (Vera)",
                &res,
            ));
        }
        Err(e) => checks.push(Check::new("sim traced run completes", false, e.to_string())),
    }

    // Native backend: same constructs, unpinned, 2 threads (CI-safe).
    let native = NativeRuntime::new(RtConfig::unbound())
        .with_deadline(Some(Duration::from_secs(30)))
        .with_tracing(true)
        .run(&mixed_region(2, 2.min(reps)));
    match native {
        Ok(res) => {
            let trace = res.trace.as_ref().expect("traced native run records a trace");
            trace_checks(&mut checks, "native", trace, 2);
            let doc = chrome_trace(trace, &[], "ompvar native (unbound)");
            write_doc(&mut checks, "native", &native_path(&sim_path), &doc);
            tables.push(span_table(
                "Trace: per-construct span latency percentiles, native",
                &res,
            ));
        }
        Err(e) => checks.push(Check::new(
            "native traced run completes",
            false,
            e.to_string(),
        )),
    }

    ExpReport {
        name: "trace".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_obs::json::{parse, Value};

    #[test]
    fn fast_mode_shapes_hold_and_traces_parse() {
        let out = std::env::temp_dir().join("ompvar_trace_exp_test");
        let opts = ExpOptions {
            trace_path: Some(out.join("t.json")),
            ..ExpOptions::fast()
        };
        let rep = run(&opts);
        assert!(rep.all_passed(), "trace checks failed:\n{}", rep.render());
        // Both exported documents are valid JSON with span events.
        for p in [out.join("t.json"), out.join("t.native.json")] {
            let doc = std::fs::read_to_string(&p).expect("trace file written");
            let v = parse(&doc).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            let events = v.get("traceEvents").and_then(Value::as_arr).expect("array");
            assert!(
                events
                    .iter()
                    .any(|e| e.get("ph").and_then(Value::as_str) == Some("B")),
                "{} has no span begins",
                p.display()
            );
        }
        // The sim document carries the frequency counter track.
        let sim_doc = std::fs::read_to_string(out.join("t.json")).unwrap();
        assert!(sim_doc.contains("\"core_freq_ghz\""), "no counter track");
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn attr_flag_adds_counter_tracks() {
        let out = std::env::temp_dir().join("ompvar_trace_exp_attr_test");
        let opts = ExpOptions {
            trace_path: Some(out.join("t.json")),
            attr: true,
            ..ExpOptions::fast()
        };
        let rep = run(&opts);
        assert!(rep.all_passed(), "trace --attr checks failed:\n{}", rep.render());
        let sim_doc = std::fs::read_to_string(out.join("t.json")).unwrap();
        assert!(sim_doc.contains("\"attr_cum_ms\""), "no attribution counter track");
        parse(&sim_doc).expect("valid chrome trace with attribution tracks");
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn native_path_is_a_sibling() {
        assert_eq!(
            native_path(Path::new("/x/out.json")),
            Path::new("/x/out.native.json")
        );
    }
}
