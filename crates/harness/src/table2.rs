//! Table 2: per-run execution time (µs) of `schedbench` with
//! `schedule(dynamic,1)` on Dardel (4 and 254 threads) and Vera (4 and 30
//! threads), 10 runs each. The paper's table shows tightly clustered
//! times at low thread counts, higher times at high thread counts, and an
//! occasional outlier run (run #9 on Dardel/254 takes 168.8 ms instead of
//! ~154 ms).

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::{run_many, schedbench, EpccConfig};
use ompvar_core::{fmt_us, RunSet, Table};
use ompvar_rt::region::Schedule;

/// Paper values for the shape comparison (mean over the non-outlier runs,
/// µs).
pub const PAPER_MEANS_US: [(&str, usize, f64); 4] = [
    ("Dardel", 4, 123_970.0),
    ("Dardel", 254, 154_146.0),
    ("Vera", 4, 136_544.0),
    ("Vera", 30, 164_679.0),
];

/// One column of the table.
#[derive(Debug, Clone)]
pub struct Table2Column {
    /// Platform of the column.
    pub platform: Platform,
    /// Thread count.
    pub threads: usize,
    /// Per-run mean execution time, µs (one entry per run).
    pub run_means_us: Vec<f64>,
}

/// Run the experiment and return the four columns.
pub fn collect(opts: &ExpOptions) -> Vec<Table2Column> {
    let mut cfg = EpccConfig::schedbench_default().fast(opts.outer_reps());
    if opts.fast {
        cfg.iters_per_thr = 1024;
    }
    let mut cols = Vec::new();
    for (platform, threads) in [
        (Platform::Dardel, 4),
        (Platform::Dardel, 254),
        (Platform::Vera, 4),
        (Platform::Vera, 30),
    ] {
        let rt = platform.pinned_rt(threads);
        let region = schedbench::region(&cfg, Schedule::Dynamic { chunk: 1 }, threads);
        let rs: RunSet = run_many(&rt, &region, opts.n_runs(), opts.seed);
        cols.push(Table2Column {
            platform,
            threads,
            run_means_us: rs.run_means(),
        });
    }
    cols
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let cols = collect(opts);
    let mut table = Table::new(
        "Table 2: schedbench (dynamic_1) execution time (µs) per run",
        &[
            "run #",
            "Dardel 4 thr",
            "Dardel 254 thr",
            "Vera 4 thr",
            "Vera 30 thr",
        ],
    );
    let n_runs = cols[0].run_means_us.len();
    for r in 0..n_runs {
        table.row(&[
            (r + 1).to_string(),
            fmt_us(cols[0].run_means_us[r]),
            fmt_us(cols[1].run_means_us[r]),
            fmt_us(cols[2].run_means_us[r]),
            fmt_us(cols[3].run_means_us[r]),
        ]);
    }

    let mut checks = Vec::new();
    // Shape 1: execution time grows with thread count on both platforms
    // (dispatch contention + lower all-core frequency).
    for pair in [(0usize, 1usize), (2, 3)] {
        let lo = mean(&cols[pair.0].run_means_us);
        let hi = mean(&cols[pair.1].run_means_us);
        checks.push(Check::new(
            &format!(
                "{}: time grows {} → {} threads",
                cols[pair.0].platform.label(),
                cols[pair.0].threads,
                cols[pair.1].threads
            ),
            hi > lo * 1.1,
            format!("{:.0} → {:.0} µs", lo, hi),
        ));
    }
    // Shape 2: low-thread-count columns are tight (CV < 1%).
    for c in [&cols[0], &cols[2]] {
        let s = ompvar_core::Summary::of(&c.run_means_us);
        checks.push(Check::new(
            &format!("{} {} thr: runs tight", c.platform.label(), c.threads),
            s.cv < 0.01,
            format!("cv = {:.5}", s.cv),
        ));
    }
    // Shape 3 (when not in fast mode): paper-vs-simulated means agree
    // within 15% for all four columns.
    if !opts.fast {
        for (i, (plat, thr, paper)) in PAPER_MEANS_US.iter().enumerate() {
            let got = mean(&cols[i].run_means_us);
            let rel = (got - paper).abs() / paper;
            checks.push(Check::new(
                &format!("{plat} {thr} thr: mean within 15% of paper"),
                rel < 0.15,
                format!("paper {:.0} µs, simulated {:.0} µs ({:+.1}%)", paper, got, 100.0 * (got - paper) / paper),
            ));
        }
    }
    ExpReport {
        name: "table2".into(),
        tables: vec![table],
        checks,
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(
            rep.all_passed(),
            "table2 shape checks failed:\n{}",
            rep.render()
        );
    }
}
