//! The `campaign` experiment: cell-level supervision, end to end.
//!
//! Four schedbench cells — the Figure-4 `dynamic,1` configuration on 8
//! pinned Vera threads — exercise every supervisor path on purpose:
//!
//! * **sterile**: no faults. Completes first try; the adaptive policy
//!   must schedule zero extra repetitions.
//! * **noisy**: a seeded machine-wide noise storm. Completes first try
//!   but disperses across seeds, so adaptive re-measurement must spend
//!   extra repetitions on it (and record them).
//! * **flaky**: a lost-wakeup deadlock injected on the first two
//!   attempts, clean on the third — the model of an intermittent
//!   environment bug. The supervisor must classify the deadlock as
//!   transient, retry twice on the deterministic backoff schedule, and
//!   recover.
//! * **broken**: a structurally invalid region (zero threads). The
//!   supervisor must classify it as permanent and quarantine after one
//!   attempt — retrying a validation failure is pure waste.
//!
//! The cells run on the fault-tolerant campaign executor: `--jobs N`
//! shards them across a work-stealing pool, each worker journaling into
//! its own `ompvar-checkpoint/1` shard manifest (shard 0 is the legacy
//! `campaign.jsonl`), and the executor's attempt spans and retry /
//! quarantine instants are written as a per-worker-lane Chrome trace,
//! all under the campaign's checkpoint directory — the same artifacts
//! `ompvar-repro` keeps per experiment, here demonstrated per cell.

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::{schedbench, EpccConfig};
use ompvar_core::Table;
use ompvar_obs::json::Value;
use ompvar_rt::region::{RegionSpec, Schedule};
use ompvar_rt::runner::RegionRunner;
use ompvar_sim::fault::FaultPlan;
use ompvar_sim::params::SimParams;
use ompvar_sim::time::{SEC, US};
use ompvar_supervisor::{
    attempt_seed, create_shards, name_seed, resolve_jobs, resume_shards, run_campaign, stabilize,
    Backoff, Checkpointable, ExecUnit, ExecutorConfig, Header, Outcome, StabilityPolicy,
    SupervisorConfig, UnitError,
};

const PLATFORM: Platform = Platform::Vera;
const THREADS: usize = 8;
const AT: ompvar_sim::time::Time = 50 * US;

/// The cell result that goes through the checkpoint manifest.
#[derive(Debug, Clone, PartialEq)]
struct CellResult {
    /// Mean repetition times, one per (base or extra) measurement run.
    samples: Vec<f64>,
}

impl Checkpointable for CellResult {
    fn to_ckpt(&self) -> Value {
        Value::Obj(vec![(
            "samples".into(),
            Value::Arr(self.samples.iter().map(|&s| Value::Num(s)).collect()),
        )])
    }
    fn from_ckpt(v: &Value) -> Option<CellResult> {
        let samples = v
            .get("samples")?
            .as_arr()?
            .iter()
            .map(Value::as_f64)
            .collect::<Option<Vec<f64>>>()?;
        Some(CellResult { samples })
    }
}

fn region(opts: &ExpOptions) -> RegionSpec {
    let mut cfg = EpccConfig::schedbench_default().fast(opts.outer_reps().min(10));
    cfg.iters_per_thr = if opts.fast { 256 } else { 1024 };
    schedbench::region(&cfg, Schedule::Dynamic { chunk: 1 }, THREADS)
}

/// The per-attempt fault plan of one scenario. `flaky` is the only one
/// that varies by attempt: the injected deadlock "clears" on attempt 2,
/// the deterministic stand-in for an intermittent environment fault.
fn plan(scenario: &str, attempt: u32) -> FaultPlan {
    match scenario {
        "noisy" => FaultPlan::new().noise_storm(AT, SEC, 20 * US, 50 * US, 0.3),
        "flaky" if attempt < 2 => FaultPlan::new().lost_wakeups(AT, 1),
        _ => FaultPlan::new(),
    }
}

/// One measurement run of a cell: mean repetition time (µs) under the
/// scenario's fault plan, or a classified failure.
fn measure(region: &RegionSpec, scenario: &str, attempt: u32, seed: u64) -> Result<f64, UnitError> {
    let rt = PLATFORM
        .pinned_rt(THREADS)
        .with_params(SimParams::sterile())
        .with_faults(plan(scenario, attempt))
        .with_time_limit(10 * SEC);
    match rt.run_region(region, seed) {
        Ok(res) => {
            let reps = res.reps();
            Ok(reps.iter().sum::<f64>() / reps.len() as f64)
        }
        Err(e) => Err(UnitError::from_rt(&e)),
    }
}

/// Rows for the campaign table, one per cell.
struct CellRow {
    name: &'static str,
    status: String,
    attempts: u32,
    retries: usize,
    backoff_ms: Vec<u64>,
    base: usize,
    extra: usize,
    cov: f64,
    stable: bool,
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let good_region = region(opts);
    let broken_region = RegionSpec { n_threads: 0, ..good_region.clone() };
    // The target sits between the sterile cells' cross-seed dispersion
    // (~1e-4: only dynamic-scheduling races move) and the noise storm's
    // (~3e-3): stable cells pass untouched, perturbed ones re-measure.
    let policy = StabilityPolicy {
        target_cov: opts.stability_cov.unwrap_or(0.002),
        max_extra: if opts.fast { 4 } else { 8 },
        min_samples: 3,
    };
    let base_runs = 3usize;
    let sup_cfg = SupervisorConfig {
        seed: opts.seed,
        max_retries: opts.max_retries.unwrap_or(2),
        // The schedule is recorded and checked; actually sleeping it
        // would only slow the campaign down.
        sleep: false,
        ..SupervisorConfig::default()
    };

    // The campaign's own crash-safety artifacts. Failure to create them
    // degrades to an unjournaled (but still supervised) run.
    let ckpt_dir = opts.checkpoint_dir();
    let header = Header {
        seed: opts.seed,
        fast: opts.fast,
        targets: vec!["sterile".into(), "noisy".into(), "flaky".into(), "broken".into()],
    };
    // Shard 0 is the legacy `campaign.jsonl`, so old sequential
    // checkpoints resume unchanged. Only an explicit `--resume` replays
    // an existing manifest; a fresh run truncates the shard set, so
    // stale journals never mask new measurements.
    let jobs = resolve_jobs(opts.jobs);
    let manifest_path = ckpt_dir.join("campaign.jsonl");
    let opened = if opts.resume.is_some() {
        resume_shards(&ckpt_dir, "campaign", &header, jobs)
            .map(|(ms, merged)| (Some(ms), merged))
            .map_err(|e| e.to_string())
    } else {
        create_shards(&ckpt_dir, "campaign", &header, jobs)
            .map(|ms| (Some(ms), Vec::new()))
            .map_err(|e| e.to_string())
    };
    let (manifests, replay) = opened.unwrap_or_else(|e| {
        eprintln!(
            "warning: no campaign manifest at {}: {e}; running unjournaled",
            manifest_path.display()
        );
        (create_shards(&ckpt_dir, "campaign", &header, jobs).ok(), Vec::new())
    });

    // Each cell is one executor unit; with `--jobs > 1` the cells run
    // concurrently on the work-stealing pool, each under its own
    // per-worker supervisor lane.
    let seed = opts.seed;
    let units: Vec<ExecUnit<CellResult>> = ["sterile", "noisy", "flaky", "broken"]
        .into_iter()
        .map(|cell| {
            let reg =
                if cell == "broken" { broken_region.clone() } else { good_region.clone() };
            ExecUnit::new(cell, move |attempt| {
                // Base repetitions under this attempt's seed stream; the
                // adaptive pass extends unstable cells with extra seeds.
                let seed0 = attempt_seed(seed, attempt);
                let mut base = Vec::with_capacity(base_runs);
                for i in 0..base_runs {
                    base.push(measure(&reg, cell, attempt, seed0.wrapping_add(i as u64))?);
                }
                let mut failed = None;
                let st = stabilize(base, &policy, |i| {
                    match measure(&reg, cell, attempt, seed0.wrapping_add((base_runs + i) as u64))
                    {
                        Ok(x) => Some(x),
                        Err(e) => {
                            failed = Some(e);
                            None
                        }
                    }
                });
                match failed {
                    Some(e) => Err(e),
                    None => Ok(CellResult { samples: st.samples }),
                }
            })
        })
        .collect();
    let exec_cfg = ExecutorConfig { jobs, unit_timeout: opts.unit_timeout, supervisor: sup_cfg };
    let run = run_campaign(&exec_cfg, &units, manifests, &replay, None, None);

    let rows: Vec<CellRow> = run
        .results
        .into_iter()
        .map(|r| {
            let cell = ["sterile", "noisy", "flaky", "broken"][r.index];
            match r.outcome {
                Outcome::Completed { value, attempts, retries, .. } => {
                    let (cov, _) = ompvar_supervisor::dispersion(&value.samples);
                    CellRow {
                        name: cell,
                        status: "ok".into(),
                        attempts,
                        retries: retries.len(),
                        backoff_ms: retries.iter().map(|r| r.backoff_ms).collect(),
                        base: base_runs.min(value.samples.len()),
                        extra: value.samples.len().saturating_sub(base_runs),
                        cov,
                        stable: cov <= policy.target_cov,
                    }
                }
                Outcome::Quarantined { attempts, retries, .. } => CellRow {
                    name: cell,
                    status: format!(
                        "quarantined ({})",
                        retries.last().map_or("?", |r| r.transience.name())
                    ),
                    attempts,
                    retries: retries.len(),
                    backoff_ms: retries.iter().map(|r| r.backoff_ms).collect(),
                    base: 0,
                    extra: 0,
                    cov: 0.0,
                    stable: false,
                },
            }
        })
        .collect();

    // Executor trace: attempt spans + retry/quarantine instants, one
    // lane per worker, in the same Chrome format as the runtime traces.
    let trace_path = ckpt_dir.join("campaign.trace.json");
    let doc = ompvar_obs::chrome_trace_lanes(&run.trace, &[], "campaign-supervisor", "worker");
    if let Err(e) = ompvar_supervisor::atomic_write(&trace_path, doc.as_bytes()) {
        eprintln!("warning: could not write {}: {e}", trace_path.display());
    }

    let mut t = Table::new(
        "Campaign: schedbench (dynamic_1, 8 thr) cells under supervision, Vera",
        &["cell", "status", "attempts", "retries", "backoff ms", "reps", "extra", "cov", "stable"],
    );
    for r in &rows {
        t.row(&[
            r.name.to_string(),
            r.status.clone(),
            r.attempts.to_string(),
            r.retries.to_string(),
            if r.backoff_ms.is_empty() {
                "-".to_string()
            } else {
                r.backoff_ms.iter().map(u64::to_string).collect::<Vec<_>>().join("+")
            },
            (r.base + r.extra).to_string(),
            r.extra.to_string(),
            format!("{:.4}", r.cov),
            if r.stable { "yes" } else { "no" }.to_string(),
        ]);
    }

    let cell = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
    let sterile = cell("sterile");
    let noisy = cell("noisy");
    let flaky = cell("flaky");
    let broken = cell("broken");
    let expected_backoff = Backoff::new(sup_cfg.backoff, sup_cfg.seed ^ name_seed("flaky"))
        .schedule(flaky.retries as u32);

    let checks = vec![
        Check::new(
            "sterile cell completes first try with no extra repetitions",
            sterile.status == "ok" && sterile.attempts == 1 && sterile.extra == 0,
            format!(
                "status={} attempts={} extra={} cov={:.4}",
                sterile.status, sterile.attempts, sterile.extra, sterile.cov
            ),
        ),
        Check::new(
            "noisy cell triggers adaptive re-measurement",
            noisy.status == "ok" && noisy.extra > 0,
            format!(
                "status={} extra={} cov={:.4} target={}",
                noisy.status, noisy.extra, noisy.cov, policy.target_cov
            ),
        ),
        Check::new(
            "flaky cell recovers after transient retries",
            flaky.status == "ok" && flaky.attempts == 3 && flaky.retries == 2,
            format!(
                "status={} attempts={} retries={}",
                flaky.status, flaky.attempts, flaky.retries
            ),
        ),
        Check::new(
            "broken cell quarantines as permanent after one attempt",
            broken.status == "quarantined (permanent)" && broken.attempts == 1,
            format!("status={} attempts={}", broken.status, broken.attempts),
        ),
        Check::new(
            "retry backoff follows the seeded deterministic schedule",
            flaky.backoff_ms == expected_backoff,
            format!("recorded={:?} expected={:?}", flaky.backoff_ms, expected_backoff),
        ),
    ];

    ExpReport { name: "campaign".into(), tables: vec![t], checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(dir: &str) -> ExpOptions {
        let out = std::env::temp_dir().join(format!("ompvar_campaign_{dir}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        ExpOptions { out_dir: out, ..ExpOptions::fast() }
    }

    #[test]
    fn campaign_checks_pass() {
        let o = opts("pass");
        let rep = run(&o);
        for c in &rep.checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
        // Its crash-safety artifacts exist and parse.
        let manifest = o.checkpoint_dir().join("campaign.jsonl");
        let text = std::fs::read_to_string(&manifest).unwrap();
        assert!(text.starts_with("{\"schema\":\"ompvar-checkpoint/1\""), "{text}");
        let trace = std::fs::read_to_string(o.checkpoint_dir().join("campaign.trace.json")).unwrap();
        let v = ompvar_obs::json::parse(&trace).expect("valid chrome trace");
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        let named = |n: &str| {
            events
                .iter()
                .filter(|e| e.get("name").and_then(Value::as_str) == Some(n))
                .count()
        };
        // 2 retries on flaky + 1 quarantine on broken, plus an attempt
        // span per supervised attempt (6 begin/end pairs).
        assert_eq!(named("supervisor_retry"), 2, "{trace}");
        assert_eq!(named("supervisor_quarantine"), 1);
        assert!(named("attempt") >= 6);
        let _ = std::fs::remove_dir_all(&o.out_dir);
    }

    /// Satellite: retry determinism. Two runs with the same seed produce
    /// bit-identical tables — backoff schedules, retry counts, and every
    /// measured cell included.
    #[test]
    fn campaign_is_bit_identical_across_runs() {
        let o1 = opts("det1");
        let o2 = opts("det2");
        let r1 = run(&o1);
        let r2 = run(&o2);
        assert_eq!(r1.render(), r2.render());
        let _ = std::fs::remove_dir_all(&o1.out_dir);
        let _ = std::fs::remove_dir_all(&o2.out_dir);
    }

    /// A campaign resumed from its own manifest replays every cell
    /// without re-measuring and reports identically.
    #[test]
    fn campaign_resumes_from_manifest() {
        let o = opts("resume");
        let fresh = run(&o);
        let resumed = run(&ExpOptions { resume: Some(o.checkpoint_dir()), ..o.clone() });
        assert_eq!(fresh.render(), resumed.render());
        let _ = std::fs::remove_dir_all(&o.out_dir);
    }
}
