//! The `analyze` experiment: the static analyzer over the built-in
//! benchmark corpus, plus a flagged-program demonstration.
//!
//! Two jobs:
//!
//! 1. **Corpus hygiene.** Every region spec the spec-driven experiments
//!    run — syncbench's ten constructs, schedbench's paper schedules,
//!    BabelStream's kernel sweep, taskbench's two patterns — must
//!    analyze *clean*: no diagnostic at `Warn` or above. A warning here
//!    means a harness experiment would measure a program with a latent
//!    hazard, poisoning the variability data it reports.
//! 2. **Detection demonstration.** A textbook lock-order inversion
//!    (AB/BA across two `Locked` scopes) must be flagged `OMPV110`
//!    (may-deadlock) while still passing `validate()` — showing the
//!    Warn tier catches what the hard error tier deliberately admits.
//!
//! The same catalog backs the CLI's **pre-flight gate**: before an
//! experiment runs, [`preflight_specs`] lists its built-in specs, each
//! is analyzed, and an `Error`-severity finding quarantines the
//! experiment as a permanent failure — recorded in the checkpoint
//! manifest and the JSON run report — instead of crashing mid-run.

use crate::common::{Check, ExpOptions, ExpReport};
use ompvar_analyze::{analyze, Severity};
use ompvar_bench_epcc::taskbench::{self, TaskPattern};
use ompvar_bench_epcc::{schedbench, syncbench, EpccConfig};
use ompvar_bench_epcc::syncbench::SyncConstruct;
use ompvar_bench_stream::kernels::StreamConfig;
use ompvar_core::Table;
use ompvar_rt::region::{Construct, RegionSpec};

/// Experiments whose built-in region specs [`preflight_specs`] covers.
/// The rest (`fuzz`, `trace`, `faults`, …) generate or perturb their
/// programs dynamically and guard themselves.
pub const SPEC_DRIVEN: [&str; 12] = [
    "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "ablation", "taskbench",
    "chunks", "campaign",
];

/// Which benchmark families an experiment draws its specs from:
/// `(syncbench, schedbench, stream, taskbench)`.
fn families(experiment: &str) -> (bool, bool, bool, bool) {
    match experiment {
        "table2" | "chunks" | "campaign" => (false, true, false, false),
        "variability" => (true, true, false, false),
        "fig1" | "ablation" => (true, false, false, false),
        "fig2" => (false, false, true, false),
        "fig3" | "fig4" | "fig5" => (true, true, true, false),
        "fig6" | "fig7" => (true, true, false, false),
        "taskbench" => (false, false, false, true),
        _ => (false, false, false, false),
    }
}

fn specs_for(
    sync: bool,
    sched: bool,
    stream: bool,
    task: bool,
    opts: &ExpOptions,
) -> Vec<(String, RegionSpec)> {
    let n = 4; // representative small team; analysis is team-size-uniform
    let reps = opts.outer_reps().min(8);
    let mut out = Vec::new();
    if sync {
        let cfg = EpccConfig::syncbench_default().fast(reps);
        for c in SyncConstruct::ALL {
            out.push((
                format!("syncbench/{}", c.label()),
                syncbench::region_with_inner(&cfg, c, n, 4),
            ));
        }
    }
    if sched {
        let cfg = EpccConfig::schedbench_default().fast(reps);
        for s in schedbench::paper_schedules() {
            out.push((format!("schedbench/{s:?}"), schedbench::region(&cfg, s, n)));
        }
    }
    if stream {
        out.push((
            "stream/kernel-sweep".to_string(),
            ompvar_bench_stream::region(&StreamConfig::small(), n),
        ));
    }
    if task {
        let cfg = EpccConfig::syncbench_default().fast(reps);
        for p in TaskPattern::ALL {
            out.push((
                format!("taskbench/{}", p.label()),
                taskbench::region(&cfg, p, n, 2),
            ));
        }
    }
    out
}

/// The built-in region specs experiment `experiment` will run, labeled.
/// Empty for experiments that build programs dynamically. This is the
/// pre-flight gate's work list.
pub fn preflight_specs(experiment: &str, opts: &ExpOptions) -> Vec<(String, RegionSpec)> {
    let (sync, sched, stream, task) = families(experiment);
    specs_for(sync, sched, stream, task, opts)
}

/// The full deduplicated corpus: every family once.
fn corpus(opts: &ExpOptions) -> Vec<(String, RegionSpec)> {
    specs_for(true, true, true, true, opts)
}

/// The flagged-program demonstration: AB then BA acquisition order over
/// two named locks — valid (Warn, not Error), but may-deadlock.
pub fn lock_inversion_demo() -> RegionSpec {
    RegionSpec::new(
        2,
        vec![
            Construct::Locked {
                lock: 0,
                body: vec![Construct::Locked {
                    lock: 1,
                    body: vec![Construct::DelayUs(0.5)],
                }],
            },
            Construct::Barrier,
            Construct::Locked {
                lock: 1,
                body: vec![Construct::Locked {
                    lock: 0,
                    body: vec![Construct::DelayUs(0.5)],
                }],
            },
        ],
    )
    .expect("a lock cycle is Warn-severity: the spec still validates")
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let corpus = corpus(opts);
    let mut t = Table::new(
        &format!("Static analysis over {} built-in benchmark region(s)", corpus.len()),
        &["spec", "constructs", "diagnostics", "verdict"],
    );
    let mut dirty: Vec<String> = Vec::new();
    for (label, spec) in &corpus {
        let a = analyze(spec);
        let verdict: Vec<&str> = a.verdict().iter().map(|c| c.code()).collect();
        let verdict = if verdict.is_empty() {
            "clean".to_string()
        } else {
            verdict.join(" ")
        };
        if a.max_severity() >= Some(Severity::Warn) {
            dirty.push(format!("{label}: {}", a.render()));
        }
        t.row(&[
            label.clone(),
            spec.constructs.len().to_string(),
            a.diagnostics.len().to_string(),
            verdict,
        ]);
    }

    let mut checks = Vec::new();
    checks.push(Check::new(
        "every built-in benchmark region analyzes clean",
        dirty.is_empty(),
        if dirty.is_empty() {
            format!("{} spec(s), no Warn-or-worse diagnostics", corpus.len())
        } else {
            dirty.join("; ")
        },
    ));

    let demo = lock_inversion_demo();
    let a = analyze(&demo);
    let flagged = a.may_deadlock() && a.verdict().iter().any(|c| c.code() == "OMPV110");
    checks.push(Check::new(
        "analyzer flags the AB/BA lock-order inversion as may-deadlock",
        flagged && demo.validate().is_ok(),
        a.render().replace('\n', "; "),
    ));

    // The Error tier and `validate()` must be the same surface: a
    // statically rejected program's first Error diagnostic carries
    // exactly the `RegionError` that `validate()` returns.
    let bad = RegionSpec {
        n_threads: 2,
        constructs: vec![Construct::Repeat {
            count: 3,
            body: vec![Construct::ParallelFor {
                schedule: ompvar_rt::region::Schedule::Static { chunk: 1 },
                total_iters: 8,
                body_us: 0.1,
                ordered_us: None,
                nowait: true,
            }],
        }],
    };
    let a = analyze(&bad);
    let agree = match (a.first_error(), bad.validate()) {
        (Some(d), Err(e)) => d.cause.as_ref() == Some(&e),
        _ => false,
    };
    checks.push(Check::new(
        "Error-severity diagnostics and validate() agree",
        agree,
        a.first_error()
            .map(|d| d.render())
            .unwrap_or_else(|| "no error diagnostic".to_string()),
    ));

    ExpReport {
        name: "analyze".into(),
        tables: vec![t],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_experiment_passes() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "{}", rep.render());
    }

    /// Table-driven corpus hygiene: every spec-driven experiment's
    /// built-in regions analyze clean, experiment by experiment.
    #[test]
    fn every_experiments_builtin_specs_analyze_clean() {
        let opts = ExpOptions::fast();
        for exp in SPEC_DRIVEN {
            let specs = preflight_specs(exp, &opts);
            assert!(!specs.is_empty(), "{exp} lists no specs");
            for (label, spec) in specs {
                let a = analyze(&spec);
                assert!(
                    a.verdict().is_empty(),
                    "{exp}/{label} is not clean:\n{}",
                    a.render()
                );
                assert!(spec.validate().is_ok(), "{exp}/{label} fails validation");
            }
        }
    }

    #[test]
    fn dynamic_experiments_have_no_preflight_specs() {
        let opts = ExpOptions::fast();
        for exp in ["fuzz", "faults", "trace", "analyze"] {
            assert!(preflight_specs(exp, &opts).is_empty(), "{exp}");
        }
    }
}
