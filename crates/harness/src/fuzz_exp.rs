//! The `fuzz` experiment: differential fuzzing of the two backends.
//!
//! Drives [`ompvar_qcheck::run_fuzz_parallel`]: every case draws a
//! random well-formed region from the campaign seed, runs it on the
//! simulated *and* the native runtime, and holds both to the statically
//! predicted semantic effects of the construct tree (plus determinism of
//! the sim and agreement of measured-interval shapes). Failures are
//! shrunk to a minimal replayable counterexample. `--jobs N` fans the
//! cases across N worker threads; each case is a pure function of
//! `(config, case index)`, so the report — and every check below — is
//! identical at any job count, which oracle #10 verifies on a small
//! side campaign.
//!
//! The case budget defaults to 200 (60 with `--fast`) and can be set
//! with `--fuzz-cases N`; `--seed` picks the campaign base seed. A
//! failing case `i` replays in isolation with
//! `--fuzz-cases 1 --seed <base + i>` (the seed is printed in the
//! failure detail).
//!
//! One check runs the shrinker against a deliberately-broken oracle
//! ("no program may contain a Reduction") to demonstrate that a fresh
//! failure reduces to a one-construct program.

use crate::common::{Check, ExpOptions, ExpReport};
use ompvar_core::Table;
use ompvar_qcheck::gen::{self, GenConfig, ALL_KINDS};
use ompvar_qcheck::{case_seed, oracle, run_fuzz_parallel, shrink, FuzzConfig};
use ompvar_rt::region::Construct;

/// Does the block contain a `Reduction` at any nesting depth?
fn has_reduction(cs: &[Construct]) -> bool {
    cs.iter().any(|c| match c {
        Construct::Reduction { .. } => true,
        Construct::Repeat { body, .. }
        | Construct::ParallelRegion { body }
        | Construct::Locked { body, .. } => has_reduction(body),
        _ => false,
    })
}

/// Shrinker demonstration against a deliberately-broken oracle: the
/// first generated program containing a `Reduction` must reduce to a
/// single-construct single-thread program. Returns (passed, detail).
fn shrinker_demo(seed: u64, cfg: &GenConfig) -> (bool, String) {
    let mut probe = seed;
    let region = loop {
        let r = gen::generate(probe, cfg);
        if has_reduction(&r.constructs) {
            break r;
        }
        probe = probe.wrapping_add(1);
    };
    let before = region.constructs.len();
    let shrunk = shrink::shrink(&region, &mut |r| has_reduction(&r.constructs), 2000);
    let minimal = shrunk.n_threads == 1
        && shrunk.constructs.len() == 1
        && matches!(shrunk.constructs[0], Construct::Reduction { .. });
    (
        minimal,
        format!(
            "broken oracle 'contains Reduction', probe seed {probe}: \
             {before} top-level construct(s) → {:?} on {} thread(s)",
            shrunk.constructs, shrunk.n_threads
        ),
    )
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let cases = opts
        .fuzz_cases
        .unwrap_or(if opts.fast { 60 } else { 200 });
    let cfg = FuzzConfig {
        cases,
        base_seed: opts.seed,
        gen: GenConfig::default(),
    };
    let rep = run_fuzz_parallel(&cfg, ompvar_supervisor::resolve_jobs(opts.jobs));

    let mut t = Table::new(
        &format!(
            "Fuzz: {} differential case(s), base seed {}, {} failure(s)",
            rep.cases,
            cfg.base_seed,
            rep.failures.len()
        ),
        &["construct kind", "generated"],
    );
    for kind in ALL_KINDS {
        let n = rep.coverage.get(kind).copied().unwrap_or(0);
        t.row(&[kind.to_string(), n.to_string()]);
    }

    let mut checks = Vec::new();
    let detail = if rep.failures.is_empty() {
        format!("{} case(s), zero oracle violations", rep.cases)
    } else {
        // Render every failure with its replay seed and shrunk program.
        rep.failures
            .iter()
            .map(|f| {
                format!(
                    "case {}: {}\n  {}",
                    f.case,
                    f.reasons.join("; "),
                    shrink::dump(&f.shrunk, f.case_seed)
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    checks.push(Check::new(
        "both backends agree with predicted effects on every case",
        rep.failures.is_empty(),
        detail,
    ));

    let missing: Vec<&str> = ALL_KINDS
        .into_iter()
        .filter(|k| !rep.coverage.contains_key(k))
        .collect();
    // Full grammar coverage is only a fair demand with a real budget; a
    // handful of cases cannot visit all 16 kinds.
    let coverage_expected = rep.cases >= 50;
    checks.push(Check::new(
        "campaign exercises every construct kind",
        missing.is_empty() || !coverage_expected,
        if missing.is_empty() {
            format!("all {} kinds covered", ALL_KINDS.len())
        } else if coverage_expected {
            format!("never generated: {missing:?}")
        } else {
            format!(
                "{} of {} kinds in {} case(s); full coverage requires ≥ 50",
                ALL_KINDS.len() - missing.len(),
                ALL_KINDS.len(),
                rep.cases
            )
        },
    ));

    let probe = case_seed(cfg.base_seed, 0);
    let regen_ok = gen::generate(probe, &cfg.gen) == gen::generate(probe, &cfg.gen);
    checks.push(Check::new(
        "generation is deterministic per seed",
        regen_ok,
        format!("case 0 (seed {probe}) regenerated identically: {regen_ok}"),
    ));

    let (minimal, demo_detail) = shrinker_demo(cfg.base_seed, &cfg.gen);
    checks.push(Check::new(
        "shrinker reduces a broken-oracle failure to one construct",
        minimal,
        demo_detail,
    ));

    // Oracle #10 on a small side campaign: the parallel driver must
    // produce a byte-identical report to the sequential one. A bounded
    // budget keeps this a structural check on the drivers, not a second
    // full campaign.
    let equiv_cfg = FuzzConfig {
        cases: cases.min(16),
        base_seed: opts.seed,
        gen: GenConfig::default(),
    };
    let violations = oracle::check_jobs_equivalence(&equiv_cfg, 8);
    checks.push(Check::new(
        "parallel fuzz driver reports identically to sequential (oracle #10)",
        violations.is_empty(),
        if violations.is_empty() {
            format!("{} case(s) at jobs=1 vs jobs=8: reports identical", equiv_cfg.cases)
        } else {
            violations.join("; ")
        },
    ));

    ExpReport {
        name: "fuzz".into(),
        tables: vec![t],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let opts = ExpOptions {
            fuzz_cases: Some(12),
            ..ExpOptions::fast()
        };
        let rep = run(&opts);
        assert!(rep.all_passed(), "fuzz checks failed:\n{}", rep.render());
    }

    #[test]
    fn case_budget_flag_is_respected() {
        let opts = ExpOptions {
            fuzz_cases: Some(3),
            ..ExpOptions::fast()
        };
        let rep = run(&opts);
        assert!(rep.tables[0].render().contains("3 differential case(s)"));
    }
}
