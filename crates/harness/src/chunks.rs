//! Extension experiment: the schedbench chunk-size sweep.
//!
//! The paper runs schedbench "with three different schedules ... and
//! various different chunk sizes" but only presents chunk size 1. This
//! experiment reports the full sweep: per-iteration dispatch overhead for
//! static/dynamic/guided at chunk sizes 1–128, on both platforms.
//!
//! Expected shapes: dynamic dispatch overhead falls roughly as `1/chunk`
//! (one shared-counter RMW amortized over `chunk` iterations); static is
//! flat and near zero; guided sits near static (its chunks start large).

use crate::common::{Check, ExpOptions, ExpReport, Platform};
use ompvar_bench_epcc::{schedbench, EpccConfig};
use ompvar_core::Table;
use ompvar_rt::region::Schedule;
use ompvar_rt::runner::RegionRunner;

/// Chunk sizes swept.
pub const CHUNKS: [u64; 5] = [1, 4, 16, 64, 128];

fn cfg(opts: &ExpOptions) -> EpccConfig {
    let mut cfg = EpccConfig::schedbench_default().fast(opts.outer_reps().min(10));
    cfg.iters_per_thr = if opts.fast { 512 } else { 2048 };
    cfg
}

/// Per-iteration dispatch overhead (µs) for one schedule kind across the
/// chunk sweep.
pub fn sweep(
    opts: &ExpOptions,
    platform: Platform,
    n_threads: usize,
    make: impl Fn(u64) -> Schedule,
) -> Vec<(u64, f64)> {
    let cfg = cfg(opts);
    let rt = platform.pinned_rt(n_threads);
    CHUNKS
        .iter()
        .map(|&chunk| {
            let region = schedbench::region(&cfg, make(chunk), n_threads);
            let res = rt.run_region(&region, opts.seed).expect("experiment region completes");
            let mean = res.reps().iter().sum::<f64>() / res.reps().len() as f64;
            (chunk, schedbench::per_iter_overhead_us(&cfg, mean))
        })
        .collect()
}

/// Execute and report.
pub fn run(opts: &ExpOptions) -> ExpReport {
    let mut tables = Vec::new();
    let mut checks = Vec::new();
    for (platform, n) in [(Platform::Dardel, 64usize), (Platform::Vera, 16)] {
        let stat = sweep(opts, platform, n, |c| Schedule::Static { chunk: c });
        let dyn_ = sweep(opts, platform, n, |c| Schedule::Dynamic { chunk: c });
        let gui = sweep(opts, platform, n, |c| Schedule::Guided { min_chunk: c });
        let mut t = Table::new(
            &format!(
                "Chunk sweep: per-iteration overhead (µs), {} threads, {}",
                n,
                platform.label()
            ),
            &["chunk", "static", "dynamic", "guided"],
        );
        for i in 0..CHUNKS.len() {
            t.row(&[
                CHUNKS[i].to_string(),
                format!("{:.4}", stat[i].1),
                format!("{:.4}", dyn_[i].1),
                format!("{:.4}", gui[i].1),
            ]);
        }
        tables.push(t);

        // The absolute overhead includes the all-core frequency droop,
        // which hits every schedule equally; the *dispatch* component is
        // the delta above static at the same chunk size.
        let disp1 = dyn_[0].1 - stat[0].1;
        let disp128 = dyn_[CHUNKS.len() - 1].1 - stat[CHUNKS.len() - 1].1;
        checks.push(Check::new(
            &format!(
                "{}: dynamic dispatch amortizes with chunk size",
                platform.label()
            ),
            disp128 < disp1 / 4.0,
            format!(
                "dispatch = dynamic − static: {disp1:.4} µs/iter @ chunk 1 vs {disp128:.4} @ 128"
            ),
        ));
        checks.push(Check::new(
            &format!("{}: dynamic_1 dispatch is substantial", platform.label()),
            disp1 > 0.05,
            format!("{disp1:.4} µs/iter"),
        ));
    }
    ExpReport {
        name: "chunks".into(),
        tables,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_shapes_hold() {
        let rep = run(&ExpOptions::fast());
        assert!(rep.all_passed(), "chunks checks failed:\n{}", rep.render());
    }
}
