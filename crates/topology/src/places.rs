//! `OMP_PLACES`-style place lists.
//!
//! A *place* is an unordered set of hardware threads; a *place list* is an
//! ordered list of places that OpenMP threads are bound to according to the
//! [`ProcBind`](crate::ProcBind) policy. This module provides the abstract
//! place kinds (`threads`, `cores`, `numa_domains`, `sockets`), explicit
//! place lists, and a parser for the OpenMP interval notation, e.g.
//! `"{0},{1},{2}"`, `"{0:4}:8:4"`, `"cores(16)"`.

use crate::machine::{HwThreadId, MachineSpec, NumaId};
use std::fmt;

/// One place: a set of hardware threads a software thread may run on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Place {
    hws: Vec<HwThreadId>,
}

impl Place {
    /// Build a place from hardware-thread ids. Ids are deduplicated and kept
    /// sorted so that equality is set equality.
    pub fn new(mut hws: Vec<HwThreadId>) -> Self {
        hws.sort_unstable();
        hws.dedup();
        assert!(!hws.is_empty(), "a place must contain at least one hw thread");
        Place { hws }
    }

    /// A place holding a single hardware thread.
    pub fn single(hw: HwThreadId) -> Self {
        Place { hws: vec![hw] }
    }

    /// The hardware threads in this place, sorted ascending.
    pub fn hw_threads(&self) -> &[HwThreadId] {
        &self.hws
    }

    /// Lowest-numbered hardware thread, used as the canonical pin target
    /// when a thread is bound to a multi-thread place.
    pub fn first(&self) -> HwThreadId {
        self.hws[0]
    }

    /// Number of hardware threads in the place.
    pub fn len(&self) -> usize {
        self.hws.len()
    }

    /// Whether the place is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.hws.is_empty()
    }

    /// Whether the place contains `hw`.
    pub fn contains(&self, hw: HwThreadId) -> bool {
        self.hws.binary_search(&hw).is_ok()
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, h) in self.hws.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", h.0)?;
        }
        write!(f, "}}")
    }
}

/// Abstract place-list specification, resolved against a [`MachineSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum Places {
    /// One place per hardware thread (`OMP_PLACES=threads`), optionally
    /// limited to the first `n` places.
    Threads(Option<usize>),
    /// One place per physical core (`OMP_PLACES=cores`), each containing
    /// all SMT contexts of the core, optionally limited to `n` places.
    Cores(Option<usize>),
    /// One place per NUMA domain (`OMP_PLACES=numa_domains`).
    NumaDomains(Option<usize>),
    /// One place per socket (`OMP_PLACES=sockets`).
    Sockets(Option<usize>),
    /// An explicit, ordered list of places.
    Explicit(Vec<Place>),
}

impl Places {
    /// One single-thread place per *core* (first SMT context only), limited
    /// to the first `n` cores. This is the classic "ST" pinning used in the
    /// paper: one OpenMP thread per physical core, siblings left idle.
    pub fn one_per_core(machine: &MachineSpec, n: usize) -> Places {
        assert!(n <= machine.n_cores(), "requested more cores than exist");
        Places::Explicit((0..n).map(|c| Place::single(HwThreadId(c))).collect())
    }

    /// One single-thread place per *hardware thread* of the first
    /// `n_cores` cores, siblings included — the "MT" configuration:
    /// core 0 ctx 0, core 0 ctx 1, core 1 ctx 0, …
    pub fn smt_packed(machine: &MachineSpec, n_cores: usize) -> Places {
        assert!(n_cores <= machine.n_cores());
        let mut places = Vec::with_capacity(n_cores * machine.smt);
        for c in 0..n_cores {
            for s in 0..machine.smt {
                places.push(Place::single(HwThreadId(c + s * machine.n_cores())));
            }
        }
        Places::Explicit(places)
    }

    /// One single-thread place per core of the given NUMA domains, in
    /// domain order — used for the Vera one-NUMA vs. cross-NUMA study.
    pub fn cores_of_numas(machine: &MachineSpec, numas: &[NumaId], per_numa: usize) -> Places {
        let mut places = Vec::new();
        for &n in numas {
            for c in machine.cores_of_numa(n).into_iter().take(per_numa) {
                places.push(Place::single(HwThreadId(c.0)));
            }
        }
        Places::Explicit(places)
    }

    /// Resolve the specification into a concrete ordered place list.
    pub fn resolve(&self, machine: &MachineSpec) -> Vec<Place> {
        match self {
            Places::Threads(limit) => {
                let n = limit.unwrap_or(machine.n_hw_threads());
                assert!(n <= machine.n_hw_threads(), "threads({}) exceeds machine", n);
                // Enumerate core-major so that "threads" places walk cores
                // before SMT siblings, matching `close` expectations on
                // Linux-ordered machines.
                let mut out = Vec::with_capacity(n);
                'outer: for c in 0..machine.n_cores() {
                    for s in 0..machine.smt {
                        if out.len() == n {
                            break 'outer;
                        }
                        out.push(Place::single(HwThreadId(c + s * machine.n_cores())));
                    }
                }
                out
            }
            Places::Cores(limit) => {
                let n = limit.unwrap_or(machine.n_cores());
                assert!(n <= machine.n_cores(), "cores({}) exceeds machine", n);
                (0..n)
                    .map(|c| Place::new(machine.hw_threads_of_core(crate::CoreId(c))))
                    .collect()
            }
            Places::NumaDomains(limit) => {
                let n = limit.unwrap_or(machine.n_numa());
                assert!(n <= machine.n_numa(), "numa_domains({}) exceeds machine", n);
                (0..n)
                    .map(|d| Place::new(machine.hw_threads_of_numa(NumaId(d))))
                    .collect()
            }
            Places::Sockets(limit) => {
                let n = limit.unwrap_or(machine.sockets);
                assert!(n <= machine.sockets, "sockets({}) exceeds machine", n);
                (0..n)
                    .map(|s| {
                        let mut hws = Vec::new();
                        for d in 0..machine.numa_per_socket {
                            hws.extend(
                                machine.hw_threads_of_numa(NumaId(s * machine.numa_per_socket + d)),
                            );
                        }
                        Place::new(hws)
                    })
                    .collect()
            }
            Places::Explicit(list) => {
                for p in list {
                    for &h in p.hw_threads() {
                        assert!(
                            h.0 < machine.n_hw_threads(),
                            "place references hw thread {} beyond machine size {}",
                            h.0,
                            machine.n_hw_threads()
                        );
                    }
                }
                list.clone()
            }
        }
    }

    /// Parse the `OMP_PLACES` syntax.
    ///
    /// Supported forms:
    /// * abstract names: `threads`, `cores`, `sockets`, `numa_domains`,
    ///   optionally with a count: `cores(16)`;
    /// * explicit lists of intervals: `{0},{1},{2}`, `{0,64},{1,65}`,
    ///   `{0:4}` (4 ids starting at 0), `{0:4:2}` (stride 2);
    /// * replicated intervals: `{0:4}:8:4` — 8 copies of the place,
    ///   shifting the base by 4 each time (stride defaults to the length).
    pub fn parse(s: &str) -> Result<Places, PlacesParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(PlacesParseError::new("empty OMP_PLACES string"));
        }
        if !s.starts_with('{') {
            // Abstract name, optional (count).
            let (name, count) = match s.find('(') {
                Some(open) => {
                    let close = s
                        .rfind(')')
                        .ok_or_else(|| PlacesParseError::new("missing ')'"))?;
                    if close != s.len() - 1 {
                        return Err(PlacesParseError::new("trailing characters after ')'"));
                    }
                    let n: usize = s[open + 1..close]
                        .trim()
                        .parse()
                        .map_err(|_| PlacesParseError::new("invalid count"))?;
                    (&s[..open], Some(n))
                }
                None => (s, None),
            };
            return match name.trim() {
                "threads" => Ok(Places::Threads(count)),
                "cores" => Ok(Places::Cores(count)),
                "sockets" => Ok(Places::Sockets(count)),
                "numa_domains" => Ok(Places::NumaDomains(count)),
                other => Err(PlacesParseError::new(format!(
                    "unknown abstract place name '{other}'"
                ))),
            };
        }
        let mut places = Vec::new();
        for part in split_top_level(s)? {
            parse_place_expr(&part, &mut places)?;
        }
        if places.is_empty() {
            return Err(PlacesParseError::new("no places in list"));
        }
        Ok(Places::Explicit(places))
    }
}

/// Error produced by [`Places::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacesParseError {
    msg: String,
}

impl PlacesParseError {
    fn new(msg: impl Into<String>) -> Self {
        PlacesParseError { msg: msg.into() }
    }
}

impl fmt::Display for PlacesParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OMP_PLACES parse error: {}", self.msg)
    }
}

impl std::error::Error for PlacesParseError {}

/// Split `"{0:4}:2:4,{8},{9}"` into top-level comma-separated items,
/// respecting braces.
fn split_top_level(s: &str) -> Result<Vec<String>, PlacesParseError> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '{' => {
                depth += 1;
                cur.push(ch);
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| PlacesParseError::new("unbalanced '}'"))?;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if depth != 0 {
        return Err(PlacesParseError::new("unbalanced '{'"));
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Parse one `{...}` place, or a replicated `{...}:count[:stride]` group.
fn parse_place_expr(part: &str, out: &mut Vec<Place>) -> Result<(), PlacesParseError> {
    let part = part.trim();
    let close = part
        .find('}')
        .ok_or_else(|| PlacesParseError::new("expected '{...}' place"))?;
    if !part.starts_with('{') {
        return Err(PlacesParseError::new("place must start with '{'"));
    }
    let base = parse_interval_set(&part[1..close])?;
    let rest = part[close + 1..].trim();
    if rest.is_empty() {
        out.push(Place::new(base.iter().copied().map(HwThreadId).collect()));
        return Ok(());
    }
    // Replication suffix ":count[:stride]".
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| PlacesParseError::new("expected ':count' after place"))?;
    let mut it = rest.split(':');
    let count: usize = it
        .next()
        .unwrap()
        .trim()
        .parse()
        .map_err(|_| PlacesParseError::new("invalid replication count"))?;
    let stride: i64 = match it.next() {
        Some(t) => t
            .trim()
            .parse()
            .map_err(|_| PlacesParseError::new("invalid replication stride"))?,
        None => base.len() as i64,
    };
    if it.next().is_some() {
        return Err(PlacesParseError::new("too many ':' fields"));
    }
    if count == 0 {
        return Err(PlacesParseError::new("replication count must be positive"));
    }
    for k in 0..count {
        let shift = stride * k as i64;
        let hws: Result<Vec<HwThreadId>, _> = base
            .iter()
            .map(|&b| {
                let v = b as i64 + shift;
                if v < 0 {
                    Err(PlacesParseError::new("negative hw thread id in replication"))
                } else {
                    Ok(HwThreadId(v as usize))
                }
            })
            .collect();
        out.push(Place::new(hws?));
    }
    Ok(())
}

/// Parse the inside of `{...}`: comma-separated ids or
/// `lower[:len[:stride]]` intervals.
fn parse_interval_set(s: &str) -> Result<Vec<usize>, PlacesParseError> {
    let mut out = Vec::new();
    for item in s.split(',') {
        let item = item.trim();
        if item.is_empty() {
            return Err(PlacesParseError::new("empty item inside place"));
        }
        let fields: Vec<&str> = item.split(':').collect();
        match fields.len() {
            1 => out.push(
                fields[0]
                    .trim()
                    .parse()
                    .map_err(|_| PlacesParseError::new("invalid hw thread id"))?,
            ),
            2 | 3 => {
                let lower: i64 = fields[0]
                    .trim()
                    .parse()
                    .map_err(|_| PlacesParseError::new("invalid interval lower bound"))?;
                let len: usize = fields[1]
                    .trim()
                    .parse()
                    .map_err(|_| PlacesParseError::new("invalid interval length"))?;
                let stride: i64 = if fields.len() == 3 {
                    fields[2]
                        .trim()
                        .parse()
                        .map_err(|_| PlacesParseError::new("invalid interval stride"))?
                } else {
                    1
                };
                if len == 0 {
                    return Err(PlacesParseError::new("interval length must be positive"));
                }
                for k in 0..len as i64 {
                    let v = lower + k * stride;
                    if v < 0 {
                        return Err(PlacesParseError::new("negative hw thread id in interval"));
                    }
                    out.push(v as usize);
                }
            }
            _ => return Err(PlacesParseError::new("too many ':' in interval")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    #[test]
    fn resolve_threads_core_major() {
        let m = MachineSpec::dardel();
        let p = Places::Threads(Some(4)).resolve(&m);
        assert_eq!(p.len(), 4);
        // Core-major: cpu0 ctx0, cpu0 ctx1(=128), cpu1 ctx0, cpu1 ctx1.
        assert_eq!(p[0], Place::single(HwThreadId(0)));
        assert_eq!(p[1], Place::single(HwThreadId(128)));
        assert_eq!(p[2], Place::single(HwThreadId(1)));
        assert_eq!(p[3], Place::single(HwThreadId(129)));
    }

    #[test]
    fn resolve_cores_includes_siblings() {
        let m = MachineSpec::dardel();
        let p = Places::Cores(Some(2)).resolve(&m);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].hw_threads(), &[HwThreadId(0), HwThreadId(128)]);
    }

    #[test]
    fn resolve_sockets_and_numa() {
        let m = MachineSpec::vera();
        let socks = Places::Sockets(None).resolve(&m);
        assert_eq!(socks.len(), 2);
        assert_eq!(socks[0].len(), 16);
        let numas = Places::NumaDomains(None).resolve(&m);
        assert_eq!(numas.len(), 2);
        assert_eq!(numas[0], socks[0]);
    }

    #[test]
    fn one_per_core_skips_siblings() {
        let m = MachineSpec::dardel();
        let Places::Explicit(p) = Places::one_per_core(&m, 128) else {
            panic!()
        };
        assert_eq!(p.len(), 128);
        assert!(p.iter().all(|pl| pl.len() == 1));
        assert!(p.iter().all(|pl| pl.first().0 < 128));
    }

    #[test]
    fn smt_packed_interleaves_contexts() {
        let m = MachineSpec::dardel();
        let Places::Explicit(p) = Places::smt_packed(&m, 2) else {
            panic!()
        };
        let ids: Vec<usize> = p.iter().map(|pl| pl.first().0).collect();
        assert_eq!(ids, vec![0, 128, 1, 129]);
    }

    #[test]
    fn parse_abstract_names() {
        assert_eq!(Places::parse("threads").unwrap(), Places::Threads(None));
        assert_eq!(Places::parse("cores(16)").unwrap(), Places::Cores(Some(16)));
        assert_eq!(
            Places::parse("numa_domains(2)").unwrap(),
            Places::NumaDomains(Some(2))
        );
        assert!(Places::parse("hyperthreads").is_err());
        assert!(Places::parse("cores(x)").is_err());
    }

    #[test]
    fn parse_explicit_singletons() {
        let p = Places::parse("{0},{1},{2}").unwrap();
        let Places::Explicit(list) = p else { panic!() };
        assert_eq!(list.len(), 3);
        assert_eq!(list[2], Place::single(HwThreadId(2)));
    }

    #[test]
    fn parse_interval_and_stride() {
        let Places::Explicit(list) = Places::parse("{0:4:2}").unwrap() else {
            panic!()
        };
        assert_eq!(
            list[0].hw_threads(),
            &[HwThreadId(0), HwThreadId(2), HwThreadId(4), HwThreadId(6)]
        );
    }

    #[test]
    fn parse_replication() {
        // 8 places of 4 contiguous cpus each: {0-3},{4-7},...
        let Places::Explicit(list) = Places::parse("{0:4}:8:4").unwrap() else {
            panic!()
        };
        assert_eq!(list.len(), 8);
        assert_eq!(list[7].first(), HwThreadId(28));
        // Default stride = place length.
        let Places::Explicit(list) = Places::parse("{0:4}:3").unwrap() else {
            panic!()
        };
        assert_eq!(list[2].first(), HwThreadId(8));
    }

    #[test]
    fn parse_multi_member_place() {
        let Places::Explicit(list) = Places::parse("{0,64},{1,65}").unwrap() else {
            panic!()
        };
        assert_eq!(list[0].hw_threads(), &[HwThreadId(0), HwThreadId(64)]);
    }

    #[test]
    fn parse_errors() {
        assert!(Places::parse("").is_err());
        assert!(Places::parse("{").is_err());
        assert!(Places::parse("{}").is_err());
        assert!(Places::parse("{0:0}").is_err());
        assert!(Places::parse("{0}:0").is_err());
        assert!(Places::parse("{0:2:-1}").is_err()); // goes negative at k=1? 0,-1 → negative
    }

    #[test]
    fn negative_stride_ok_when_non_negative_ids() {
        let Places::Explicit(list) = Places::parse("{4:3:-2}").unwrap() else {
            panic!()
        };
        assert_eq!(
            list[0].hw_threads(),
            &[HwThreadId(0), HwThreadId(2), HwThreadId(4)]
        );
    }

    #[test]
    fn display_roundtrip() {
        let p = Place::new(vec![HwThreadId(3), HwThreadId(1)]);
        assert_eq!(p.to_string(), "{1,3}");
    }

    #[test]
    #[should_panic(expected = "beyond machine size")]
    fn resolve_rejects_out_of_range_explicit() {
        let m = MachineSpec::vera();
        Places::parse("{40}").unwrap().resolve(&m);
    }
}
