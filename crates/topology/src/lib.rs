#![warn(missing_docs)]

//! Hardware topology model for the `ompvar` project.
//!
//! This crate models the structural properties of a shared-memory multicore
//! node — sockets, NUMA domains, physical cores and SMT hardware threads —
//! together with the OpenMP affinity machinery built on top of it:
//! [`Places`] (the `OMP_PLACES` analogue) and [`ProcBind`] (the
//! `OMP_PROC_BIND` analogue), plus the thread→place assignment algorithm.
//!
//! Two machine presets reproduce the platforms of the SC'23 study:
//!
//! * [`MachineSpec::dardel`] — one node of the HPE Cray EX *Dardel* system:
//!   2× AMD EPYC Zen2, 64 cores per socket, SMT2, 8 NUMA domains of 16
//!   cores, 2.25 GHz base / 3.4 GHz max.
//! * [`MachineSpec::vera`] — one node of the *Vera* cluster: 2× Intel Xeon
//!   Gold 6130, 16 cores per socket, no SMT, 2 NUMA domains, 2.1 GHz base /
//!   3.7 GHz max.
//!
//! Hardware-thread numbering follows the common Linux enumeration where
//! logical CPU `i` for `i < n_cores` is the first hardware thread of core
//! `i`, and logical CPU `i + n_cores` is its SMT sibling.

pub mod affinity;
pub mod machine;
pub mod places;

pub use affinity::{assign_places, ProcBind, ThreadAssignment};
pub use machine::{CoreId, HwThreadId, MachineSpec, NumaId, SocketId};
pub use places::{Place, Places};
