//! Structural machine description: sockets → NUMA domains → cores → HW threads.

use std::fmt;

/// Identifier of a hardware thread (logical CPU) on the node.
///
/// Numbering is Linux-style: hardware thread `i` with `i < n_cores` is the
/// first SMT context of physical core `i`; `i + n_cores` is its sibling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HwThreadId(pub usize);

/// Identifier of a physical core on the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

/// Identifier of a NUMA domain on the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NumaId(pub usize);

/// Identifier of a socket (package) on the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub usize);

impl fmt::Display for HwThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Clock specification of the cores of a machine.
///
/// `turbo_bins` maps the number of *active* cores in a socket to the highest
/// sustainable boost frequency (GHz): `turbo_bins[k]` applies when `k + 1`
/// cores are active. When more cores are active than the table covers, the
/// last entry applies. An empty table means "no turbo": cores always run at
/// `max_ghz`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSpec {
    /// Guaranteed base frequency in GHz.
    pub base_ghz: f64,
    /// Maximum single-core boost frequency in GHz.
    pub max_ghz: f64,
    /// Active-core-count → sustainable boost frequency table.
    pub turbo_bins: Vec<f64>,
}

impl ClockSpec {
    /// Sustainable frequency with `active` cores busy in the socket.
    ///
    /// `active == 0` is treated as a single active core (the querying one).
    pub fn sustainable_ghz(&self, active: usize) -> f64 {
        if self.turbo_bins.is_empty() {
            return self.max_ghz;
        }
        let idx = active.saturating_sub(1).min(self.turbo_bins.len() - 1);
        self.turbo_bins[idx]
    }
}

/// Memory-system specification, per NUMA domain.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// Peak read+write bandwidth of one NUMA domain's local memory, GB/s.
    pub local_bw_gbs: f64,
    /// Fraction of `local_bw_gbs` attainable when accessing a *remote*
    /// NUMA domain (0 < f ≤ 1).
    pub remote_bw_factor: f64,
    /// Additional latency in nanoseconds for a remote access stream setup.
    pub remote_latency_ns: f64,
}

/// Structural and nominal-performance description of one node.
///
/// The model is regular: every socket holds `numa_per_socket` NUMA domains
/// of `cores_per_numa` cores each, and every core exposes `smt` hardware
/// threads. This covers both study platforms and typical HPC nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable platform name (e.g. `"dardel"`).
    pub name: String,
    /// Number of sockets (packages).
    pub sockets: usize,
    /// NUMA domains per socket.
    pub numa_per_socket: usize,
    /// Physical cores per NUMA domain.
    pub cores_per_numa: usize,
    /// Hardware threads per core (1 = no SMT, 2 = SMT2).
    pub smt: usize,
    /// Clock specification shared by all cores.
    pub clock: ClockSpec,
    /// Memory specification shared by all NUMA domains.
    pub memory: MemorySpec,
}

impl MachineSpec {
    /// One Dardel node: 2× AMD EPYC 7742 (Zen2), 64 cores/socket, SMT2,
    /// 4 NUMA domains per socket (NPS4), 2.25 GHz base, 3.4 GHz boost.
    pub fn dardel() -> Self {
        MachineSpec {
            name: "dardel".to_string(),
            sockets: 2,
            numa_per_socket: 4,
            cores_per_numa: 16,
            smt: 2,
            clock: ClockSpec {
                base_ghz: 2.25,
                max_ghz: 3.4,
                // EPYC Zen2 boost droops gently with active core count and
                // holds a relatively high, *stable* all-core boost — the
                // paper observes little frequency variation on Dardel.
                turbo_bins: vec![
                    3.4, 3.4, 3.35, 3.35, 3.3, 3.3, 3.25, 3.25, 3.2, 3.2, 3.15, 3.15, 3.1, 3.1,
                    3.05, 3.0,
                ],
            },
            memory: MemorySpec {
                local_bw_gbs: 45.0,
                remote_bw_factor: 0.55,
                remote_latency_ns: 110.0,
            },
        }
    }

    /// One Vera node: 2× Intel Xeon Gold 6130, 16 cores/socket, no SMT,
    /// one NUMA domain per socket, 2.1 GHz base, 3.7 GHz single-core turbo.
    pub fn vera() -> Self {
        MachineSpec {
            name: "vera".to_string(),
            sockets: 2,
            numa_per_socket: 1,
            cores_per_numa: 16,
            smt: 1,
            clock: ClockSpec {
                base_ghz: 2.1,
                max_ghz: 3.7,
                // Skylake-SP turbo bins step down steeply with active core
                // count; few-core states are high but unstable, which is
                // what makes cross-NUMA placements on Vera frequency-noisy.
                turbo_bins: vec![
                    3.7, 3.7, 3.5, 3.5, 3.4, 3.4, 3.4, 3.4, 3.1, 3.1, 3.1, 3.1, 2.8, 2.8, 2.8,
                    2.8,
                ],
            },
            memory: MemorySpec {
                local_bw_gbs: 55.0,
                remote_bw_factor: 0.5,
                remote_latency_ns: 130.0,
            },
        }
    }

    /// A small generic machine, useful for tests: `sockets` × `cores` cores,
    /// optional SMT, one NUMA domain per socket.
    pub fn generic(sockets: usize, cores_per_socket: usize, smt: usize) -> Self {
        assert!(sockets >= 1 && cores_per_socket >= 1 && smt >= 1);
        MachineSpec {
            name: format!("generic{}x{}x{}", sockets, cores_per_socket, smt),
            sockets,
            numa_per_socket: 1,
            cores_per_numa: cores_per_socket,
            smt,
            clock: ClockSpec {
                base_ghz: 2.0,
                max_ghz: 3.0,
                turbo_bins: vec![],
            },
            memory: MemorySpec {
                local_bw_gbs: 40.0,
                remote_bw_factor: 0.6,
                remote_latency_ns: 100.0,
            },
        }
    }

    /// Total number of physical cores on the node.
    pub fn n_cores(&self) -> usize {
        self.sockets * self.numa_per_socket * self.cores_per_numa
    }

    /// Total number of NUMA domains on the node.
    pub fn n_numa(&self) -> usize {
        self.sockets * self.numa_per_socket
    }

    /// Total number of hardware threads (logical CPUs) on the node.
    pub fn n_hw_threads(&self) -> usize {
        self.n_cores() * self.smt
    }

    /// Physical core that hardware thread `hw` belongs to.
    pub fn core_of(&self, hw: HwThreadId) -> CoreId {
        assert!(hw.0 < self.n_hw_threads(), "hw thread {} out of range", hw.0);
        CoreId(hw.0 % self.n_cores())
    }

    /// SMT context index (0-based) of hardware thread `hw` within its core.
    pub fn smt_index_of(&self, hw: HwThreadId) -> usize {
        assert!(hw.0 < self.n_hw_threads(), "hw thread {} out of range", hw.0);
        hw.0 / self.n_cores()
    }

    /// All hardware threads of physical core `core`, in SMT-index order.
    pub fn hw_threads_of_core(&self, core: CoreId) -> Vec<HwThreadId> {
        assert!(core.0 < self.n_cores(), "core {} out of range", core.0);
        (0..self.smt)
            .map(|s| HwThreadId(core.0 + s * self.n_cores()))
            .collect()
    }

    /// The SMT siblings of `hw` (other hardware threads on the same core).
    pub fn siblings_of(&self, hw: HwThreadId) -> Vec<HwThreadId> {
        let core = self.core_of(hw);
        self.hw_threads_of_core(core)
            .into_iter()
            .filter(|&h| h != hw)
            .collect()
    }

    /// NUMA domain that core `core` belongs to.
    pub fn numa_of_core(&self, core: CoreId) -> NumaId {
        assert!(core.0 < self.n_cores(), "core {} out of range", core.0);
        NumaId(core.0 / self.cores_per_numa)
    }

    /// NUMA domain that hardware thread `hw` belongs to.
    pub fn numa_of(&self, hw: HwThreadId) -> NumaId {
        self.numa_of_core(self.core_of(hw))
    }

    /// Socket that NUMA domain `numa` belongs to.
    pub fn socket_of_numa(&self, numa: NumaId) -> SocketId {
        assert!(numa.0 < self.n_numa(), "numa {} out of range", numa.0);
        SocketId(numa.0 / self.numa_per_socket)
    }

    /// Socket that hardware thread `hw` belongs to.
    pub fn socket_of(&self, hw: HwThreadId) -> SocketId {
        self.socket_of_numa(self.numa_of(hw))
    }

    /// All physical cores in NUMA domain `numa`, in id order.
    pub fn cores_of_numa(&self, numa: NumaId) -> Vec<CoreId> {
        assert!(numa.0 < self.n_numa(), "numa {} out of range", numa.0);
        let lo = numa.0 * self.cores_per_numa;
        (lo..lo + self.cores_per_numa).map(CoreId).collect()
    }

    /// All hardware threads in NUMA domain `numa`, cores first, then
    /// siblings (Linux enumeration order).
    pub fn hw_threads_of_numa(&self, numa: NumaId) -> Vec<HwThreadId> {
        let mut out = Vec::with_capacity(self.cores_per_numa * self.smt);
        for s in 0..self.smt {
            for c in self.cores_of_numa(numa) {
                out.push(HwThreadId(c.0 + s * self.n_cores()));
            }
        }
        out
    }

    /// Topological "distance" between two hardware threads, used by the
    /// simulator to cost synchronization hops and migrations:
    ///
    /// * 0 — same core (SMT siblings),
    /// * 1 — same NUMA domain, different core,
    /// * 2 — same socket, different NUMA domain,
    /// * 3 — different socket.
    pub fn distance(&self, a: HwThreadId, b: HwThreadId) -> u32 {
        if self.core_of(a) == self.core_of(b) {
            0
        } else if self.numa_of(a) == self.numa_of(b) {
            1
        } else if self.socket_of(a) == self.socket_of(b) {
            2
        } else {
            3
        }
    }

    /// Number of distinct sockets touched by a set of hardware threads.
    pub fn sockets_touched(&self, hws: &[HwThreadId]) -> usize {
        let mut seen = vec![false; self.sockets];
        for &h in hws {
            seen[self.socket_of(h).0] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Number of distinct NUMA domains touched by a set of hardware threads.
    pub fn numas_touched(&self, hws: &[HwThreadId]) -> usize {
        let mut seen = vec![false; self.n_numa()];
        for &h in hws {
            seen[self.numa_of(h).0] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dardel_shape() {
        let m = MachineSpec::dardel();
        assert_eq!(m.n_cores(), 128);
        assert_eq!(m.n_hw_threads(), 256);
        assert_eq!(m.n_numa(), 8);
        assert_eq!(m.sockets, 2);
    }

    #[test]
    fn vera_shape() {
        let m = MachineSpec::vera();
        assert_eq!(m.n_cores(), 32);
        assert_eq!(m.n_hw_threads(), 32);
        assert_eq!(m.n_numa(), 2);
    }

    #[test]
    fn linux_style_sibling_numbering() {
        let m = MachineSpec::dardel();
        // hw 0 and hw 128 share core 0.
        assert_eq!(m.core_of(HwThreadId(0)), CoreId(0));
        assert_eq!(m.core_of(HwThreadId(128)), CoreId(0));
        assert_eq!(m.smt_index_of(HwThreadId(128)), 1);
        assert_eq!(m.siblings_of(HwThreadId(0)), vec![HwThreadId(128)]);
        assert_eq!(
            m.hw_threads_of_core(CoreId(5)),
            vec![HwThreadId(5), HwThreadId(133)]
        );
    }

    #[test]
    fn numa_and_socket_mapping() {
        let m = MachineSpec::dardel();
        assert_eq!(m.numa_of(HwThreadId(0)), NumaId(0));
        assert_eq!(m.numa_of(HwThreadId(16)), NumaId(1));
        assert_eq!(m.numa_of(HwThreadId(63)), NumaId(3));
        assert_eq!(m.numa_of(HwThreadId(64)), NumaId(4));
        assert_eq!(m.socket_of(HwThreadId(63)), SocketId(0));
        assert_eq!(m.socket_of(HwThreadId(64)), SocketId(1));
        // Sibling lands in the same NUMA domain as its core.
        assert_eq!(m.numa_of(HwThreadId(128 + 16)), NumaId(1));
    }

    #[test]
    fn distance_levels() {
        let m = MachineSpec::dardel();
        assert_eq!(m.distance(HwThreadId(0), HwThreadId(128)), 0); // siblings
        assert_eq!(m.distance(HwThreadId(0), HwThreadId(1)), 1); // same NUMA
        assert_eq!(m.distance(HwThreadId(0), HwThreadId(16)), 2); // same socket
        assert_eq!(m.distance(HwThreadId(0), HwThreadId(64)), 3); // cross socket
    }

    #[test]
    fn hw_threads_of_numa_covers_both_contexts() {
        let m = MachineSpec::dardel();
        let hws = m.hw_threads_of_numa(NumaId(0));
        assert_eq!(hws.len(), 32);
        assert!(hws.contains(&HwThreadId(0)));
        assert!(hws.contains(&HwThreadId(128)));
        assert!(!hws.contains(&HwThreadId(16)));
    }

    #[test]
    fn sustainable_frequency_monotone_non_increasing() {
        for m in [MachineSpec::dardel(), MachineSpec::vera()] {
            let mut prev = f64::INFINITY;
            for active in 1..=m.cores_per_numa * m.numa_per_socket {
                let f = m.clock.sustainable_ghz(active);
                assert!(f <= prev, "{}: turbo bins must not increase", m.name);
                assert!(f >= m.clock.base_ghz);
                assert!(f <= m.clock.max_ghz);
                prev = f;
            }
        }
    }

    #[test]
    fn empty_turbo_table_means_flat_max() {
        let m = MachineSpec::generic(1, 4, 1);
        assert_eq!(m.clock.sustainable_ghz(1), 3.0);
        assert_eq!(m.clock.sustainable_ghz(4), 3.0);
    }

    #[test]
    fn touched_counts() {
        let m = MachineSpec::dardel();
        let hws: Vec<_> = (0..32).map(HwThreadId).collect();
        assert_eq!(m.sockets_touched(&hws), 1);
        assert_eq!(m.numas_touched(&hws), 2);
        let hws: Vec<_> = (0..=64).map(HwThreadId).collect();
        assert_eq!(m.sockets_touched(&hws), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_hw_thread_panics() {
        let m = MachineSpec::vera();
        m.core_of(HwThreadId(32));
    }
}
