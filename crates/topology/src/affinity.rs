//! `OMP_PROC_BIND`-style binding policies and the thread→place assignment.

use crate::machine::MachineSpec;
use crate::places::{Place, Places};
use std::fmt;

/// Binding policy, mirroring `OMP_PROC_BIND`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcBind {
    /// No binding: threads are left to the OS scheduler and may migrate
    /// between hardware threads during execution. This is the OpenMP
    /// default (`OMP_PROC_BIND=false`) and the "before pinning" case of
    /// the paper.
    False,
    /// Threads are bound to places contiguously, close to the primary
    /// thread: thread `i` → place `i mod n_places`.
    Close,
    /// Threads are spread over the place list as evenly as possible:
    /// thread `i` → place `floor(i * n_places / n_threads)` (when
    /// `n_threads <= n_places`), maximizing distance between threads.
    Spread,
    /// All threads are bound to the primary thread's place.
    Primary,
}

impl fmt::Display for ProcBind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcBind::False => "false",
            ProcBind::Close => "close",
            ProcBind::Spread => "spread",
            ProcBind::Primary => "primary",
        };
        f.write_str(s)
    }
}

impl ProcBind {
    /// Parse the `OMP_PROC_BIND` value (case-insensitive). `master` is
    /// accepted as the deprecated spelling of `primary`, and `true` as an
    /// alias for `close` (the usual libgomp interpretation for a single
    /// nesting level).
    pub fn parse(s: &str) -> Option<ProcBind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "false" => Some(ProcBind::False),
            "true" | "close" => Some(ProcBind::Close),
            "spread" => Some(ProcBind::Spread),
            "primary" | "master" => Some(ProcBind::Primary),
            _ => None,
        }
    }
}

/// The result of binding a team: for each OpenMP thread, either the place
/// it is pinned to, or `None` when unbound.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadAssignment {
    assignment: Vec<Option<Place>>,
}

impl ThreadAssignment {
    /// Place of thread `tid`, or `None` when the thread is unbound.
    pub fn place_of(&self, tid: usize) -> Option<&Place> {
        self.assignment[tid].as_ref()
    }

    /// Number of threads in the team.
    pub fn n_threads(&self) -> usize {
        self.assignment.len()
    }

    /// Whether every thread is bound to some place.
    pub fn fully_bound(&self) -> bool {
        self.assignment.iter().all(|a| a.is_some())
    }

    /// Iterate over `(tid, place)` pairs for bound threads.
    pub fn iter_bound(&self) -> impl Iterator<Item = (usize, &Place)> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, p)))
    }
}

/// Assign `n_threads` OpenMP threads to places following `bind`.
///
/// The place list is resolved against `machine`. With [`ProcBind::False`]
/// every thread is unbound (`None`), which the simulator and native runtime
/// interpret as "let the OS place and migrate it".
///
/// # Panics
///
/// Panics if `n_threads == 0` or if the resolved place list is empty while
/// a binding policy other than `False` is requested.
pub fn assign_places(
    machine: &MachineSpec,
    places: &Places,
    bind: ProcBind,
    n_threads: usize,
) -> ThreadAssignment {
    assert!(n_threads > 0, "a team needs at least one thread");
    if bind == ProcBind::False {
        return ThreadAssignment {
            assignment: vec![None; n_threads],
        };
    }
    let list = places.resolve(machine);
    assert!(!list.is_empty(), "binding requested with an empty place list");
    let n_places = list.len();
    let assignment = (0..n_threads)
        .map(|tid| {
            let idx = match bind {
                ProcBind::False => unreachable!(),
                ProcBind::Close => tid % n_places,
                ProcBind::Spread => {
                    if n_threads <= n_places {
                        tid * n_places / n_threads
                    } else {
                        // More threads than places: wrap around like close,
                        // per the OpenMP spec's subpartition fallback.
                        tid % n_places
                    }
                }
                ProcBind::Primary => 0,
            };
            Some(list[idx].clone())
        })
        .collect();
    ThreadAssignment { assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{HwThreadId, MachineSpec};

    #[test]
    fn close_is_contiguous_and_wraps() {
        let m = MachineSpec::vera();
        let a = assign_places(&m, &Places::Threads(Some(4)), ProcBind::Close, 6);
        assert_eq!(a.place_of(0).unwrap().first(), HwThreadId(0));
        assert_eq!(a.place_of(3).unwrap().first(), HwThreadId(3));
        assert_eq!(a.place_of(4).unwrap().first(), HwThreadId(0)); // wrap
        assert!(a.fully_bound());
    }

    #[test]
    fn spread_maximizes_distance() {
        let m = MachineSpec::vera();
        let a = assign_places(&m, &Places::Threads(Some(32)), ProcBind::Spread, 2);
        assert_eq!(a.place_of(0).unwrap().first(), HwThreadId(0));
        // Second thread lands halfway through the place list → other socket.
        assert_eq!(a.place_of(1).unwrap().first(), HwThreadId(16));
        assert_eq!(m.socket_of(a.place_of(1).unwrap().first()).0, 1);
    }

    #[test]
    fn spread_with_more_threads_than_places_wraps() {
        let m = MachineSpec::vera();
        let a = assign_places(&m, &Places::Threads(Some(2)), ProcBind::Spread, 4);
        assert_eq!(a.place_of(2).unwrap().first(), HwThreadId(0));
        assert_eq!(a.place_of(3).unwrap().first(), HwThreadId(1));
    }

    #[test]
    fn primary_packs_everything_on_place_zero() {
        let m = MachineSpec::vera();
        let a = assign_places(&m, &Places::Threads(None), ProcBind::Primary, 8);
        for t in 0..8 {
            assert_eq!(a.place_of(t).unwrap().first(), HwThreadId(0));
        }
    }

    #[test]
    fn unbound_assignment_has_no_places() {
        let m = MachineSpec::vera();
        let a = assign_places(&m, &Places::Threads(None), ProcBind::False, 8);
        assert_eq!(a.n_threads(), 8);
        assert!(!a.fully_bound());
        assert!(a.iter_bound().next().is_none());
    }

    #[test]
    fn proc_bind_parsing() {
        assert_eq!(ProcBind::parse("close"), Some(ProcBind::Close));
        assert_eq!(ProcBind::parse("TRUE"), Some(ProcBind::Close));
        assert_eq!(ProcBind::parse("master"), Some(ProcBind::Primary));
        assert_eq!(ProcBind::parse(" spread "), Some(ProcBind::Spread));
        assert_eq!(ProcBind::parse("false"), Some(ProcBind::False));
        assert_eq!(ProcBind::parse("banana"), None);
    }

    #[test]
    fn close_over_cores_places_uses_whole_core() {
        let m = MachineSpec::dardel();
        let a = assign_places(&m, &Places::Cores(Some(4)), ProcBind::Close, 4);
        assert_eq!(a.place_of(0).unwrap().len(), 2); // both SMT contexts
    }
}
