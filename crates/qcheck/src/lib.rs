//! Differential fuzzing of the two runtime backends.
//!
//! `ompvar-qcheck` closes the loop between the discrete-event simulator
//! and the native thread runtime: [`gen`] draws random well-formed
//! [`RegionSpec`](ompvar_rt::region::RegionSpec) programs from a seed,
//! [`oracle`] runs each one on **both** backends and compares their
//! harvested semantic effects against a static prediction from the
//! construct tree, and [`shrink`] reduces any failing program to a
//! minimal replayable counterexample carrying the same
//! `ompvar-analyze` verdict as the original.
//!
//! The oracles also close the loop on the static analyzer itself
//! (oracle #9, soundness): a hang-shaped failure on a program the
//! analyzer reported clean fails the campaign, while a hang on a
//! may-deadlock-flagged program is the static prediction coming true
//! and is accepted (flagged programs run sim-only).
//!
//! The top-level drivers are [`run_fuzz`] and its multi-threaded twin
//! [`run_fuzz_parallel`] (cases self-scheduled off an atomic counter,
//! report merged deterministically — oracle #10 holds the two to
//! byte-identical reports); the harness exposes them as the `fuzz`
//! experiment (`ompvar-repro fuzz --fuzz-cases N --seed S --jobs J`).

#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod shrink;

use std::collections::BTreeMap;

use gen::GenConfig;
use ompvar_rt::region::RegionSpec;

/// One fuzzing campaign's parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of cases to run.
    pub cases: u64,
    /// Base seed; case `i` uses seed `base_seed.wrapping_add(i)`.
    pub base_seed: u64,
    /// Generator shape knobs.
    pub gen: GenConfig,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 200,
            base_seed: 20230714,
            gen: GenConfig::default(),
        }
    }
}

/// The seed used for case `case` of a campaign with base seed `base`.
///
/// Exposed so a single failing case can be replayed in isolation with
/// `--fuzz-cases 1 --seed <case_seed>`.
pub fn case_seed(base: u64, case: u64) -> u64 {
    base.wrapping_add(case)
}

/// One failing case: the program, why it failed, and its shrunk form.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// Index of the case within the campaign.
    pub case: u64,
    /// Seed that regenerates this exact program (see [`case_seed`]).
    pub case_seed: u64,
    /// The originally generated failing program.
    pub region: RegionSpec,
    /// Oracle violations reported for the original program.
    pub reasons: Vec<String>,
    /// Greedily shrunk still-failing program.
    pub shrunk: RegionSpec,
}

/// Outcome of a fuzzing campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// How many generated constructs of each kind were exercised,
    /// counted recursively through nested bodies.
    pub coverage: BTreeMap<&'static str, u64>,
    /// All failing cases, in campaign order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Did every case pass every oracle?
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn tally(cs: &[ompvar_rt::region::Construct], coverage: &mut BTreeMap<&'static str, u64>) {
    use ompvar_rt::region::Construct;
    for c in cs {
        *coverage.entry(gen::construct_kind(c)).or_insert(0) += 1;
        match c {
            Construct::ParallelRegion { body }
            | Construct::Repeat { body, .. }
            | Construct::Locked { body, .. } => tally(body, coverage),
            _ => {}
        }
    }
}

/// Predicate-call budget handed to the shrinker per failure; each call
/// runs both backends, so this bounds shrink time to a few seconds.
const SHRINK_BUDGET: usize = 300;

/// Run one case end to end: generate, tally coverage into `coverage`,
/// check every oracle, shrink on failure. Pure function of
/// `(cfg, case)`, which is what makes the parallel driver's report
/// identical to the sequential one.
fn run_case(
    cfg: &FuzzConfig,
    case: u64,
    coverage: &mut BTreeMap<&'static str, u64>,
) -> Option<FuzzFailure> {
    let seed = case_seed(cfg.base_seed, case);
    let region = gen::generate(seed, &cfg.gen);
    tally(&region.constructs, coverage);
    let reasons = oracle::check_case(&region, seed);
    if reasons.is_empty() {
        return None;
    }
    let shrunk = shrink::shrink(
        &region,
        &mut |r| !oracle::check_case(r, seed).is_empty(),
        SHRINK_BUDGET,
    );
    Some(FuzzFailure {
        case,
        case_seed: seed,
        region,
        reasons,
        shrunk,
    })
}

/// Run a fuzzing campaign: generate, differentially check, and shrink
/// every failure.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        cases: cfg.cases,
        ..FuzzReport::default()
    };
    for case in 0..cfg.cases {
        if let Some(f) = run_case(cfg, case, &mut report.coverage) {
            report.failures.push(f);
        }
    }
    report
}

/// Run a fuzzing campaign across `jobs` worker threads.
///
/// Workers self-schedule cases off a shared atomic counter, tally
/// coverage and collect failures locally, and the locals are merged
/// afterwards (coverage added, failures sorted by case index). Each case
/// is a pure function of `(cfg, case)`, so the report is **identical**
/// to [`run_fuzz`]'s regardless of `jobs` — oracle #10
/// ([`oracle::check_jobs_equivalence`]) holds the drivers to exactly
/// that.
pub fn run_fuzz_parallel(cfg: &FuzzConfig, jobs: usize) -> FuzzReport {
    let jobs = jobs.max(1);
    if jobs == 1 {
        return run_fuzz(cfg);
    }
    use std::sync::atomic::{AtomicU64, Ordering};
    let next = AtomicU64::new(0);
    let mut report = FuzzReport {
        cases: cfg.cases,
        ..FuzzReport::default()
    };
    let locals: Vec<(BTreeMap<&'static str, u64>, Vec<FuzzFailure>)> =
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(|| {
                        let mut coverage = BTreeMap::new();
                        let mut failures = Vec::new();
                        loop {
                            let case = next.fetch_add(1, Ordering::Relaxed);
                            if case >= cfg.cases {
                                break;
                            }
                            if let Some(f) = run_case(cfg, case, &mut coverage) {
                                failures.push(f);
                            }
                        }
                        (coverage, failures)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("fuzz worker")).collect()
        });
    for (coverage, failures) in locals {
        for (k, v) in coverage {
            *report.coverage.entry(k).or_insert(0) += v;
        }
        report.failures.extend(failures);
    }
    report.failures.sort_by_key(|f| f.case);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_and_tallies_coverage() {
        let cfg = FuzzConfig {
            cases: 5,
            base_seed: 42,
            gen: GenConfig::default(),
        };
        let rep = run_fuzz(&cfg);
        assert_eq!(rep.cases, 5);
        assert!(rep.all_passed(), "failures: {:#?}", rep.failures);
        assert!(!rep.coverage.is_empty());
    }

    #[test]
    fn parallel_campaign_report_equals_sequential() {
        let cfg = FuzzConfig {
            cases: 8,
            base_seed: 42,
            gen: GenConfig::default(),
        };
        let seq = run_fuzz(&cfg);
        for jobs in [2, 4] {
            let par = run_fuzz_parallel(&cfg, jobs);
            assert_eq!(seq, par, "jobs={jobs}");
        }
        // jobs=1 short-circuits to the sequential driver.
        assert_eq!(seq, run_fuzz_parallel(&cfg, 1));
    }

    #[test]
    fn case_seed_is_replayable_offset() {
        assert_eq!(case_seed(100, 0), 100);
        assert_eq!(case_seed(100, 7), 107);
        // Replaying case 7 as a one-case campaign reproduces the program.
        let cfg = GenConfig::default();
        let a = gen::generate(case_seed(100, 7), &cfg);
        let b = gen::generate(case_seed(case_seed(100, 7), 0), &cfg);
        assert_eq!(a, b);
    }
}
