//! Greedy construct-list shrinking of failing programs.
//!
//! Given a region and a failure predicate, repeatedly tries one-edit
//! simplifications — removing a construct, inlining a `Repeat`/
//! `ParallelRegion` body, lowering counts/iterations/threads, dropping
//! `ordered`/`nowait` — keeping any still-failing (and still-valid)
//! variant, until no single edit reproduces the failure or the predicate
//! budget runs out. The result plus the case seed is a replayable
//! minimal counterexample.
//!
//! Every shrink step re-runs both validation *and* static analysis: a
//! candidate is only kept if it validates **and** carries the same
//! analyzer verdict (the set of `Warn`-or-worse diagnostic codes) as the
//! original failure. Shrinking never crosses a diagnostic class — a
//! counterexample that failed *because* it was may-deadlock-flagged must
//! stay flagged all the way down, or the minimal program would no longer
//! reproduce the failure mode being reported.

use ompvar_rt::region::{Construct, RegionSpec, Schedule};

/// Shrink `region` to a (locally) minimal program for which `fails`
/// still returns `true`. `budget` bounds the number of predicate calls —
/// each one typically runs both backends, so keep it modest.
pub fn shrink(
    region: &RegionSpec,
    fails: &mut dyn FnMut(&RegionSpec) -> bool,
    budget: usize,
) -> RegionSpec {
    let mut cur = region.clone();
    let target = ompvar_analyze::analyze(region).verdict();
    let mut calls = 0usize;
    'outer: loop {
        for cand in candidates(&cur) {
            if calls >= budget {
                break 'outer;
            }
            // Never hand the predicate a malformed program: shrinking
            // must stay inside the validated grammar. And never shrink
            // across a diagnostic class: the minimal program must carry
            // the same analyzer verdict as the original failure.
            if cand.validate().is_err()
                || cand == cur
                || ompvar_analyze::analyze(&cand).verdict() != target
            {
                continue;
            }
            calls += 1;
            if fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

/// A replayable dump of a counterexample: the seed to pass back via
/// `--seed`, the analyzer verdict the shrink preserved, and the (shrunk)
/// program.
pub fn dump(region: &RegionSpec, case_seed: u64) -> String {
    let verdict: Vec<&'static str> = ompvar_analyze::analyze(region)
        .verdict()
        .iter()
        .map(|c| c.code())
        .collect();
    let verdict = if verdict.is_empty() {
        "clean".to_string()
    } else {
        verdict.join(" ")
    };
    format!(
        "replay with: ompvar-repro fuzz --fuzz-cases 1 --seed {case_seed}\n\
         analyzer verdict: {verdict}\n\
         minimal program ({} threads): {:?}",
        region.n_threads, region.constructs
    )
}

/// All one-edit simplification candidates of `region`, roughly
/// biggest-reduction first.
fn candidates(region: &RegionSpec) -> Vec<RegionSpec> {
    let mut out = Vec::new();
    for cs in block_edits(&region.constructs) {
        out.push(RegionSpec {
            n_threads: region.n_threads,
            constructs: cs,
        });
    }
    if region.n_threads > 1 {
        for n in [1, region.n_threads / 2] {
            out.push(RegionSpec {
                n_threads: n,
                constructs: region.constructs.clone(),
            });
        }
    }
    out
}

/// One-edit variants of a construct block: removals first (largest
/// reduction), then in-place simplifications, then recursive edits of
/// nested bodies.
fn block_edits(cs: &[Construct]) -> Vec<Vec<Construct>> {
    let mut out = Vec::new();
    let splice = |i: usize, replacement: Vec<Construct>| -> Vec<Construct> {
        let mut v = cs[..i].to_vec();
        v.extend(replacement);
        v.extend_from_slice(&cs[i + 1..]);
        v
    };
    for (i, c) in cs.iter().enumerate() {
        // Removal. A MarkBegin is removed together with its matching
        // MarkEnd (removing one alone would not validate).
        if let Construct::MarkBegin(id) = c {
            if let Some(j) = cs
                .iter()
                .position(|k| matches!(k, Construct::MarkEnd(e) if e == id))
            {
                let mut v: Vec<Construct> = Vec::with_capacity(cs.len() - 2);
                for (k, item) in cs.iter().enumerate() {
                    if k != i && k != j {
                        v.push(item.clone());
                    }
                }
                out.push(v);
            }
        } else {
            out.push(splice(i, Vec::new()));
        }
        match c {
            Construct::Repeat { count, body } => {
                out.push(splice(i, body.clone()));
                if *count > 1 {
                    for c2 in [1, count / 2] {
                        out.push(splice(
                            i,
                            vec![Construct::Repeat {
                                count: c2,
                                body: body.clone(),
                            }],
                        ));
                    }
                }
                for b in block_edits(body) {
                    out.push(splice(
                        i,
                        vec![Construct::Repeat {
                            count: *count,
                            body: b,
                        }],
                    ));
                }
            }
            Construct::ParallelRegion { body } => {
                out.push(splice(i, body.clone()));
                for b in block_edits(body) {
                    out.push(splice(i, vec![Construct::ParallelRegion { body: b }]));
                }
            }
            Construct::Locked { lock, body } => {
                out.push(splice(i, body.clone()));
                for b in block_edits(body) {
                    out.push(splice(
                        i,
                        vec![Construct::Locked {
                            lock: *lock,
                            body: b,
                        }],
                    ));
                }
            }
            Construct::ParallelFor {
                schedule,
                total_iters,
                body_us,
                ordered_us,
                nowait,
            } => {
                let base = |iters: u64, ord: Option<f64>, nw: bool, sched: Schedule| {
                    Construct::ParallelFor {
                        schedule: sched,
                        total_iters: iters,
                        body_us: *body_us,
                        ordered_us: ord,
                        nowait: nw,
                    }
                };
                if *total_iters > 1 {
                    for it in [1, total_iters / 2] {
                        out.push(splice(i, vec![base(it, *ordered_us, *nowait, *schedule)]));
                    }
                }
                if ordered_us.is_some() {
                    out.push(splice(i, vec![base(*total_iters, None, *nowait, *schedule)]));
                }
                if *nowait {
                    out.push(splice(i, vec![base(*total_iters, *ordered_us, false, *schedule)]));
                }
                let plain = Schedule::Static { chunk: 1 };
                if *schedule != plain {
                    out.push(splice(i, vec![base(*total_iters, *ordered_us, *nowait, plain)]));
                }
            }
            Construct::Tasks {
                per_spawner,
                body_us,
                master_only,
            } => {
                if *per_spawner > 1 {
                    out.push(splice(
                        i,
                        vec![Construct::Tasks {
                            per_spawner: 1,
                            body_us: *body_us,
                            master_only: *master_only,
                        }],
                    ));
                }
                if !master_only {
                    out.push(splice(
                        i,
                        vec![Construct::Tasks {
                            per_spawner: *per_spawner,
                            body_us: *body_us,
                            master_only: true,
                        }],
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Does the region contain a `Reduction` construct at any depth?
    fn has_reduction(cs: &[Construct]) -> bool {
        cs.iter().any(|c| match c {
            Construct::Reduction { .. } => true,
            Construct::Repeat { body, .. } | Construct::ParallelRegion { body } => {
                has_reduction(body)
            }
            _ => false,
        })
    }

    #[test]
    fn shrinks_to_single_construct_for_containment_predicate() {
        // A deliberately-broken oracle: "no program may contain a
        // Reduction". The shrinker must strip everything else away.
        let region = RegionSpec::new(
            4,
            vec![
                Construct::Barrier,
                Construct::MarkBegin(0),
                Construct::Repeat {
                    count: 3,
                    body: vec![
                        Construct::DelayUs(1.0),
                        Construct::Reduction { body_us: 0.5 },
                        Construct::Atomic,
                    ],
                },
                Construct::MarkEnd(0),
                Construct::Critical { body_us: 0.2 },
            ],
        )
        .expect("valid");
        let shrunk = shrink(&region, &mut |r| has_reduction(&r.constructs), 2000);
        assert_eq!(shrunk.n_threads, 1);
        assert_eq!(shrunk.constructs.len(), 1);
        assert!(
            matches!(shrunk.constructs[0], Construct::Reduction { .. }),
            "{shrunk:?}"
        );
    }

    #[test]
    fn shrinking_never_produces_invalid_candidates_in_result() {
        let region = RegionSpec::new(
            2,
            vec![
                Construct::MarkBegin(0),
                Construct::ParallelFor {
                    schedule: Schedule::Guided { min_chunk: 2 },
                    total_iters: 16,
                    body_us: 0.1,
                    ordered_us: Some(0.1),
                    nowait: false,
                },
                Construct::MarkEnd(0),
            ],
        )
        .expect("valid");
        // Predicate: "contains an ordered loop".
        let shrunk = shrink(
            &region,
            &mut |r| {
                r.constructs.iter().any(|c| {
                    matches!(
                        c,
                        Construct::ParallelFor {
                            ordered_us: Some(_),
                            ..
                        }
                    )
                })
            },
            2000,
        );
        assert!(shrunk.validate().is_ok());
        assert_eq!(shrunk.n_threads, 1);
        assert_eq!(shrunk.constructs.len(), 1);
        let Construct::ParallelFor { total_iters, .. } = &shrunk.constructs[0] else {
            panic!("expected a loop, got {shrunk:?}");
        };
        assert_eq!(*total_iters, 1);
    }

    #[test]
    fn dump_is_replayable() {
        let region = RegionSpec::new(1, vec![Construct::Barrier]).expect("valid");
        let d = dump(&region, 123);
        assert!(d.contains("--seed 123"), "{d}");
        assert!(d.contains("Barrier"), "{d}");
        assert!(d.contains("analyzer verdict: clean"), "{d}");
    }

    #[test]
    fn shrinking_preserves_the_analyzer_verdict() {
        // AB vs BA acquisition orders across two scopes: OMPV110
        // (lock-cycle, Warn). The predicate fails exactly on may-deadlock
        // programs, so every kept candidate must keep the cycle — the
        // padding goes, the cycle stays.
        let region = RegionSpec::new(
            2,
            vec![
                Construct::DelayUs(1.0),
                Construct::Locked {
                    lock: 0,
                    body: vec![Construct::Locked {
                        lock: 1,
                        body: vec![Construct::Atomic],
                    }],
                },
                Construct::Barrier,
                Construct::Locked {
                    lock: 1,
                    body: vec![Construct::Locked {
                        lock: 0,
                        body: vec![Construct::Atomic],
                    }],
                },
                Construct::Critical { body_us: 0.2 },
            ],
        )
        .expect("lock cycles are Warn-severity, so the spec validates");
        let target = ompvar_analyze::analyze(&region).verdict();
        assert!(!target.is_empty(), "expected a flagged program");
        let shrunk = shrink(
            &region,
            &mut |r| ompvar_analyze::analyze(r).may_deadlock(),
            2000,
        );
        assert_eq!(ompvar_analyze::analyze(&shrunk).verdict(), target);
        assert!(
            shrunk.constructs.len() < region.constructs.len(),
            "{shrunk:?}"
        );
        let d = dump(&shrunk, 9);
        assert!(d.contains("OMPV110"), "{d}");
    }
}
