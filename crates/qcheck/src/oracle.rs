//! Semantic-effect and determinism oracles, and the differential check
//! that runs one generated program on both backends.
//!
//! A case passes when:
//!
//! 1. the program validates (the generator's contract);
//! 2. the simulated backend completes, twice, with bit-identical results
//!    for the same seed (determinism oracle);
//! 3. the native backend completes;
//! 4. both backends' harvested [`SemanticEffects`] equal the statically
//!    predicted effects of the construct tree — iteration coverage,
//!    lock-entry, reduction-combine, single-winner, barrier-arrival and
//!    task counts all agree exactly;
//! 5. neither backend observed a mutual-exclusion or ordered-sequence
//!    violation;
//! 6. both backends produced the same measured-interval shape (same
//!    marker ids, same repetition counts — mark-pair well-nesting);
//! 7. both backends' span traces are structurally well-formed — every
//!    begin matched by an end of the same kind, LIFO nesting per thread,
//!    per-thread time monotone, exactly one region span per team thread
//!    (trace well-formedness oracle);
//! 8. every backend error classifies cleanly under the supervisor's
//!    retry taxonomy ([`ompvar_supervisor::classify`]): its
//!    transient/permanent name round-trips, and it is never *permanent*
//!    for a program that already validated — a permanent classification
//!    means a structural error escaped `validate()` or the taxonomy
//!    drifted (classification-totality oracle);
//! 9. **soundness of the static analyzer**: a hang-shaped failure
//!    (deadlock, simulated time limit, native deadline) on a program the
//!    analyzer reported *clean* (no `Warn`-or-worse diagnostics) is a
//!    fuzz failure — the analyzer missed a hazard it claims to
//!    over-approximate. Conversely, a hang on a program the analyzer
//!    flagged as may-deadlock (`OMPV104`/`OMPV105`/`OMPV110`/`OMPV111`)
//!    is *accepted*: the static prediction came true. Flagged programs
//!    run on the simulated backend only, where a deadlock is detected in
//!    virtual time instead of burning a wall-clock deadline;
//! 10. **parallel-campaign equivalence**: a fuzz campaign sharded across
//!     worker threads ([`crate::run_fuzz_parallel`]) must produce a
//!     report identical to the sequential driver's — same coverage
//!     tallies, same failures in the same order, same shrunk
//!     counterexamples. Divergence means a case is not the pure function
//!     of `(cfg, case)` the resumable executor relies on
//!     ([`check_jobs_equivalence`]);
//! 11. **engine equivalence**: the simulator's optimized path (packed
//!     4-ary event queue, topology caches, idle fast-forward, slab
//!     reuse) and its independently implemented reference path (the
//!     pre-optimization `BinaryHeap` queue, naive topology lookups, no
//!     batching) must be observably indistinguishable — identical
//!     semantic effects and bit-identical final virtual time on
//!     success, and identical error values on failure
//!     ([`check_engine_equivalence`]). This is the differential oracle
//!     that lets every hot-path optimization land without weakening
//!     the determinism contract;
//! 12. **attribution conservation**: re-running the case with the causal
//!     time-attribution ledger enabled ([`check_attribution`]) must (a)
//!     leave the final virtual time bit-identical — attribution is pure
//!     observation; (b) conserve time per thread (`useful + Σ attributed
//!     ≤ wall`, non-negative entries); and (c) under the fuzz harness's
//!     sterile pinned parameters charge *exactly* 0 ns to every noise
//!     source — a sterile machine has no preemptions, migrations, SMT
//!     siblings, frequency droop, ticks, stalls or noise-delayed
//!     arrivals to pay for.

use ompvar_rt::native::NativeRuntime;
use ompvar_rt::region::RegionSpec;
use ompvar_rt::simrt::SimRuntime;
use ompvar_rt::RtConfig;
use ompvar_sim::params::SimParams;
use ompvar_sim::time::SEC;
use ompvar_sim::trace::SemanticEffects;
use ompvar_topology::{MachineSpec, Places};
use std::time::Duration;

/// The simulated runtime used for differential runs: a modeled Vera node,
/// threads pinned close, sterile parameters (no noise/DVFS/SMT effects),
/// so results are a pure function of `(region, seed)`.
pub fn sim_runtime(n_threads: usize) -> SimRuntime {
    SimRuntime::new(
        MachineSpec::vera(),
        RtConfig::pinned_close(Places::Threads(Some(n_threads))),
    )
    .with_params(SimParams::sterile())
    .with_time_limit(300 * SEC)
    .with_tracing(true)
}

/// The native runtime used for differential runs: unpinned (CI-safe)
/// with a generous-but-bounded deadline so a semantic bug shows up as a
/// typed timeout, not a hang.
pub fn native_runtime() -> NativeRuntime {
    NativeRuntime::new(RtConfig::unbound())
        .with_deadline(Some(Duration::from_secs(30)))
        .with_tracing(true)
}

/// Trace well-formedness oracle: the span timeline of a successful run
/// must pair up cleanly and carry exactly one region span per thread.
fn check_trace(
    reasons: &mut Vec<String>,
    backend: &str,
    result: &ompvar_rt::config::RegionResult,
    n_threads: usize,
) {
    let Some(trace) = &result.trace else {
        reasons.push(format!("{backend} ran with tracing on but recorded no trace"));
        return;
    };
    match ompvar_obs::wellformed::check(trace) {
        Ok(_) => {
            let regions = trace.count_of(ompvar_obs::SpanKind::Region);
            if regions != n_threads {
                reasons.push(format!(
                    "{backend} trace has {regions} region span(s) for {n_threads} thread(s)"
                ));
            }
        }
        Err(errs) => reasons.push(format!(
            "{backend} trace is malformed ({} violation(s)):\n    {}",
            errs.len(),
            errs.join("\n    ")
        )),
    }
}

/// Classification-totality oracle (#8). The match in
/// [`ompvar_supervisor::classify`] is exhaustive, so new error variants
/// are a *compile* error there; this guards the runtime half of the
/// contract: the class name must round-trip through the checkpoint
/// vocabulary, and a program that passed `validate()` must never produce
/// a *permanently*-classified error — permanent is reserved for
/// structural failures, which validation already rejected.
fn check_classification(reasons: &mut Vec<String>, backend: &str, err: &ompvar_rt::RtError) {
    let class = ompvar_supervisor::classify(err);
    if ompvar_supervisor::Transience::from_name(class.name()).is_none() {
        reasons.push(format!(
            "{backend} error {err} classifies as unregistered class {:?} (taxonomy drift)",
            class.name()
        ));
    }
    if class == ompvar_supervisor::Transience::Permanent {
        reasons.push(format!(
            "{backend} error on a validated program classifies as permanent: {err} \
             (structural failure escaped validation, or the retry taxonomy drifted)"
        ));
    }
}

/// Is this error hang-shaped — the dynamic outcome the may-deadlock
/// analyses predict? Simulated deadlocks are detected exactly; a
/// simulated time-limit or native deadline overrun is how a livelock or
/// missed wakeup surfaces.
fn is_hang(e: &ompvar_rt::RtError) -> bool {
    use ompvar_sim::error::SimError;
    matches!(
        e,
        ompvar_rt::RtError::Sim(
            SimError::Deadlock { .. } | SimError::TimeLimitExceeded { .. }
        ) | ompvar_rt::RtError::Timeout { .. }
    )
}

/// Render an analyzer verdict for failure messages.
fn verdict_str(analysis: &ompvar_analyze::Analysis) -> String {
    let v: Vec<&'static str> = analysis.verdict().iter().map(|c| c.code()).collect();
    if v.is_empty() {
        "clean".to_string()
    } else {
        v.join(" ")
    }
}

/// Check one violation category, pushing a reason string on mismatch.
fn expect_eq(
    reasons: &mut Vec<String>,
    what: &str,
    got: &SemanticEffects,
    want: &SemanticEffects,
) {
    if got != want {
        reasons.push(format!(
            "{what} effects diverge from prediction:\n    got  {got:?}\n    want {want:?}"
        ));
    }
}

/// Engine-equivalence oracle (#11): run `region` on the simulator's
/// optimized and reference engine paths and require them to be
/// observably indistinguishable — equal [`SemanticEffects`],
/// bit-identical final virtual time (compared through `f64` bits, no
/// tolerance), and, when the run fails, the identical error value.
/// Returns the violations (empty = equivalent).
pub fn check_engine_equivalence(region: &RegionSpec, seed: u64) -> Vec<String> {
    let mut reasons = Vec::new();
    let opt = sim_runtime(region.n_threads).run(region, seed);
    let refr = sim_runtime(region.n_threads)
        .with_reference_engine(true)
        .run(region, seed);
    match (opt, refr) {
        (Ok(o), Ok(r)) => {
            if o.effects != r.effects {
                reasons.push(format!(
                    "engine equivalence (oracle #11): effects diverge between optimized \
                     and reference engines:\n    optimized {:?}\n    reference {:?}",
                    o.effects, r.effects
                ));
            }
            if o.wall_us.to_bits() != r.wall_us.to_bits() {
                reasons.push(format!(
                    "engine equivalence (oracle #11): final virtual time diverges: \
                     optimized {} us vs reference {} us",
                    o.wall_us, r.wall_us
                ));
            }
        }
        (Err(o), Err(r)) => {
            // Errors are part of the observable surface: a deadlock's
            // diagnostics (who blocks on what, at what time) must match.
            let (o, r) = (format!("{o:?}"), format!("{r:?}"));
            if o != r {
                reasons.push(format!(
                    "engine equivalence (oracle #11): engines fail differently:\n    \
                     optimized {o}\n    reference {r}"
                ));
            }
        }
        (Ok(_), Err(e)) => reasons.push(format!(
            "engine equivalence (oracle #11): reference engine failed where the \
             optimized engine succeeded: {e}"
        )),
        (Err(e), Ok(_)) => reasons.push(format!(
            "engine equivalence (oracle #11): optimized engine failed where the \
             reference engine succeeded: {e}"
        )),
    }
    reasons
}

/// Attribution-conservation oracle (#12): re-run the case with the
/// causal attribution ledger enabled and compare against the plain run.
/// Checks, in order: bit-identical final virtual time (through `f64`
/// bits — attribution must be pure observation), the ledger's presence
/// with one entry per team thread, per-thread conservation
/// ([`ompvar_obs::RunAttribution::check_conservation`]), and — because
/// [`sim_runtime`] is sterile and pinned — exactly zero nanoseconds on
/// every noise source. When the plain run fails, the attributed run must
/// fail with the identical error value. Returns the violations (empty =
/// passed).
pub fn check_attribution(region: &RegionSpec, seed: u64) -> Vec<String> {
    use ompvar_obs::AttrSource;
    let mut reasons = Vec::new();
    let plain = sim_runtime(region.n_threads).run(region, seed);
    let attributed = sim_runtime(region.n_threads)
        .with_attribution(true)
        .run(region, seed);
    match (plain, attributed) {
        (Ok(p), Ok(a)) => {
            if p.wall_us.to_bits() != a.wall_us.to_bits() {
                reasons.push(format!(
                    "attribution (oracle #12): enabling the ledger perturbed virtual \
                     time: plain {} us vs attributed {} us",
                    p.wall_us, a.wall_us
                ));
            }
            let Some(attr) = &a.attribution else {
                reasons.push(
                    "attribution (oracle #12): run with attribution enabled returned \
                     no ledger"
                        .to_string(),
                );
                return reasons;
            };
            if attr.threads.len() != region.n_threads {
                reasons.push(format!(
                    "attribution (oracle #12): ledger has {} thread(s) for a \
                     {}-thread team",
                    attr.threads.len(),
                    region.n_threads
                ));
            }
            // Wall time in ns; the charge arithmetic accumulates f64
            // rounding across every slice, so allow a small relative
            // tolerance (the invariant itself is an inequality).
            let wall_ns = a.wall_us * 1e3;
            if let Err(e) = attr.check_conservation(wall_ns, 1e-6) {
                reasons.push(format!(
                    "attribution (oracle #12): conservation violated: {e}"
                ));
            }
            for &src in AttrSource::ALL.iter().filter(|s| s.is_noise()) {
                let t = attr.total(src);
                if t != 0.0 {
                    reasons.push(format!(
                        "attribution (oracle #12): sterile pinned run charged \
                         {t} ns to noise source `{}`",
                        src.name()
                    ));
                }
            }
        }
        (Err(p), Err(a)) => {
            let (p, a) = (format!("{p:?}"), format!("{a:?}"));
            if p != a {
                reasons.push(format!(
                    "attribution (oracle #12): runs fail differently with the \
                     ledger on:\n    plain      {p}\n    attributed {a}"
                ));
            }
        }
        (Ok(_), Err(e)) => reasons.push(format!(
            "attribution (oracle #12): attributed run failed where the plain run \
             succeeded: {e}"
        )),
        (Err(e), Ok(_)) => reasons.push(format!(
            "attribution (oracle #12): plain run failed where the attributed run \
             succeeded: {e}"
        )),
    }
    reasons
}

/// Run every oracle against `region` with the given seed. Returns the
/// list of violations; an empty list means the case passed.
pub fn check_case(region: &RegionSpec, seed: u64) -> Vec<String> {
    let mut reasons = Vec::new();
    let analysis = ompvar_analyze::analyze(region);
    if let Err(e) = region.validate() {
        reasons.push(format!("generator contract violated: {e}"));
        return reasons;
    }
    // Soundness oracle (#9) setup: a validated program may still carry
    // Warn-severity may-deadlock diagnostics. Those predictions gate how
    // a hang is judged below.
    let may_deadlock = analysis.may_deadlock();
    let want = region.expected_effects();

    // Simulated backend: completion + determinism + effects.
    let sim = sim_runtime(region.n_threads);
    let sim_result = match sim.run(region, seed) {
        Ok(a) => {
            // Replay for the determinism oracle. f64 Debug is
            // shortest-roundtrip, so equal strings mean bit-identical
            // results.
            match sim.run(region, seed) {
                Ok(b) => {
                    if format!("{a:?}") != format!("{b:?}") {
                        reasons.push(format!(
                            "sim replay with seed {seed} is not bit-identical"
                        ));
                    }
                }
                Err(e) => reasons.push(format!(
                    "sim replay with seed {seed} failed where the first run succeeded: {e}"
                )),
            }
            expect_eq(&mut reasons, "sim", &a.effects, &want);
            check_trace(&mut reasons, "sim", &a, region.n_threads);
            Some(a)
        }
        Err(e) => {
            check_classification(&mut reasons, "sim", &e);
            if is_hang(&e) {
                if !may_deadlock {
                    reasons.push(format!(
                        "soundness violation (oracle #9): sim hang on an \
                         analyzer-clean program (verdict: {}): {e}",
                        verdict_str(&analysis)
                    ));
                }
                // A hang on a may-deadlock-flagged program is the static
                // prediction coming true — accepted, not a failure.
            } else {
                reasons.push(format!("sim backend failed: {e}"));
            }
            None
        }
    };

    // Native backend: completion + effects + violation counters.
    // May-deadlock-flagged programs are not run natively: a true
    // deadlock there burns the full wall-clock deadline per case, and
    // the simulated backend already adjudicates the prediction in
    // virtual time.
    let native_result = if may_deadlock {
        None
    } else {
        match native_runtime().run(region) {
            Ok(r) => {
                expect_eq(&mut reasons, "native", &r.effects, &want);
                if r.effects.mutex_violations != 0 {
                    reasons.push(format!(
                        "native observed {} mutual-exclusion violation(s)",
                        r.effects.mutex_violations
                    ));
                }
                if r.effects.ordered_violations != 0 {
                    reasons.push(format!(
                        "native observed {} ordered-sequence violation(s)",
                        r.effects.ordered_violations
                    ));
                }
                check_trace(&mut reasons, "native", &r, region.n_threads);
                Some(r)
            }
            Err(e) => {
                check_classification(&mut reasons, "native", &e);
                if is_hang(&e) {
                    reasons.push(format!(
                        "soundness violation (oracle #9): native hang on an \
                         analyzer-clean program (verdict: {}): {e}",
                        verdict_str(&analysis)
                    ));
                } else {
                    reasons.push(format!("native backend failed: {e}"));
                }
                None
            }
        }
    };

    // Engine equivalence (oracle #11): the optimized and reference
    // simulator paths must agree on every case — including the failing
    // ones, where the error values themselves are compared.
    reasons.extend(check_engine_equivalence(region, seed));

    // Attribution conservation (oracle #12): the ledger never perturbs
    // the run, always conserves time, and stays all-zero on noise
    // sources under sterile parameters.
    reasons.extend(check_attribution(region, seed));

    // Interval shape: same marker ids with the same repetition counts on
    // both backends (mark-interval well-nesting oracle).
    if let (Some(s), Some(n)) = (&sim_result, &native_result) {
        let sim_shape: Vec<(u32, usize)> =
            s.intervals_us.iter().map(|(k, v)| (*k, v.len())).collect();
        let native_shape: Vec<(u32, usize)> =
            n.intervals_us.iter().map(|(k, v)| (*k, v.len())).collect();
        if sim_shape != native_shape {
            reasons.push(format!(
                "measured-interval shapes differ: sim {sim_shape:?} vs native {native_shape:?}"
            ));
        }
    }
    reasons
}

/// Parallel-campaign equivalence oracle (#10): run the same campaign
/// sequentially and across `jobs` workers and diff the reports. Returns
/// the violations (empty = equivalent).
pub fn check_jobs_equivalence(cfg: &crate::FuzzConfig, jobs: usize) -> Vec<String> {
    let seq = crate::run_fuzz(cfg);
    let par = crate::run_fuzz_parallel(cfg, jobs);
    let mut reasons = Vec::new();
    if seq.coverage != par.coverage {
        reasons.push(format!(
            "coverage diverges between --jobs 1 and --jobs {jobs}:\n    seq  {:?}\n    par  {:?}",
            seq.coverage, par.coverage
        ));
    }
    let seq_cases: Vec<u64> = seq.failures.iter().map(|f| f.case).collect();
    let par_cases: Vec<u64> = par.failures.iter().map(|f| f.case).collect();
    if seq_cases != par_cases {
        reasons.push(format!(
            "failing cases diverge between --jobs 1 and --jobs {jobs}: \
             seq {seq_cases:?} vs par {par_cases:?}"
        ));
    } else if seq != par {
        reasons.push(format!(
            "reports diverge between --jobs 1 and --jobs {jobs} despite matching \
             failure sets (reasons or shrunk counterexamples differ)"
        ));
    }
    reasons
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_rt::region::{Construct, Schedule};

    #[test]
    fn handwritten_mixed_region_passes_all_oracles() {
        let region = RegionSpec::new(
            2,
            vec![
                Construct::Barrier,
                Construct::ParallelFor {
                    schedule: Schedule::Dynamic { chunk: 2 },
                    total_iters: 16,
                    body_us: 0.2,
                    ordered_us: Some(0.1),
                    nowait: false,
                },
                Construct::Critical { body_us: 0.1 },
                Construct::Reduction { body_us: 0.1 },
                Construct::Single { body_us: 0.1 },
                Construct::Atomic,
                Construct::Tasks {
                    per_spawner: 2,
                    body_us: 0.1,
                    master_only: false,
                },
                Construct::Locked {
                    lock: 3,
                    body: vec![Construct::Atomic],
                },
            ],
        )
        .expect("region is valid");
        let reasons = check_case(&region, 7);
        assert!(reasons.is_empty(), "{reasons:#?}");
    }

    #[test]
    fn may_deadlock_flagged_program_runs_sim_only_and_passes() {
        // Opposite acquisition orders in two scopes: the analyzer flags
        // OMPV110 (Warn) and the spec still validates. All threads move
        // through the constructs in program order here, so the run
        // completes — and must pass every oracle, with the native
        // backend skipped.
        let region = RegionSpec::new(
            2,
            vec![
                Construct::Locked {
                    lock: 0,
                    body: vec![Construct::Locked {
                        lock: 1,
                        body: vec![Construct::DelayUs(0.1)],
                    }],
                },
                Construct::Barrier,
                Construct::Locked {
                    lock: 1,
                    body: vec![Construct::Locked {
                        lock: 0,
                        body: vec![Construct::DelayUs(0.1)],
                    }],
                },
            ],
        )
        .expect("lock cycles are Warn-severity, so the spec validates");
        let analysis = ompvar_analyze::analyze(&region);
        assert!(analysis.may_deadlock(), "{}", analysis.render());
        let reasons = check_case(&region, 11);
        assert!(reasons.is_empty(), "{reasons:#?}");
    }

    #[test]
    fn classification_oracle_accepts_transient_rejects_permanent() {
        use ompvar_rt::region::RegionError;
        use ompvar_rt::RtError;
        // A timeout is transient: the oracle records nothing beyond the
        // backend-failure reason itself.
        let mut reasons = Vec::new();
        check_classification(
            &mut reasons,
            "sim",
            &RtError::Timeout {
                construct: "barrier",
                deadline: std::time::Duration::from_secs(1),
            },
        );
        assert!(reasons.is_empty(), "{reasons:?}");
        // A validation error surfacing from a backend at run time is
        // permanent — on a validated program that is taxonomy drift.
        let mut reasons = Vec::new();
        check_classification(
            &mut reasons,
            "native",
            &RtError::InvalidRegion(RegionError::ZeroThreads),
        );
        assert_eq!(reasons.len(), 1);
        assert!(reasons[0].contains("permanent"), "{reasons:?}");
    }

    #[test]
    fn jobs_equivalence_oracle_passes_on_a_small_campaign() {
        let cfg = crate::FuzzConfig {
            cases: 6,
            base_seed: 20230714,
            gen: crate::gen::GenConfig::default(),
        };
        let reasons = check_jobs_equivalence(&cfg, 4);
        assert!(reasons.is_empty(), "{reasons:#?}");
    }

    #[test]
    fn engine_equivalence_compares_error_values_too() {
        // The fuzz corpus' known runtime-deadlock straggler (a
        // lock-order inversion the analyzer flags as may-deadlock): both
        // engine paths must fail with the *identical* deadlock
        // diagnostics, after the optimized path fast-forwarded the idle
        // LoadBalance chain the reference path grinds through.
        let cfg = crate::gen::GenConfig {
            max_threads: 8,
            max_block_len: 8,
            max_depth: 3,
            max_repeat: 8,
            max_iters: 96,
            max_body_us: 2.0,
            max_tasks: 6,
        };
        let seed = crate::case_seed(0x5EED_F00D, 264);
        let region = crate::gen::generate(seed, &cfg);
        assert!(
            sim_runtime(region.n_threads).run(&region, seed).is_err(),
            "straggler case stopped deadlocking (generator drift?)"
        );
        let reasons = check_engine_equivalence(&region, seed);
        assert!(reasons.is_empty(), "{reasons:#?}");
    }

    #[test]
    fn attribution_oracle_passes_and_ledger_is_meaningful() {
        // A contended region: sync waits exist even on the sterile fuzz
        // machine, so the oracle's sterile-zero requirement must hold
        // while the *non-noise* side of the ledger is actually exercised
        // (useful compute plus sync-contention/runtime-overhead charges).
        let region = RegionSpec::new(
            4,
            vec![
                Construct::Barrier,
                Construct::Critical { body_us: 0.5 },
                Construct::ParallelFor {
                    schedule: Schedule::Static { chunk: 2 },
                    total_iters: 8,
                    body_us: 0.4,
                    ordered_us: None,
                    nowait: false,
                },
            ],
        )
        .expect("region is valid");
        let reasons = check_attribution(&region, 42);
        assert!(reasons.is_empty(), "{reasons:#?}");
        // Re-run once more to inspect the ledger the oracle validated.
        let r = sim_runtime(region.n_threads)
            .with_attribution(true)
            .run(&region, 42)
            .expect("attributed run succeeds");
        let attr = r.attribution.expect("ledger present");
        assert!(attr.useful_total() > 0.0, "no useful compute recorded");
        assert!(
            attr.total(ompvar_obs::AttrSource::SyncContention) > 0.0,
            "critical section + barrier produced no sync-contention charge"
        );
        assert_eq!(attr.noise_total(), 0.0);
    }

    #[test]
    fn attribution_oracle_compares_error_values_too() {
        // The known runtime-deadlock straggler: both the plain and the
        // attributed run must fail with the identical deadlock value.
        let cfg = crate::gen::GenConfig {
            max_threads: 8,
            max_block_len: 8,
            max_depth: 3,
            max_repeat: 8,
            max_iters: 96,
            max_body_us: 2.0,
            max_tasks: 6,
        };
        let seed = crate::case_seed(0x5EED_F00D, 264);
        let region = crate::gen::generate(seed, &cfg);
        let reasons = check_attribution(&region, seed);
        assert!(reasons.is_empty(), "{reasons:#?}");
    }

    #[test]
    fn invalid_region_is_reported_not_run() {
        let bad = RegionSpec {
            n_threads: 2,
            constructs: vec![Construct::MarkBegin(0)],
        };
        let reasons = check_case(&bad, 1);
        assert_eq!(reasons.len(), 1);
        assert!(reasons[0].contains("contract"), "{reasons:?}");
    }
}
