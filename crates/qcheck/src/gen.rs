//! Seeded generation of random well-formed [`RegionSpec`] programs.
//!
//! The generator covers the full `Construct` grammar — every schedule
//! kind with random chunking, nesting via `ParallelRegion`/`Repeat`,
//! `nowait` loops, ordered sections, tasks, and matched
//! `MarkBegin`/`MarkEnd` pairs — and promises
//! [`RegionSpec::validate`]-clean output as its contract: any program it
//! emits must be accepted by both backends.

use ompvar_rt::region::{Construct, RegionError, RegionSpec, Schedule};
use ompvar_sim::rng::Rng;
use ompvar_sim::task::CorunClass;

/// Size/shape knobs of the generator. Defaults are tuned so one case
/// simulates and natively executes in well under a second.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum team size (threads drawn from `1..=max_threads`).
    pub max_threads: usize,
    /// Maximum constructs per block.
    pub max_block_len: usize,
    /// Maximum nesting depth of `ParallelRegion`/`Repeat`.
    pub max_depth: usize,
    /// Maximum `Repeat` count.
    pub max_repeat: u32,
    /// Maximum loop `total_iters`.
    pub max_iters: u64,
    /// Maximum body duration, µs of nominal time.
    pub max_body_us: f64,
    /// Maximum tasks per spawning thread.
    pub max_tasks: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_threads: 4,
            max_block_len: 5,
            max_depth: 2,
            max_repeat: 3,
            max_iters: 24,
            max_body_us: 2.0,
            max_tasks: 3,
        }
    }
}

/// Generate one random well-formed region from `seed`.
///
/// # Panics
///
/// Panics if the generated program fails [`RegionSpec::validate`] — that
/// is a bug in the generator, not in the caller.
pub fn generate(seed: u64, cfg: &GenConfig) -> RegionSpec {
    let mut rng = Rng::new(seed).fork("qcheck-gen", 0);
    let n_threads = 1 + rng.below(cfg.max_threads as u64) as usize;
    let mut next_mark = 0u32;
    let constructs = gen_block(&mut rng, cfg, 0, &mut next_mark);
    let spec = RegionSpec {
        n_threads,
        constructs,
    };
    if let Err(e) = spec.validate() {
        panic!("generator contract violated for seed {seed}: {e}\n{spec:#?}");
    }
    spec
}

/// Name of a construct's kind, for coverage tallies (the IR's own
/// stable kind name).
pub fn construct_kind(c: &Construct) -> &'static str {
    c.kind_name()
}

/// All kind names [`construct_kind`] can produce (coverage universe).
pub const ALL_KINDS: [&str; 16] = [
    "DelayUs",
    "Compute",
    "StreamBytes",
    "ParallelFor",
    "Barrier",
    "Critical",
    "LockUnlock",
    "Locked",
    "Atomic",
    "Single",
    "ParallelRegion",
    "Reduction",
    "Tasks",
    "MarkBegin",
    "MarkEnd",
    "Repeat",
];

fn body_us(rng: &mut Rng, cfg: &GenConfig) -> f64 {
    rng.f64() * cfg.max_body_us
}

fn gen_schedule(rng: &mut Rng) -> Schedule {
    let chunk = 1 + rng.below(4);
    match rng.below(3) {
        0 => Schedule::Static { chunk },
        1 => Schedule::Dynamic { chunk },
        _ => Schedule::Guided { min_chunk: chunk },
    }
}

fn gen_block(rng: &mut Rng, cfg: &GenConfig, depth: usize, next_mark: &mut u32) -> Vec<Construct> {
    let len = 1 + rng.below(cfg.max_block_len as u64) as usize;
    let mut out: Vec<Construct> = (0..len)
        .map(|_| gen_construct(rng, cfg, depth, next_mark))
        .collect();
    // Sometimes wrap a random sub-range of the block in a fresh matched
    // MarkBegin/MarkEnd pair. Ids are globally unique so every pair's
    // intervals stay independent; the count is capped to keep reports
    // readable.
    if rng.below(3) == 0 && *next_mark < 8 {
        let id = *next_mark;
        *next_mark += 1;
        let a = rng.below(out.len() as u64 + 1) as usize;
        let b = rng.below(out.len() as u64 + 1) as usize;
        let (lo, hi) = (a.min(b), a.max(b));
        out.insert(hi, Construct::MarkEnd(id));
        out.insert(lo, Construct::MarkBegin(id));
    }
    out
}

fn gen_construct(
    rng: &mut Rng,
    cfg: &GenConfig,
    depth: usize,
    next_mark: &mut u32,
) -> Construct {
    let pick = rng.below(16);
    match pick {
        0 => Construct::DelayUs(body_us(rng, cfg)),
        1 => Construct::Compute {
            cycles: rng.f64() * 4000.0,
            class: match rng.below(3) {
                0 => CorunClass::Latency,
                1 => CorunClass::Mixed,
                _ => CorunClass::Throughput,
            },
        },
        2 => Construct::StreamBytes((64 + rng.below(1 << 14)) as f64),
        3..=5 => Construct::ParallelFor {
            schedule: gen_schedule(rng),
            total_iters: 1 + rng.below(cfg.max_iters),
            body_us: body_us(rng, cfg) * 0.5,
            ordered_us: (rng.below(4) == 0).then(|| rng.f64() * 0.5),
            nowait: rng.below(4) == 0,
        },
        6 => Construct::Barrier,
        7 => Construct::Critical {
            body_us: body_us(rng, cfg) * 0.5,
        },
        8 => Construct::LockUnlock {
            body_us: body_us(rng, cfg) * 0.5,
        },
        9 => Construct::Atomic,
        10 => Construct::Single {
            body_us: body_us(rng, cfg) * 0.5,
        },
        11 => Construct::Reduction {
            body_us: body_us(rng, cfg) * 0.5,
        },
        12 => Construct::Tasks {
            per_spawner: 1 + rng.below(u64::from(cfg.max_tasks)) as u32,
            body_us: body_us(rng, cfg) * 0.5,
            master_only: rng.below(2) == 0,
        },
        13 if depth < cfg.max_depth => Construct::ParallelRegion {
            body: gen_block(rng, cfg, depth + 1, next_mark),
        },
        14 if depth < cfg.max_depth => {
            let count = 1 + rng.below(u64::from(cfg.max_repeat)) as u32;
            let mut body = gen_block(rng, cfg, depth + 1, next_mark);
            // Soundness rule: re-entering a nowait loop needs a
            // full-team rendezvous somewhere in the repeated body. Ask
            // the validator itself so generator and contract never
            // drift apart.
            let probe = RegionSpec {
                n_threads: 1,
                constructs: vec![Construct::Repeat {
                    count,
                    body: body.clone(),
                }],
            };
            if probe.validate() == Err(RegionError::RepeatedNowaitLoop) {
                body.push(Construct::Barrier);
            }
            Construct::Repeat { count, body }
        }
        15 if depth < cfg.max_depth => gen_locked(rng, cfg, &mut Vec::new()),
        // At max depth the nesting picks fall back to plain delays.
        _ => Construct::DelayUs(body_us(rng, cfg)),
    }
}

/// Generate a named-lock scope. Bodies are cheap leaf constructs plus
/// optional further nesting over *distinct* lock ids, so the generator
/// never emits the analyzer's `Error`-severity lock hazards
/// (self-nesting, team sync under a held lock). `Warn`-level
/// acquisition-order cycles across sibling scopes *are* possible — those
/// programs validate, carry a may-deadlock verdict, and exercise the
/// soundness oracle.
fn gen_locked(rng: &mut Rng, cfg: &GenConfig, held: &mut Vec<u32>) -> Construct {
    // Four lock ids and at most three held at once, so a free id exists.
    let lock = loop {
        let l = rng.below(4) as u32;
        if !held.contains(&l) {
            break l;
        }
    };
    held.push(lock);
    let len = 1 + rng.below(2) as usize;
    let mut body: Vec<Construct> = (0..len)
        .map(|_| match rng.below(5) {
            0 => Construct::DelayUs(body_us(rng, cfg) * 0.25),
            1 => Construct::Atomic,
            2 => Construct::Critical {
                body_us: body_us(rng, cfg) * 0.25,
            },
            3 => Construct::LockUnlock {
                body_us: body_us(rng, cfg) * 0.25,
            },
            _ => Construct::Compute {
                cycles: rng.f64() * 1000.0,
                class: CorunClass::Latency,
            },
        })
        .collect();
    if held.len() < 3 && rng.below(3) == 0 {
        body.push(gen_locked(rng, cfg, held));
    }
    held.pop();
    Construct::Locked { lock, body }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generated_programs_are_valid_and_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let a = generate(seed, &cfg); // panics internally if invalid
            let b = generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn generator_covers_every_construct_kind() {
        let cfg = GenConfig::default();
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        fn tally(cs: &[Construct], seen: &mut BTreeSet<&'static str>) {
            for c in cs {
                seen.insert(construct_kind(c));
                match c {
                    Construct::ParallelRegion { body }
                    | Construct::Repeat { body, .. }
                    | Construct::Locked { body, .. } => tally(body, seen),
                    _ => {}
                }
            }
        }
        for seed in 0..300 {
            tally(&generate(seed, &cfg).constructs, &mut seen);
        }
        for kind in ALL_KINDS {
            assert!(seen.contains(kind), "kind {kind} never generated");
        }
    }

    #[test]
    fn team_sizes_span_the_range() {
        let cfg = GenConfig::default();
        let sizes: BTreeSet<usize> =
            (0..100).map(|s| generate(s, &cfg).n_threads).collect();
        assert!(sizes.len() >= 3, "team sizes too uniform: {sizes:?}");
        assert!(sizes.iter().all(|&n| (1..=cfg.max_threads).contains(&n)));
    }
}
