//! Port of the EPCC `syncbench` micro-benchmark.
//!
//! `syncbench` measures the overhead of every OpenMP synchronization
//! construct: each timed repetition executes the construct `inner_reps`
//! times, and `inner_reps` is calibrated so one repetition lasts roughly
//! `test_time_us` (the EPCC auto-calibration).

use crate::params::EpccConfig;
use ompvar_rt::region::{Construct, RegionSpec, Schedule};
use ompvar_rt::runner::RegionRunner;

/// The synchronization constructs evaluated by syncbench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncConstruct {
    /// `#pragma omp parallel` around a delay body (fork/join overhead).
    Parallel,
    /// `#pragma omp for` over `n_threads` delay iterations.
    For,
    /// `#pragma omp parallel for` (region + loop).
    ParallelFor,
    /// `#pragma omp barrier`.
    Barrier,
    /// `#pragma omp single`.
    Single,
    /// `#pragma omp critical`.
    Critical,
    /// Explicit `omp_set_lock`/`omp_unset_lock`.
    LockUnlock,
    /// `#pragma omp ordered` inside a static loop.
    Ordered,
    /// `#pragma omp atomic`.
    Atomic,
    /// `reduction(+:...)` clause.
    Reduction,
}

impl SyncConstruct {
    /// All constructs, in syncbench's reporting order.
    pub const ALL: [SyncConstruct; 10] = [
        SyncConstruct::Parallel,
        SyncConstruct::For,
        SyncConstruct::ParallelFor,
        SyncConstruct::Barrier,
        SyncConstruct::Single,
        SyncConstruct::Critical,
        SyncConstruct::LockUnlock,
        SyncConstruct::Ordered,
        SyncConstruct::Atomic,
        SyncConstruct::Reduction,
    ];

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SyncConstruct::Parallel => "parallel",
            SyncConstruct::For => "for",
            SyncConstruct::ParallelFor => "parallel_for",
            SyncConstruct::Barrier => "barrier",
            SyncConstruct::Single => "single",
            SyncConstruct::Critical => "critical",
            SyncConstruct::LockUnlock => "lock_unlock",
            SyncConstruct::Ordered => "ordered",
            SyncConstruct::Atomic => "atomic",
            SyncConstruct::Reduction => "reduction",
        }
    }

    /// The construct body executed once per inner repetition, mirroring
    /// the upstream `syncbench.c` kernels.
    pub fn body(&self, cfg: &EpccConfig, n_threads: usize) -> Vec<Construct> {
        let d = cfg.delay_us;
        match self {
            SyncConstruct::Parallel => vec![Construct::ParallelRegion {
                body: vec![Construct::DelayUs(d)],
            }],
            SyncConstruct::For => vec![Construct::ParallelFor {
                schedule: Schedule::Static { chunk: 1 },
                total_iters: n_threads as u64,
                body_us: d,
                ordered_us: None,
                nowait: false,
            }],
            SyncConstruct::ParallelFor => vec![Construct::ParallelRegion {
                body: vec![Construct::ParallelFor {
                    schedule: Schedule::Static { chunk: 1 },
                    total_iters: n_threads as u64,
                    body_us: d,
                    ordered_us: None,
                    nowait: false,
                }],
            }],
            SyncConstruct::Barrier => vec![Construct::DelayUs(d), Construct::Barrier],
            SyncConstruct::Single => vec![Construct::Single { body_us: d }],
            SyncConstruct::Critical => vec![Construct::Critical { body_us: d }],
            SyncConstruct::LockUnlock => vec![Construct::LockUnlock { body_us: d }],
            SyncConstruct::Ordered => vec![Construct::ParallelFor {
                schedule: Schedule::Static { chunk: 1 },
                total_iters: n_threads as u64,
                body_us: 0.0,
                ordered_us: Some(d),
                nowait: false,
            }],
            SyncConstruct::Atomic => vec![Construct::Atomic],
            SyncConstruct::Reduction => vec![Construct::Reduction { body_us: d }],
        }
    }
}

/// Build the syncbench region for a construct with an explicit inner
/// repetition count.
pub fn region_with_inner(
    cfg: &EpccConfig,
    construct: SyncConstruct,
    n_threads: usize,
    inner_reps: u32,
) -> RegionSpec {
    RegionSpec::measured(
        n_threads,
        cfg.outer_reps,
        inner_reps,
        construct.body(cfg, n_threads),
    )
}

/// EPCC-style auto-calibration of the inner repetition count: run one
/// short probe (1 outer × `probe_inner` inner) and scale so a repetition
/// lasts about `test_time_us`. The result is clamped to `[1, cap]` to
/// keep simulated event counts tractable.
pub fn calibrate_inner_reps<R: RegionRunner>(
    rt: &R,
    cfg: &EpccConfig,
    construct: SyncConstruct,
    n_threads: usize,
    cap: u32,
) -> u32 {
    let probe_inner = 4;
    let probe_cfg = EpccConfig {
        outer_reps: 2,
        ..*cfg
    };
    let probe = region_with_inner(&probe_cfg, construct, n_threads, probe_inner);
    let res = rt.run_region(&probe, 0xCA11B).expect("syncbench region completes");
    // Use the second repetition (the first may include warmup placement).
    let rep_us = res.reps()[1].max(1e-3);
    let per_op = rep_us / probe_inner as f64;
    ((cfg.test_time_us / per_op).round() as u32).clamp(1, cap)
}

/// Reference time of one inner repetition, µs: the serial cost of the
/// construct's delay body (EPCC's "reference" measurement).
pub fn reference_op_us(cfg: &EpccConfig, construct: SyncConstruct) -> f64 {
    match construct {
        // Loop-shaped constructs run one delay per thread in parallel →
        // the reference is a single delay.
        SyncConstruct::Parallel
        | SyncConstruct::For
        | SyncConstruct::ParallelFor
        | SyncConstruct::Barrier
        | SyncConstruct::Critical
        | SyncConstruct::LockUnlock
        | SyncConstruct::Ordered
        | SyncConstruct::Reduction => cfg.delay_us,
        SyncConstruct::Single => cfg.delay_us,
        SyncConstruct::Atomic => 0.0,
    }
}

/// Overhead per construct execution, µs, from a measured repetition.
pub fn overhead_us(
    cfg: &EpccConfig,
    construct: SyncConstruct,
    rep_us: f64,
    inner_reps: u32,
) -> f64 {
    rep_us / inner_reps as f64 - reference_op_us(cfg, construct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_rt::config::RtConfig;
    use ompvar_rt::simrt::SimRuntime;
    use ompvar_sim::params::SimParams;
    use ompvar_topology::{MachineSpec, Places};

    fn rt(n: usize) -> SimRuntime {
        SimRuntime::new(
            MachineSpec::vera(),
            RtConfig::pinned_close(Places::Threads(Some(n))),
        )
        .with_params(SimParams::sterile())
    }

    #[test]
    fn all_constructs_run_on_the_simulator() {
        let cfg = EpccConfig::syncbench_default().fast(2);
        for c in SyncConstruct::ALL {
            let region = region_with_inner(&cfg, c, 4, 5);
            let res = rt(4).run_region(&region, 1).expect("syncbench region completes");
            assert_eq!(res.reps().len(), 2, "{}", c.label());
            assert!(res.reps()[1] > 0.0, "{}", c.label());
        }
    }

    #[test]
    fn calibration_hits_test_time_ballpark() {
        let cfg = EpccConfig::syncbench_default().fast(2);
        let rt = rt(8);
        let inner = calibrate_inner_reps(&rt, &cfg, SyncConstruct::Barrier, 8, 10_000);
        assert!(inner > 1);
        let res = rt.run_region(&region_with_inner(&cfg, SyncConstruct::Barrier, 8, inner), 1).expect("syncbench region completes");
        let rep = res.reps()[1];
        assert!(
            rep > cfg.test_time_us * 0.4 && rep < cfg.test_time_us * 2.5,
            "calibrated rep {rep} µs (target {})",
            cfg.test_time_us
        );
    }

    #[test]
    fn reduction_is_most_expensive_core_sync() {
        // Paper §5.1: reduction is the most time-consuming of the
        // synchronization micro-benchmarks.
        let cfg = EpccConfig::syncbench_default().fast(2);
        let rt = rt(16);
        let inner = 20;
        let mut costs = Vec::new();
        for c in [
            SyncConstruct::Barrier,
            SyncConstruct::Single,
            SyncConstruct::Atomic,
            SyncConstruct::Reduction,
        ] {
            let res = rt.run_region(&region_with_inner(&cfg, c, 16, inner), 1).expect("syncbench region completes");
            costs.push((c.label(), overhead_us(&cfg, c, res.reps()[1], inner)));
        }
        let red = costs.iter().find(|(l, _)| *l == "reduction").unwrap().1;
        for (l, c) in &costs {
            assert!(red >= *c, "reduction {red} vs {l} {c}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = SyncConstruct::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn overhead_subtracts_reference() {
        let cfg = EpccConfig::syncbench_default();
        let oh = overhead_us(&cfg, SyncConstruct::Barrier, 100.0, 10);
        assert!((oh - (10.0 - 0.1)).abs() < 1e-9);
    }
}
