//! EPCC benchmark parameters (the paper's Table 1).

/// Parameters of one EPCC micro-benchmark run, matching the upstream
/// drivers' command-line options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpccConfig {
    /// Outer repetitions: how many timed repetitions of the measured
    /// kernel one run performs (`--outer-repetitions`).
    pub outer_reps: u32,
    /// Duration of one `delay()` call, µs of nominal CPU time
    /// (`--delay-time`).
    pub delay_us: f64,
    /// Target duration of one timed repetition, µs (`--test-time`); used
    /// to calibrate the inner repetition count.
    pub test_time_us: f64,
    /// schedbench only: loop iterations per thread (`itersperthr`).
    pub iters_per_thr: u64,
}

impl EpccConfig {
    /// Table 1, `schedbench` column: 100 outer reps, 15 µs delay,
    /// 1000 µs test time, 8192 iterations per thread.
    pub fn schedbench_default() -> Self {
        EpccConfig {
            outer_reps: 100,
            delay_us: 15.0,
            test_time_us: 1000.0,
            iters_per_thr: 8192,
        }
    }

    /// Table 1, `syncbench` column: 100 outer reps, 0.1 µs delay,
    /// 1000 µs test time.
    pub fn syncbench_default() -> Self {
        EpccConfig {
            outer_reps: 100,
            delay_us: 0.1,
            test_time_us: 1000.0,
            iters_per_thr: 0,
        }
    }

    /// A reduced-cost variant for tests and quick runs: same delays and
    /// test time, fewer outer repetitions.
    pub fn fast(mut self, outer_reps: u32) -> Self {
        self.outer_reps = outer_reps;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// These assertions *are* the reproduction of Table 1.
    #[test]
    fn table1_schedbench_parameters() {
        let p = EpccConfig::schedbench_default();
        assert_eq!(p.outer_reps, 100);
        assert_eq!(p.delay_us, 15.0);
        assert_eq!(p.test_time_us, 1000.0);
        assert_eq!(p.iters_per_thr, 8192);
    }

    /// These assertions *are* the reproduction of Table 1.
    #[test]
    fn table1_syncbench_parameters() {
        let p = EpccConfig::syncbench_default();
        assert_eq!(p.outer_reps, 100);
        assert_eq!(p.delay_us, 0.1);
        assert_eq!(p.test_time_us, 1000.0);
    }

    #[test]
    fn fast_reduces_only_reps() {
        let p = EpccConfig::schedbench_default().fast(5);
        assert_eq!(p.outer_reps, 5);
        assert_eq!(p.delay_us, 15.0);
    }
}
