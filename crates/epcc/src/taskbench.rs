//! Port of the EPCC `taskbench` micro-benchmark (explicit-task
//! overheads), following LaGrone et al.'s task micro-benchmark design
//! that the EPCC suite adopted.
//!
//! Each timed repetition spawns a batch of `delay(delay_us)` tasks,
//! executes them at a task-scheduling point and waits for completion.
//! The overhead per task is the repetition time divided by the number of
//! tasks, minus the ideal (perfectly parallel) task time. The paper lists
//! taskbench as future work; this module is the corresponding extension.

use crate::params::EpccConfig;
use ompvar_rt::region::{Construct, RegionSpec};

/// Task-benchmark patterns, mirroring the upstream kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskPattern {
    /// Every team thread spawns `tasks_per_spawner` tasks ("PARALLEL
    /// TASK"): spawn contention plus distributed execution.
    ParallelTask,
    /// Only the master spawns ("MASTER TASK"): a producer/consumer
    /// pattern where the team steals from one spawner's queue.
    MasterTask,
}

impl TaskPattern {
    /// All patterns in reporting order.
    pub const ALL: [TaskPattern; 2] = [TaskPattern::ParallelTask, TaskPattern::MasterTask];

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            TaskPattern::ParallelTask => "parallel_task",
            TaskPattern::MasterTask => "master_task",
        }
    }
}

/// Build a taskbench region: `outer_reps` timed repetitions, each
/// spawning and draining `tasks_per_spawner` tasks per spawning thread.
pub fn region(
    cfg: &EpccConfig,
    pattern: TaskPattern,
    n_threads: usize,
    tasks_per_spawner: u32,
) -> RegionSpec {
    RegionSpec::measured(
        n_threads,
        cfg.outer_reps,
        1,
        vec![Construct::Tasks {
            per_spawner: tasks_per_spawner,
            body_us: cfg.delay_us,
            master_only: pattern == TaskPattern::MasterTask,
        }],
    )
}

/// Total tasks per repetition for a pattern/team/spawn-count.
pub fn tasks_per_rep(pattern: TaskPattern, n_threads: usize, tasks_per_spawner: u32) -> u64 {
    match pattern {
        TaskPattern::ParallelTask => n_threads as u64 * tasks_per_spawner as u64,
        TaskPattern::MasterTask => tasks_per_spawner as u64,
    }
}

/// Ideal repetition time, µs: total task work spread over the team.
pub fn ideal_rep_us(
    cfg: &EpccConfig,
    pattern: TaskPattern,
    n_threads: usize,
    tasks_per_spawner: u32,
) -> f64 {
    let total = tasks_per_rep(pattern, n_threads, tasks_per_spawner) as f64;
    total * cfg.delay_us / n_threads as f64
}

/// Per-task overhead, µs, from a measured repetition time.
pub fn overhead_per_task_us(
    cfg: &EpccConfig,
    pattern: TaskPattern,
    n_threads: usize,
    tasks_per_spawner: u32,
    rep_us: f64,
) -> f64 {
    let total = tasks_per_rep(pattern, n_threads, tasks_per_spawner) as f64;
    (rep_us - ideal_rep_us(cfg, pattern, n_threads, tasks_per_spawner)) / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_rt::config::RtConfig;
    use ompvar_rt::native::NativeRuntime;
    use ompvar_rt::runner::RegionRunner;
    use ompvar_rt::simrt::SimRuntime;
    use ompvar_sim::params::SimParams;
    use ompvar_topology::{MachineSpec, Places};

    fn sim_rt(n: usize) -> SimRuntime {
        SimRuntime::new(
            MachineSpec::vera(),
            RtConfig::pinned_close(Places::Threads(Some(n))),
        )
        .with_params(SimParams::sterile())
    }

    #[test]
    fn both_patterns_run_on_the_simulator() {
        let cfg = EpccConfig::syncbench_default().fast(3);
        for pattern in TaskPattern::ALL {
            let region = region(&cfg, pattern, 8, 32);
            let res = sim_rt(8).run_region(&region, 1).expect("taskbench region completes");
            assert_eq!(res.reps().len(), 3, "{}", pattern.label());
            assert!(res.reps()[1] > 0.0);
        }
    }

    #[test]
    fn tasks_actually_distribute_work() {
        // 8 threads, master spawns 64 tasks of 10 µs: if only the master
        // executed them the repetition would take 640 µs; with the team
        // stealing, it should be well under half of that.
        let mut cfg = EpccConfig::syncbench_default().fast(3);
        cfg.delay_us = 10.0;
        let region = region(&cfg, TaskPattern::MasterTask, 8, 64);
        let res = sim_rt(8).run_region(&region, 1).expect("taskbench region completes");
        let rep = res.reps()[1];
        assert!(rep < 320.0, "rep {rep} µs — tasks not distributed");
        assert!(rep > 80.0, "rep {rep} µs — faster than the work itself");
    }

    #[test]
    fn overhead_grows_with_team_for_parallel_spawn() {
        let cfg = EpccConfig::syncbench_default().fast(3);
        let oh = |n: usize| {
            let region = region(&cfg, TaskPattern::ParallelTask, n, 16);
            let res = sim_rt(n).run_region(&region, 1).expect("taskbench region completes");
            overhead_per_task_us(&cfg, TaskPattern::ParallelTask, n, 16, res.reps()[1])
        };
        let small = oh(2);
        let large = oh(16);
        assert!(
            large > small,
            "spawn/dispatch contention should grow: {small} vs {large}"
        );
    }

    #[test]
    fn native_backend_runs_tasks() {
        let mut cfg = EpccConfig::syncbench_default().fast(2);
        cfg.delay_us = 1.0;
        for pattern in TaskPattern::ALL {
            let r = region(&cfg, pattern, 2, 8);
            let res = NativeRuntime::new(RtConfig::unbound()).run_region(&r, 0).expect("taskbench region completes");
            assert_eq!(res.reps().len(), 2, "{}", pattern.label());
        }
    }

    #[test]
    fn accounting_helpers() {
        let cfg = EpccConfig::syncbench_default();
        assert_eq!(tasks_per_rep(TaskPattern::ParallelTask, 8, 16), 128);
        assert_eq!(tasks_per_rep(TaskPattern::MasterTask, 8, 16), 16);
        let ideal = ideal_rep_us(&cfg, TaskPattern::ParallelTask, 8, 16);
        assert!((ideal - 16.0 * 0.1).abs() < 1e-12);
        let oh = overhead_per_task_us(&cfg, TaskPattern::ParallelTask, 8, 16, ideal + 128.0);
        assert!((oh - 1.0).abs() < 1e-12);
    }
}
