#![warn(missing_docs)]

//! # ompvar-bench-epcc — EPCC OpenMP micro-benchmarks
//!
//! A port of the two EPCC micro-benchmarks the paper evaluates:
//!
//! * [`schedbench`] — loop-scheduling overheads for `static`, `dynamic`
//!   and `guided` schedules with configurable chunk sizes;
//! * [`taskbench`] — explicit-task spawning/dispatch overheads (the EPCC
//!   suite's task micro-benchmarks; the paper lists these as future work);
//! * [`syncbench`] — overheads of all OpenMP synchronization constructs
//!   (parallel, for, parallel-for, barrier, single, critical,
//!   lock/unlock, ordered, atomic, reduction), with EPCC-style
//!   auto-calibration of inner repetitions against a target test time.
//!
//! Both produce [`ompvar_rt::RegionSpec`]s runnable on either backend,
//! and the [`runner`] module implements the paper's 10-run protocol.

pub mod params;
pub mod runner;
pub mod schedbench;
pub mod syncbench;
pub mod taskbench;

pub use params::EpccConfig;
pub use runner::{run_many, run_many_full};
pub use syncbench::SyncConstruct;
