//! Port of the EPCC `schedbench` micro-benchmark.
//!
//! `schedbench` measures loop-scheduling overheads: each timed repetition
//! executes a work-shared loop of `iters_per_thr × n_threads` iterations
//! of `delay(delay_us)` under a chosen schedule. The overhead is the
//! difference to a perfectly scheduled loop (`iters_per_thr` iterations
//! per thread with zero dispatch cost).

use crate::params::EpccConfig;
use ompvar_rt::region::{Construct, RegionSpec, Schedule};

/// Build the schedbench region for one schedule and team size.
pub fn region(cfg: &EpccConfig, schedule: Schedule, n_threads: usize) -> RegionSpec {
    assert!(cfg.iters_per_thr > 0, "schedbench needs iters_per_thr");
    let total_iters = cfg.iters_per_thr * n_threads as u64;
    RegionSpec::measured(
        n_threads,
        cfg.outer_reps,
        1,
        vec![Construct::ParallelFor {
            schedule,
            total_iters,
            body_us: cfg.delay_us,
            ordered_us: None,
            nowait: false,
        }],
    )
}

/// The ideal (overhead-free) time of one repetition, µs: each thread runs
/// `iters_per_thr` delay calls in parallel.
pub fn ideal_rep_us(cfg: &EpccConfig) -> f64 {
    cfg.iters_per_thr as f64 * cfg.delay_us
}

/// Per-iteration scheduling overhead implied by a measured repetition
/// time, µs (can be negative if the machine beat nominal frequency).
pub fn per_iter_overhead_us(cfg: &EpccConfig, rep_us: f64) -> f64 {
    (rep_us - ideal_rep_us(cfg)) / cfg.iters_per_thr as f64
}

/// The schedules evaluated in the paper (chunk size 1).
pub fn paper_schedules() -> Vec<Schedule> {
    vec![
        Schedule::Static { chunk: 1 },
        Schedule::Dynamic { chunk: 1 },
        Schedule::Guided { min_chunk: 1 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_rt::config::RtConfig;
    use ompvar_rt::runner::RegionRunner;
    use ompvar_rt::simrt::SimRuntime;
    use ompvar_sim::params::SimParams;
    use ompvar_topology::{MachineSpec, Places};

    fn small_cfg() -> EpccConfig {
        EpccConfig {
            outer_reps: 3,
            delay_us: 15.0,
            test_time_us: 1000.0,
            iters_per_thr: 64,
        }
    }

    #[test]
    fn region_has_one_loop_per_rep() {
        let r = region(&EpccConfig::schedbench_default(), Schedule::Dynamic { chunk: 1 }, 4);
        assert_eq!(r.n_threads, 4);
        // constructs[0] is the unmeasured warm-up block; the measured
        // block carries the 100 outer repetitions.
        let Construct::Repeat { count, .. } = &r.constructs[1] else {
            panic!()
        };
        assert_eq!(*count, 100);
    }

    #[test]
    fn ideal_time_matches_table2_scale() {
        // 8192 × 15 µs = 122.88 ms — the baseline under Table 2's values.
        let cfg = EpccConfig::schedbench_default();
        assert!((ideal_rep_us(&cfg) - 122_880.0).abs() < 1e-9);
    }

    #[test]
    fn simulated_rep_time_close_to_ideal_when_sterile() {
        let cfg = small_cfg();
        let rt = SimRuntime::new(
            MachineSpec::vera(),
            RtConfig::pinned_close(Places::Threads(Some(4))),
        )
        .with_params(SimParams::sterile());
        let r = region(&cfg, Schedule::Static { chunk: 1 }, 4);
        let res = rt.run_region(&r, 1).expect("schedbench region completes");
        // 4 active cores on Vera boost to 3.5 of 3.7 GHz → delays run
        // ~5.7% slow vs. nominal; dispatch adds a little more.
        let rep = res.reps()[1];
        let ideal = ideal_rep_us(&cfg);
        assert!(rep > ideal, "rep {rep} vs ideal {ideal}");
        assert!(rep < ideal * 1.15, "rep {rep} vs ideal {ideal}");
    }

    #[test]
    fn dynamic_overhead_grows_with_threads() {
        let cfg = small_cfg();
        let per_iter = |n: usize| {
            let rt = SimRuntime::new(
                MachineSpec::vera(),
                RtConfig::pinned_close(Places::Threads(Some(n))),
            )
            .with_params(SimParams::sterile());
            let res = rt.run_region(&region(&cfg, Schedule::Dynamic { chunk: 1 }, n), 1).expect("schedbench region completes");
            per_iter_overhead_us(&cfg, res.reps()[1])
        };
        let two = per_iter(2);
        let thirty = per_iter(30);
        assert!(
            thirty > two,
            "dispatch overhead should grow with contention: {two} vs {thirty}"
        );
    }

    #[test]
    fn paper_schedules_have_chunk_one() {
        let labels: Vec<String> = paper_schedules().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["static_1", "dynamic_1", "guided_1"]);
    }
}
