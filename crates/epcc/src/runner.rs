//! The multi-run protocol: execute a region `n_runs` times and collect a
//! [`RunSet`] for variability analysis.

use ompvar_core::RunSet;
use ompvar_rt::config::RegionResult;
use ompvar_rt::region::RegionSpec;
use ompvar_rt::runner::RegionRunner;

/// Run `region` `n_runs` times. Each run `i` uses seed
/// `seed_base + i` (simulated backend), mirroring the paper's protocol of
/// 10 independent job submissions per configuration.
pub fn run_many<R: RegionRunner>(
    rt: &R,
    region: &RegionSpec,
    n_runs: usize,
    seed_base: u64,
) -> RunSet {
    let mut runs = Vec::with_capacity(n_runs);
    for i in 0..n_runs {
        let res = rt
            .run_region(region, seed_base + i as u64)
            .unwrap_or_else(|e| panic!("run {i}/{n_runs} on {} failed: {e}", rt.backend_name()));
        runs.push(res.reps().to_vec());
    }
    RunSet::new(runs)
}

/// Like [`run_many`] but also keeping each run's full [`RegionResult`]
/// (frequency traces, counters) for experiments that need them.
pub fn run_many_full<R: RegionRunner>(
    rt: &R,
    region: &RegionSpec,
    n_runs: usize,
    seed_base: u64,
) -> (RunSet, Vec<RegionResult>) {
    let mut runs = Vec::with_capacity(n_runs);
    let mut full = Vec::with_capacity(n_runs);
    for i in 0..n_runs {
        let res = rt
            .run_region(region, seed_base + i as u64)
            .unwrap_or_else(|e| panic!("run {i}/{n_runs} on {} failed: {e}", rt.backend_name()));
        runs.push(res.reps().to_vec());
        full.push(res);
    }
    (RunSet::new(runs), full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompvar_rt::config::RtConfig;
    use ompvar_rt::region::Construct;
    use ompvar_rt::simrt::SimRuntime;
    use ompvar_sim::params::SimParams;
    use ompvar_topology::{MachineSpec, Places};

    #[test]
    fn collects_one_entry_per_run() {
        let rt = SimRuntime::new(
            MachineSpec::vera(),
            RtConfig::pinned_close(Places::Threads(Some(4))),
        )
        .with_params(SimParams::sterile());
        let region = RegionSpec::measured(4, 3, 5, vec![Construct::Barrier]);
        let rs = run_many(&rt, &region, 4, 100);
        assert_eq!(rs.n_runs(), 4);
        assert!(rs.runs.iter().all(|r| r.reps_us.len() == 3));
    }

    #[test]
    fn noisy_runs_differ_across_seeds() {
        let rt = SimRuntime::new(
            MachineSpec::vera(),
            RtConfig::pinned_close(Places::Threads(Some(4))),
        );
        // Long enough (~100 ms per run) that noise arrivals and frequency
        // pulses are near-certain to land inside the measured window.
        let region = RegionSpec::measured(
            4,
            10,
            20,
            vec![Construct::DelayUs(500.0), Construct::Barrier],
        );
        let rs = run_many(&rt, &region, 3, 7);
        let means = rs.run_means();
        assert!(means.windows(2).any(|w| w[0] != w[1]));
    }
}
