//! Failure-injection and degenerate-configuration tests for the engine.

use ompvar_sim::prelude::*;
use ompvar_sim::sync::{LoopSchedule, LoopSpec};
use ompvar_sim::time::{MS, SEC, US};
use ompvar_topology::{HwThreadId, MachineSpec, Place};

fn pin(cpu: usize) -> Option<Place> {
    Some(Place::single(HwThreadId(cpu)))
}

/// A noise storm (very aggressive arrival rates) must not deadlock or
/// starve the benchmark forever — it finishes, just late.
#[test]
fn noise_storm_slows_but_completes() {
    let m = MachineSpec::generic(1, 2, 1);
    let mut p = SimParams::sterile();
    p.noise = NoiseParams {
        sources: vec![NoiseSource {
            name: "storm",
            mean_interval: 200 * US,
            median_duration: 150 * US,
            duration_sigma: 0.5,
            placement: NoisePlacement::PerCpu,
        }],
        ..NoiseParams::default()
    };
    let mut sim = Simulator::new(m, p, 1);
    let prog = Program::builder()
        .compute(30.0e6, CorunClass::Latency) // 10 ms of work
        .build();
    sim.spawn_user(0, prog, pin(0));
    let rep = sim.run(60 * SEC).expect("run completes");
    assert!(rep.final_time > 15 * MS, "storm should at least double time");
    assert!(rep.final_time < 60 * SEC, "must finish under the limit");
    assert!(rep.counters.preemptions > 20);
}

/// A single-CPU machine with many oversubscribed threads and a barrier
/// still completes (quantum rotation lets everyone arrive).
#[test]
fn single_cpu_oversubscription_with_barrier() {
    let m = MachineSpec::generic(1, 1, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let b = sim.add_barrier(6, 1.0);
    for rank in 0..6 {
        let prog = Program::builder()
            .repeat(3)
            .compute(3.0e6, CorunClass::Latency)
            .barrier(b)
            .end_repeat()
            .build();
        sim.spawn_user(rank, prog, pin(0));
    }
    let rep = sim.run(60 * SEC).expect("run completes");
    // 6 threads × 3 reps × 1 ms serialized ≈ 18 ms plus rotation slack.
    assert!(rep.final_time >= 18 * MS);
    assert!(rep.final_time < 500 * MS);
}

/// Hitting the virtual-time limit stops the run with a typed error
/// carrying a usable partial report, instead of panicking or silently
/// truncating.
#[test]
fn time_limit_stops_unfinished_run() {
    let m = MachineSpec::generic(1, 2, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let prog = Program::builder()
        .compute(3.0e12, CorunClass::Latency) // ~17 minutes of work
        .build();
    sim.spawn_user(0, prog, pin(0));
    match sim.run(10 * MS) {
        Err(SimError::TimeLimitExceeded { limit, partial }) => {
            assert_eq!(limit, 10 * MS);
            assert_eq!(partial.unfinished, 1);
            assert!(partial.final_time <= 10 * MS + 1);
        }
        other => panic!("expected TimeLimitExceeded, got {other:?}"),
    }
}

/// A barrier sized for more threads than exist deadlocks; the watchdog
/// reports the blocked tasks and the barrier they wait on instead of
/// hanging the host or panicking.
#[test]
fn barrier_deadlock_is_detected() {
    let m = MachineSpec::generic(1, 2, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let b = sim.add_barrier(3, 1.0); // 3-party barrier...
    for rank in 0..2 {
        // ...but only two threads.
        let prog = Program::builder().barrier(b).build();
        sim.spawn_user(rank, prog, pin(rank));
    }
    match sim.run(SEC) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), 2, "both spinners diagnosed: {blocked:?}");
            for bt in &blocked {
                match bt.wait {
                    BlockedOn::Barrier { obj, arrived, team } => {
                        assert_eq!(obj, b);
                        assert_eq!((arrived, team), (2, 3));
                    }
                    other => panic!("expected a barrier wait, got {other:?}"),
                }
            }
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

/// Zero-duration ops are skipped without stalling the interpreter.
#[test]
fn zero_duration_ops_are_fine() {
    let m = MachineSpec::generic(1, 2, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let prog = Program::builder()
        .mark(0)
        .compute(0.0, CorunClass::Latency)
        .busy_ns(0.0)
        .compute(3000.0, CorunClass::Latency)
        .mark(1)
        .build();
    let t = sim.spawn_user(0, prog, pin(0));
    let rep = sim.run(SEC).expect("run completes");
    let d = rep.intervals(t, 0, 1)[0];
    assert!((1_000..2_000).contains(&d), "1 µs of real work, got {d} ns");
}

/// Deeply nested repeat blocks execute the right number of times.
#[test]
fn nested_repeats_multiply() {
    let m = MachineSpec::generic(1, 1, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let prog = Program::builder()
        .repeat(3)
        .repeat(4)
        .repeat(5)
        .mark(9)
        .end_repeat()
        .end_repeat()
        .end_repeat()
        .build();
    let t = sim.spawn_user(0, prog, pin(0));
    let rep = sim.run(SEC).expect("run completes");
    assert_eq!(rep.marker_times(t, 9).len(), 3 * 4 * 5);
}

/// An ordered loop whose team is bigger than the iteration count still
/// terminates (some threads get no iterations).
#[test]
fn ordered_loop_with_more_threads_than_iters() {
    let m = MachineSpec::generic(1, 8, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let lp = sim.add_loop(LoopSpec {
        schedule: LoopSchedule::Static { chunk: 1 },
        total_iters: 3,
        n_threads: 8,
        body_cycles: 3000.0,
        body_class: CorunClass::Latency,
        ordered_section_ns: Some(500.0),
        batch: 1,
        span_factor: 1.0,
    });
    let b = sim.add_barrier(8, 1.0);
    for rank in 0..8 {
        let prog = Program::builder().for_loop(lp).barrier(b).build();
        sim.spawn_user(rank, prog, pin(rank));
    }
    let rep = sim.run(SEC).expect("run completes");
    assert!(rep.final_time > 0);
}

/// Unbound tasks on a tiny machine with constant churn still finish.
#[test]
fn heavy_churn_unbound_still_finishes() {
    let m = MachineSpec::generic(1, 2, 2);
    let mut p = SimParams::default();
    p.sched.wake_migrate_prob = 0.5;
    p.sched.wake_misplace_prob = 0.9;
    p.sched.balance_stale_prob = 0.5;
    let mut sim = Simulator::new(m, p, 3);
    let b = sim.add_barrier(4, 1.0);
    for rank in 0..4 {
        let prog = Program::builder()
            .repeat(20)
            .compute(0.3e6, CorunClass::Latency)
            .barrier(b)
            .end_repeat()
            .build();
        sim.spawn_user(rank, prog, None);
    }
    let rep = sim.run(60 * SEC).expect("run completes");
    assert!(rep.final_time < 60 * SEC);
    assert!(rep.counters.migrations > 0);
}

/// The frequency logger alone (no benchmark work beyond a trivial task)
/// produces a consistent trace on a machine with one core.
#[test]
fn logger_on_minimal_machine() {
    let m = MachineSpec::generic(1, 1, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    sim.enable_freq_logger(None, MS, 0);
    let prog = Program::builder()
        .compute(30.0e6, CorunClass::Latency)
        .build();
    sim.spawn_user(0, prog, pin(0));
    let rep = sim.run(SEC).expect("run completes");
    assert!(rep.freq_samples.len() >= 9);
    assert!(rep
        .freq_samples
        .iter()
        .all(|s| s.core_ghz.len() == 1 && s.core_ghz[0] > 0.0));
}

/// Kernel-task recycling: long runs do not grow the task table without
/// bound (the freelist reuses finished noise tasks).
#[test]
fn noise_tasks_are_recycled() {
    let m = MachineSpec::generic(1, 2, 1);
    let mut p = SimParams::sterile();
    p.noise = NoiseParams {
        sources: vec![NoiseSource {
            name: "chatter",
            mean_interval: 50 * US,
            median_duration: 5 * US,
            duration_sigma: 0.1,
            placement: NoisePlacement::PerCpu,
        }],
        ..NoiseParams::default()
    };
    let mut sim = Simulator::new(m, p, 1);
    let prog = Program::builder()
        .compute(300.0e6, CorunClass::Latency) // 100 ms
        .build();
    sim.spawn_user(0, prog, pin(0));
    let rep = sim.run(10 * SEC).expect("run completes");
    // Thousands of arrivals happened; the engine must have processed them
    // all (events counter) while recycling task slots.
    assert!(rep.counters.noise_events > 2_000);
}
