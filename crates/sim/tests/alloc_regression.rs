//! Allocation-count regression test for the engine's slab/arena reuse.
//!
//! The hot loop must not allocate per synchronization cycle: barrier
//! releases recycle their waiter vectors ([`BarrierObj::recycle`]),
//! task pools recycle their completion wait-lists, and `sync_stream`
//! reuses one scratch buffer. This test pins that property with a
//! counting global allocator: the *difference* in allocation count
//! between a long run and a short run of the same barrier-cycle
//! workload must stay O(1) — independent of how many cycles execute.
//!
//! (An absolute count would be brittle against setup-path changes; the
//! delta isolates exactly the steady-state loop.)

use ompvar_sim::prelude::*;
use ompvar_sim::time::SEC;
use ompvar_topology::{HwThreadId, MachineSpec, Place};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `reps` barrier+task-pool cycles across 4 tasks and return the
/// number of allocations made *inside* `Simulator::run` (setup and
/// report construction excluded as far as possible: the run itself is
/// the only thing between the two counter reads except `make_report`,
/// whose cost is reps-independent).
fn allocs_for(reps: u32) -> u64 {
    allocs_for_mode(reps, false)
}

fn allocs_for_mode(reps: u32, attributed: bool) -> u64 {
    let machine = MachineSpec::generic(1, 4, 1);
    let n = 4;
    let mut sim = Simulator::new(machine, SimParams::sterile(), 7);
    if attributed {
        sim.enable_attribution();
    }
    let barrier = sim.add_barrier(n, 1.0);
    let pool = sim.add_task_pool(1.0, n, n);
    for rank in 0..n {
        let prog = Program::builder()
            .repeat(reps)
            .compute(3.0e3, CorunClass::Latency)
            .task_spawn(pool, 1, 1.5e3)
            .task_wait(pool)
            .barrier(barrier)
            .end_repeat()
            .build();
        sim.spawn_user(rank, prog, Some(Place::single(HwThreadId(rank))));
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = sim.run(100 * SEC).expect("barrier cycles complete");
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(report.unfinished, 0);
    after - before
}

/// Tripling the cycle count must not grow the allocation count beyond a
/// small constant slack (heap-`Vec` doublings, one-off lazy inits).
/// Before the slab-reuse work, every barrier release and every task
/// completion allocated a fresh `Vec`, so the delta scaled linearly
/// with `reps` (hundreds of allocations here).
#[test]
fn steady_state_sync_cycles_do_not_allocate() {
    // Warm up once so lazily grown structures reach capacity.
    let _ = allocs_for(8);
    let short = allocs_for(50);
    let long = allocs_for(150);
    let delta = long.saturating_sub(short);
    assert!(
        delta <= 16,
        "steady-state allocation churn returned: {short} allocs at 50 reps, \
         {long} at 150 reps (delta {delta}, want <= 16)"
    );
}

/// The task-spawn freelist: kernel-style task slots are recycled, so
/// the total task-table growth is bounded by the concurrency level,
/// not the number of tasks ever spawned. Indirectly visible as the
/// allocation delta above staying flat; here we also pin the absolute
/// per-run numbers into the same ballpark so a gross regression in the
/// setup path is noticed too.
/// Attribution is observation-only in space as well as in virtual time:
/// with the ledger *off* (the default), the attribution code contributes
/// zero steady-state allocations — the delta bound above holds in a
/// binary that carries the full attribution machinery, and a plain run
/// allocates the same count before and after an attributed run of the
/// identical workload (no global state leaks between modes). Attributed
/// runs themselves may allocate in proportion to the ledger samples they
/// record; that is the explicit, opt-in price of observation.
#[test]
fn attribution_off_leaves_hot_path_allocation_free() {
    let _ = allocs_for(8);
    let before = allocs_for(50);
    let _ = allocs_for_mode(50, true);
    let after = allocs_for(50);
    assert_eq!(
        before, after,
        "an attributed run changed the unattributed path's allocation count"
    );
}

#[test]
fn run_allocation_count_is_modest() {
    let _ = allocs_for(8);
    let count = allocs_for(100);
    // Pre-reuse this workload allocated > 600 times (2 Vecs per barrier
    // release + 2 per task-pool completion cycle, 100 cycles); with
    // slab reuse the whole run stays under a small fixed budget.
    assert!(
        count <= 200,
        "run allocated {count} times for 100 sync cycles (want <= 200)"
    );
}
