//! Property tests for the event queue's ordering contract — the
//! invariant every determinism guarantee in the simulator rests on —
//! and for the engine's token-invalidation semantics across the
//! optimized/reference queue implementations.

use ompvar_sim::events::{EventKind, EventQueue};
use ompvar_sim::prelude::*;
use ompvar_sim::time::{Time, MS, SEC, US};
use ompvar_topology::{HwThreadId, MachineSpec, Place};
use proptest::prelude::*;

/// Tag each push with its insertion index so the pop order is fully
/// observable.
fn tagged(i: usize) -> EventKind {
    EventKind::NoiseArrival { src: i as u32 }
}

fn tag_of(kind: EventKind) -> usize {
    match kind {
        EventKind::NoiseArrival { src } => src as usize,
        other => panic!("unexpected kind {other:?}"),
    }
}

proptest! {
    /// Popping everything yields ascending time, ties broken FIFO by
    /// insertion order — i.e. exactly a stable sort by time, on both
    /// queue implementations. (Times are drawn from a narrow range so
    /// ties are common.)
    #[test]
    fn pops_are_a_stable_sort_by_time(times in prop::collection::vec(0u64..16, 1..64)) {
        let mut expect: Vec<(Time, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t); // stable: FIFO within equal times
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            for (i, &t) in times.iter().enumerate() {
                q.push(t, tagged(i));
            }
            let got: Vec<(Time, usize)> = std::iter::from_fn(|| q.pop())
                .map(|(t, k)| (t, tag_of(k)))
                .collect();
            prop_assert_eq!(&got, &expect);
        }
    }

    /// The packed 4-ary heap and the reference binary heap pop
    /// identically under arbitrary push/pop interleavings.
    #[test]
    fn packed_matches_reference_under_interleaving(
        ops in prop::collection::vec((0u64..64, 0u64..4), 1..128),
    ) {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new_reference();
        for (i, &(t, action)) in ops.iter().enumerate() {
            if action == 0 && !a.is_empty() {
                prop_assert_eq!(a.pop(), b.pop());
            } else {
                a.push(t, tagged(i));
                b.push(t, tagged(i));
            }
        }
        while !a.is_empty() {
            prop_assert_eq!(a.pop(), b.pop());
        }
        prop_assert_eq!(b.pop(), None);
    }

    /// `second_time` (the fast-forward's batching bound) is exactly the
    /// earliest pending time excluding the head.
    #[test]
    fn second_time_is_earliest_after_head(times in prop::collection::vec(0u64..32, 2..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, tagged(i));
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        // Pop halfway through, checking the bound before each pop.
        for k in 0..times.len() / 2 {
            prop_assert_eq!(q.second_time(), sorted.get(k + 1).copied());
            q.pop();
        }
    }
}

fn pin(cpu: usize) -> Option<Place> {
    Some(Place::single(HwThreadId(cpu)))
}

/// Build and run an oversubscription scenario that continuously
/// invalidates event tokens: `n_tasks` tasks stacked per CPU mean every
/// quantum expiry preempts (bumping the CPU's boundary token and
/// repricing), and timer ticks stay armed throughout. `tick_period`
/// must be non-zero (a zero period with stacked pinned tasks livelocks
/// the engine at time 0 — on both paths, a pre-existing property of
/// that degenerate configuration, which no shipped parameter set uses).
fn stacked_run(
    n_tasks: usize,
    cycles: f64,
    tick_period: Time,
    quantum: Time,
    reference: bool,
) -> String {
    let machine = MachineSpec::generic(1, 2, 1);
    let mut params = SimParams::sterile();
    params.sched.tick_period = tick_period;
    params.sched.tick_cost = 500;
    params.sched.quantum = quantum;
    let mut sim = Simulator::new(machine, params, 42);
    let barrier = sim.add_barrier(n_tasks, 1.0);
    for rank in 0..n_tasks {
        let prog = Program::builder()
            .compute(cycles, CorunClass::Latency)
            .barrier(barrier)
            .compute(cycles / 2.0, CorunClass::Latency)
            .build();
        // Stack everyone on CPU 0; CPU 1 stays idle as a migration
        // target for the load balancer.
        sim.spawn_user(rank, prog, pin(0));
    }
    if reference {
        sim.use_reference_engine();
    }
    let report = sim.run(10 * SEC).expect("stacked run completes");
    format!("{report:?}")
}

proptest! {
    /// Token-invalidated events are no-ops, identically on both engine
    /// paths: oversubscribed quantum preemption plus live timer ticks
    /// generate a steady stream of stale `CpuBoundary`/`TimerTick`
    /// events, and the full report (every float, every counter) must
    /// come out bit-identical.
    #[test]
    fn stale_token_events_noop_identically(
        n_tasks in 2usize..5,
        mcycles in 1u64..20,
        tick_ms in 1u64..8,
    ) {
        let cycles = mcycles as f64 * 1e6;
        let tick = tick_ms * MS;
        let opt = stacked_run(n_tasks, cycles, tick, 4 * MS, false);
        let refr = stacked_run(n_tasks, cycles, tick, 4 * MS, true);
        prop_assert_eq!(opt, refr);
    }

    /// Same equivalence across quantum lengths: shorter quanta mean
    /// more preemptions, so more stale boundary tokens and more
    /// repricing — while the spin-wait phases give the optimized path's
    /// idle fast-forward room to engage.
    #[test]
    fn quantum_preemption_equivalence(
        n_tasks in 2usize..6,
        us in 50u64..500,
        quantum_us in 100u64..2000,
    ) {
        let cycles = (us * US) as f64 * 3.0; // ~3 GHz generic machine
        let quantum = quantum_us * US;
        let opt = stacked_run(n_tasks, cycles, 2 * MS, quantum, false);
        let refr = stacked_run(n_tasks, cycles, 2 * MS, quantum, true);
        prop_assert_eq!(opt, refr);
    }
}
