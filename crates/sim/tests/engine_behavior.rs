//! Behavioural tests of the simulation engine: each test checks one
//! mechanism the variability study depends on.

use ompvar_sim::prelude::*;
use ompvar_sim::time::{self, SEC};
use ompvar_topology::{HwThreadId, MachineSpec, Place};

fn pin(cpu: usize) -> Option<Place> {
    Some(Place::single(HwThreadId(cpu)))
}

/// A sterile sim of one compute op finishes in cycles / max_ghz.
#[test]
fn compute_duration_matches_frequency() {
    let m = MachineSpec::generic(1, 4, 1); // flat 3.0 GHz
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let prog = Program::builder()
        .mark(0)
        .compute(3.0e6, CorunClass::Latency) // 3M cycles @ 3 GHz = 1 ms
        .mark(1)
        .build();
    let t = sim.spawn_user(0, prog, pin(0));
    let rep = sim.run(SEC).expect("run completes");
    let d = rep.intervals(t, 0, 1)[0];
    assert!(
        (d as f64 - 1e6).abs() < 1e4,
        "expected ~1ms, got {} us",
        time::as_us(d)
    );
}

/// Two pinned threads on different cores run concurrently; on the same
/// hardware thread they serialize via quantum sharing.
#[test]
fn parallel_vs_oversubscribed() {
    let cycles = 30.0e6; // 10 ms at 3 GHz
    let run = |cpus: [usize; 2]| {
        let m = MachineSpec::generic(1, 4, 1);
        let mut sim = Simulator::new(m, SimParams::sterile(), 1);
        for (rank, cpu) in cpus.into_iter().enumerate() {
            let prog = Program::builder()
                .compute(cycles, CorunClass::Throughput)
                .build();
            sim.spawn_user(rank, prog, pin(cpu));
        }
        sim.run(SEC).expect("run completes").final_time
    };
    let apart = run([0, 1]);
    let stacked = run([0, 0]);
    assert!(
        (apart as f64 - 10e6).abs() < 0.2e6,
        "parallel wall {} ms",
        time::as_ms(apart)
    );
    assert!(
        (stacked as f64 - 20e6).abs() < 0.5e6,
        "stacked wall {} ms (expected ~20)",
        time::as_ms(stacked)
    );
}

/// With quantum sharing, both stacked tasks make interleaved progress
/// (neither finishes only at the very end).
#[test]
fn quantum_rotation_interleaves() {
    let m = MachineSpec::generic(1, 2, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let mut ids = Vec::new();
    for rank in 0..2 {
        let prog = Program::builder()
            .compute(30.0e6, CorunClass::Latency)
            .mark(9)
            .build();
        ids.push(sim.spawn_user(rank, prog, pin(0)));
    }
    let rep = sim.run(SEC).expect("run completes");
    let e0 = rep.marker_times(ids[0], 9)[0];
    let e1 = rep.marker_times(ids[1], 9)[0];
    // Both finish near the end (fair sharing), within ~1 quantum of each
    // other — not one at t=10ms and the other at t=20ms.
    let gap = e0.abs_diff(e1);
    assert!(gap <= 5 * time::MS, "gap {} ms too large", time::as_ms(gap));
}

/// SMT co-running slows throughput-class code but barely affects
/// latency-class code.
#[test]
fn smt_corun_slowdown_by_class() {
    let run = |class: CorunClass, cpus: [usize; 2]| {
        let m = MachineSpec::generic(1, 4, 2); // SMT2: cpu k and k+4 are siblings
        let mut sim = Simulator::new(m, SimParams::sterile(), 1);
        for (rank, cpu) in cpus.into_iter().enumerate() {
            let prog = Program::builder().compute(30.0e6, class).build();
            sim.spawn_user(rank, prog, pin(cpu));
        }
        sim.run(SEC).expect("run completes").final_time as f64
    };
    let tp_apart = run(CorunClass::Throughput, [0, 1]);
    let tp_sibling = run(CorunClass::Throughput, [0, 4]);
    assert!(
        tp_sibling / tp_apart > 1.5,
        "throughput corun ratio {}",
        tp_sibling / tp_apart
    );
    let lat_apart = run(CorunClass::Latency, [0, 1]);
    let lat_sibling = run(CorunClass::Latency, [0, 4]);
    assert!(
        lat_sibling / lat_apart < 1.1,
        "latency corun ratio {}",
        lat_sibling / lat_apart
    );
}

/// The slowest thread dictates barrier exit for everyone.
#[test]
fn barrier_waits_for_slowest() {
    let m = MachineSpec::generic(1, 4, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let b = sim.add_barrier(3, 1.0);
    let mut ids = Vec::new();
    for rank in 0..3 {
        let cycles = if rank == 2 { 30.0e6 } else { 3.0e6 }; // 10ms vs 1ms
        let prog = Program::builder()
            .compute(cycles, CorunClass::Latency)
            .barrier(b)
            .mark(7)
            .build();
        ids.push(sim.spawn_user(rank, prog, pin(rank)));
    }
    let rep = sim.run(SEC).expect("run completes");
    for id in ids {
        let t = rep.marker_times(id, 7)[0];
        assert!(
            (10 * time::MS..11 * time::MS).contains(&t),
            "barrier exit at {} ms",
            time::as_ms(t)
        );
    }
}

/// Critical sections serialize: total time ≈ n × section.
#[test]
fn lock_serializes_critical_sections() {
    let m = MachineSpec::generic(1, 8, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let l = sim.add_lock(1.0);
    for rank in 0..4 {
        let prog = Program::builder()
            .critical(l, 3.0e6, CorunClass::Latency) // 1ms section
            .build();
        sim.spawn_user(rank, prog, pin(rank));
    }
    let rep = sim.run(SEC).expect("run completes");
    let wall = rep.final_time as f64;
    assert!(
        wall > 3.9e6 && wall < 4.5e6,
        "critical wall {} ms (expected ~4)",
        wall / 1e6
    );
}

/// A dynamic loop gives a slow (co-scheduled) thread less work, so the
/// wall time beats a static partition under imbalance.
#[test]
fn dynamic_schedule_rebalances() {
    let run = |sched: LoopSchedule| {
        let m = MachineSpec::generic(1, 4, 1);
        let mut sim = Simulator::new(m, SimParams::sterile(), 1);
        let lp = sim.add_loop(LoopSpec {
            schedule: sched,
            total_iters: 400,
            n_threads: 2,
            body_cycles: 150_000.0, // 50 us each
            body_class: CorunClass::Latency,
            ordered_section_ns: None,
            batch: 1,
            span_factor: 1.0,
        });
        let b = sim.add_barrier(2, 1.0);
        for rank in 0..2 {
            let mut pb = Program::builder();
            if rank == 1 {
                // Thread 1 is busy elsewhere for 10 ms first.
                pb = pb.compute(30.0e6, CorunClass::Latency);
            }
            let prog = pb.for_loop(lp).barrier(b).build();
            sim.spawn_user(rank, prog, pin(rank));
        }
        sim.run(SEC).expect("run completes").final_time as f64
    };
    let stat = run(LoopSchedule::Static { chunk: 1 });
    let dyn_ = run(LoopSchedule::Dynamic { chunk: 1 });
    // Static: thread 1 starts 10ms late and still must do its 200 × 50us
    // = 10ms share → ~20ms. Dynamic: thread 0 eats most of the loop.
    assert!(stat > 19e6, "static wall {} ms", stat / 1e6);
    assert!(dyn_ < 16e6, "dynamic wall {} ms", dyn_ / 1e6);
}

/// Guided loop finishes the same work with far fewer grabs but same total.
#[test]
fn guided_schedule_completes() {
    let m = MachineSpec::generic(1, 4, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let lp = sim.add_loop(LoopSpec {
        schedule: LoopSchedule::Guided { min_chunk: 1 },
        total_iters: 1000,
        n_threads: 4,
        body_cycles: 30_000.0, // 10 us
        body_class: CorunClass::Latency,
        ordered_section_ns: None,
        batch: 1,
        span_factor: 1.0,
    });
    let b = sim.add_barrier(4, 1.0);
    let master = {
        let mut ids = Vec::new();
        for rank in 0..4 {
            let prog = Program::builder()
                .mark(0)
                .for_loop(lp)
                .barrier(b)
                .mark(1)
                .build();
            ids.push(sim.spawn_user(rank, prog, pin(rank)));
        }
        ids[0]
    };
    let rep = sim.run(SEC).expect("run completes");
    let d = rep.intervals(master, 0, 1)[0] as f64;
    // 1000 × 10us over 4 threads ≈ 2.5 ms (plus small overheads).
    assert!(d > 2.4e6 && d < 3.2e6, "guided wall {} ms", d / 1e6);
}

/// Ordered sections execute in iteration order (serialized).
#[test]
fn ordered_loop_serializes() {
    let m = MachineSpec::generic(1, 4, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let lp = sim.add_loop(LoopSpec {
        schedule: LoopSchedule::Static { chunk: 1 },
        total_iters: 16,
        n_threads: 4,
        body_cycles: 3_000.0, // 1 us body
        body_class: CorunClass::Latency,
        ordered_section_ns: Some(100_000.0), // 100 us section
        batch: 1,
        span_factor: 1.0,
    });
    let b = sim.add_barrier(4, 1.0);
    for rank in 0..4 {
        let prog = Program::builder().for_loop(lp).barrier(b).build();
        sim.spawn_user(rank, prog, pin(rank));
    }
    let rep = sim.run(SEC).expect("run completes");
    // 16 serialized 100us sections dominate: ≥ 1.6 ms.
    assert!(
        rep.final_time >= 1_600_000,
        "ordered wall {} ms",
        time::as_ms(rep.final_time)
    );
}

/// `single`: exactly one thread of each round executes the body.
#[test]
fn single_executes_once_per_round() {
    let m = MachineSpec::generic(1, 4, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let s = sim.add_single(4);
    let b = sim.add_barrier(4, 1.0);
    for rank in 0..4 {
        let prog = Program::builder()
            .repeat(3)
            .single(s, 3.0e6) // 1 ms body
            .barrier(b)
            .end_repeat()
            .build();
        sim.spawn_user(rank, prog, pin(rank));
    }
    let rep = sim.run(SEC).expect("run completes");
    // 3 rounds × 1ms single body ≈ 3 ms (not 12 ms: bodies don't stack).
    let wall = rep.final_time as f64;
    assert!(wall > 2.9e6 && wall < 4.0e6, "single wall {} ms", wall / 1e6);
}

/// Atomics are contention-priced: 8 concurrent RMWs cost more than one.
#[test]
fn atomic_contention_prices() {
    let run = |n: usize| {
        let m = MachineSpec::generic(1, 8, 1);
        let mut sim = Simulator::new(m, SimParams::sterile(), 1);
        let a = sim.add_atomic(1.0);
        for rank in 0..n {
            let prog = Program::builder().repeat(100).atomic(a).end_repeat().build();
            sim.spawn_user(rank, prog, pin(rank));
        }
        sim.run(SEC).expect("run completes").final_time as f64
    };
    assert!(run(8) > run(1) * 1.5);
}

/// Memory bandwidth saturates: 8 streaming threads on one domain are not
/// 8× faster than 1.
#[test]
fn memory_bandwidth_contention() {
    let run = |n: usize| {
        let m = MachineSpec::generic(1, 8, 1); // 40 GB/s domain, 13 GB/s core
        let mut sim = Simulator::new(m, SimParams::sterile(), 1);
        let bytes = 512.0e6 / n as f64;
        for rank in 0..n {
            let prog = Program::builder().mem_stream(bytes).build();
            sim.spawn_user(rank, prog, pin(rank));
        }
        sim.run(10 * SEC).expect("run completes").final_time as f64
    };
    let t1 = run(1);
    let t8 = run(8);
    let speedup = t1 / t8;
    // Perfect scaling would be 8×; bandwidth cap (40/13 ≈ 3.1) limits it.
    assert!(
        speedup > 2.0 && speedup < 4.0,
        "stream speedup {speedup} (t1 {} ms, t8 {} ms)",
        t1 / 1e6,
        t8 / 1e6
    );
}

/// Frequency droops with more active cores (turbo bins).
#[test]
fn active_cores_lower_frequency() {
    let run = |n: usize| {
        let m = MachineSpec::vera(); // bins 3.7 → 2.8
        let mut p = SimParams::sterile();
        p.freq.reaction_latency = 1; // immediate for this test
        let mut sim = Simulator::new(m, p, 1);
        let mut ids = Vec::new();
        for rank in 0..n {
            let prog = Program::builder()
                .mark(0)
                .compute(37.0e6, CorunClass::Latency) // 10 ms at 3.7 GHz
                .mark(1)
                .build();
            ids.push(sim.spawn_user(rank, prog, pin(rank)));
        }
        let rep = sim.run(SEC).expect("run completes");
        rep.intervals(ids[0], 0, 1)[0] as f64
    };
    let t1 = run(1);
    let t16 = run(16);
    // 16 active cores run at 2.8 GHz → ~32% slower.
    let ratio = t16 / t1;
    assert!(
        ratio > 1.2 && ratio < 1.45,
        "freq scaling ratio {ratio} (t1 {} ms, t16 {} ms)",
        t1 / 1e6,
        t16 / 1e6
    );
}

/// Noise preemption delays a pinned thread; a quiet machine does not.
#[test]
fn noise_extends_execution() {
    let run = |noisy: bool| {
        let m = MachineSpec::generic(1, 2, 1);
        let mut p = SimParams::sterile();
        if noisy {
            p.noise = NoiseParams {
                sources: vec![NoiseSource {
                    name: "daemon",
                    mean_interval: 2 * MS,
                    median_duration: 500 * US,
                    duration_sigma: 0.3,
                    placement: NoisePlacement::PerCpu,
                }],
                ..NoiseParams::default()
            };
        }
        let m2 = m.clone();
        let _ = m2;
        let mut sim = Simulator::new(m, p, 7);
        let prog = Program::builder()
            .compute(150.0e6, CorunClass::Latency) // 50 ms
            .build();
        sim.spawn_user(0, prog, pin(0));
        let rep = sim.run(10 * SEC).expect("run completes");
        (rep.final_time as f64, rep.counters.preemptions)
    };
    let (quiet, p0) = run(false);
    let (noisy, p1) = run(true);
    assert_eq!(p0, 0);
    assert!(p1 > 0, "no preemptions recorded");
    assert!(
        noisy > quiet * 1.1,
        "noise did not slow execution: {} vs {} ms",
        noisy / 1e6,
        quiet / 1e6
    );
}

/// Least-loaded noise placement prefers idle CPUs: a pinned thread on a
/// mostly idle machine is barely disturbed by global daemons.
#[test]
fn global_daemons_absorbed_by_idle_cpus() {
    let run = |spare: bool| {
        let m = MachineSpec::generic(1, 8, 1);
        let n_threads = if spare { 4 } else { 8 };
        let mut p = SimParams::sterile();
        p.noise = NoiseParams {
            sources: vec![NoiseSource {
                name: "daemon",
                mean_interval: MS,
                median_duration: 300 * US,
                duration_sigma: 0.3,
                placement: NoisePlacement::LeastLoaded,
            }],
            // Deterministic placement for this test: daemons always pick
            // the least-loaded CPU.
            daemon_local_wake_prob: 0.0,
            ..NoiseParams::default()
        };
        let mut sim = Simulator::new(m, p, 3);
        let b = sim.add_barrier(n_threads, 1.0);
        for rank in 0..n_threads {
            let prog = Program::builder()
                .repeat(50)
                .compute(3.0e6, CorunClass::Latency)
                .barrier(b)
                .end_repeat()
                .build();
            sim.spawn_user(rank, prog, pin(rank));
        }
        let rep = sim.run(10 * SEC).expect("run completes");
        (rep.final_time as f64, rep.counters.preemptions)
    };
    let (t_spare, preempt_spare) = run(true);
    let (t_full, preempt_full) = run(false);
    assert!(
        preempt_spare < preempt_full / 4,
        "spare cpus should absorb daemons: {preempt_spare} vs {preempt_full}"
    );
    assert!(
        t_full > t_spare * 1.03,
        "full machine should be slower: {} vs {} ms",
        t_full / 1e6,
        t_spare / 1e6
    );
}

/// Determinism: identical seeds → identical runs; different seeds differ.
#[test]
fn seeded_determinism() {
    let run = |seed: u64| {
        let m = MachineSpec::vera();
        let p = SimParams::for_machine(&MachineSpec::vera());
        let mut sim = Simulator::new(m, p, seed);
        let b = sim.add_barrier(8, 1.0);
        for rank in 0..8 {
            let prog = Program::builder()
                .repeat(20)
                .compute(2.1e6, CorunClass::Latency)
                .barrier(b)
                .end_repeat()
                .build();
            sim.spawn_user(rank, prog, pin(rank));
        }
        let rep = sim.run(10 * SEC).expect("run completes");
        (rep.final_time, rep.counters.noise_events)
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).0, run(43).0);
}

/// The frequency logger records samples and sees the benchmark's socket
/// running faster than idle cores.
#[test]
fn freq_logger_samples() {
    let m = MachineSpec::vera();
    let mut p = SimParams::sterile();
    p.freq.reaction_latency = 1;
    let mut sim = Simulator::new(m, p, 1);
    sim.enable_freq_logger(Some(31), time::MS, 2 * US);
    let prog = Program::builder()
        .compute(37.0e6, CorunClass::Latency)
        .build();
    sim.spawn_user(0, prog, pin(0));
    let rep = sim.run(SEC).expect("run completes");
    assert!(rep.freq_samples.len() >= 5, "{} samples", rep.freq_samples.len());
    let s = &rep.freq_samples[3];
    assert_eq!(s.core_ghz.len(), 32);
    assert!(s.core_ghz[0] > s.core_ghz[5], "busy core should be faster");
}

/// An unbound, oversubscribed run migrates threads; a pinned one never.
#[test]
fn load_balancer_migrates_unbound_only() {
    let run = |pinned: bool| {
        let m = MachineSpec::generic(1, 4, 1);
        let mut p = SimParams::sterile();
        p.sched.wake_misplace_prob = 1.0; // force collisions initially
        let mut sim = Simulator::new(m, p, 5);
        for rank in 0..4 {
            let prog = Program::builder()
                .compute(300.0e6, CorunClass::Latency) // 100 ms
                .build();
            let place = if pinned { pin(rank) } else { None };
            sim.spawn_user(rank, prog, place);
        }
        sim.run(10 * SEC).expect("run completes").counters.migrations
    };
    assert_eq!(run(true), 0);
    assert!(run(false) > 0, "unbound run should migrate");
}

/// Remote-domain streaming is slower than local streaming.
#[test]
fn remote_memory_slower() {
    // Thread starts on socket 0 (first-touch home), then is re-pinned...
    // The engine fixes home at first dispatch, so emulate remote access by
    // comparing a 2-socket machine where the second thread's data is homed
    // on its own socket vs. streamed from the other one. We approximate by
    // checking the rate function indirectly: one thread streaming locally
    // vs. one thread whose place is on socket 1 but whose program first
    // runs... — simplest observable: two threads both homed on domain 0,
    // one pinned to socket 0 and one to socket 1.
    let m = MachineSpec::generic(2, 4, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    // Rank 0: local streamer on cpu 0.
    let p0 = Program::builder().mark(0).mem_stream(100.0e6).mark(1).build();
    let t0 = sim.spawn_user(0, p0, pin(0));
    let rep = sim.run(10 * SEC).expect("run completes");
    let local = rep.intervals(t0, 0, 1)[0] as f64;

    let m = MachineSpec::generic(2, 4, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    // Remote: home the task on domain 0 by a first-touch compute on cpu 0?
    // Pinning moves are not modeled mid-program, so instead verify the
    // remote factor with an unbound task that the balancer may move; the
    // deterministic check is the local case above plus the rate model's
    // unit test — here we at least check local streaming bandwidth ≈
    // per-core cap (13 GB/s → 100 MB in ~7.7 ms).
    let p1 = Program::builder().mark(0).mem_stream(100.0e6).mark(1).build();
    let t1 = sim.spawn_user(0, p1, pin(0));
    let rep = sim.run(10 * SEC).expect("run completes");
    let again = rep.intervals(t1, 0, 1)[0] as f64;
    assert!((local / again - 1.0).abs() < 1e-9);
    assert!(
        (local / 1e6 - 7.7).abs() < 0.5,
        "local 100MB stream took {} ms",
        local / 1e6
    );
}

/// Explicit tasks distribute across the team: one spawner, many stealers.
#[test]
fn task_pool_distributes_work() {
    let m = MachineSpec::generic(1, 8, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let pool = sim.add_task_pool(1.0, 8, 1);
    let b = sim.add_barrier(8, 1.0);
    for rank in 0..8 {
        let mut pb = Program::builder();
        if rank == 0 {
            pb = pb.task_spawn(pool, 64, 3.0e6); // 64 × 1 ms tasks
        }
        let prog = pb.barrier(b).task_wait(pool).barrier(b).build();
        sim.spawn_user(rank, prog, pin(rank));
    }
    let rep = sim.run(SEC).expect("run completes");
    // 64 ms of task work over 8 threads ≈ 8 ms, not 64 ms.
    let wall = rep.final_time as f64;
    assert!(wall > 7.9e6, "wall {} ms", wall / 1e6);
    assert!(wall < 16e6, "wall {} ms — tasks not distributed", wall / 1e6);
}

/// Task-wait blocks until the last outstanding task finishes, even when
/// the waiter's own queue view is already empty.
#[test]
fn task_wait_blocks_for_outstanding() {
    let m = MachineSpec::generic(1, 4, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let pool = sim.add_task_pool(1.0, 2, 1);
    let b = sim.add_barrier(2, 1.0);
    let mut ids = Vec::new();
    for rank in 0..2 {
        let mut pb = Program::builder();
        if rank == 0 {
            // One long task (10 ms).
            pb = pb.task_spawn(pool, 1, 30.0e6);
        }
        let prog = pb.barrier(b).task_wait(pool).mark(5).build();
        ids.push(sim.spawn_user(rank, prog, pin(rank)));
    }
    let rep = sim.run(SEC).expect("run completes");
    // Rank 1 steals nothing if rank 0 grabs its own task first — but
    // whoever waits must not pass the task-wait before the 10 ms task is
    // done.
    for id in ids {
        let t = rep.marker_times(id, 5)[0];
        assert!(t >= 10 * time::MS, "task_wait exited early at {} ms", time::as_ms(t));
    }
}

/// Two *distinct* sequential loops must both run to completion. The
/// task-private loop cursor is shared across loop objects; before the
/// per-entry re-arm in `Op::ForLoop` handling, the second loop aliased
/// the first's exhausted cursor (both at generation 0) and executed zero
/// iterations. Found by differential fuzzing (qcheck seed 46).
#[test]
fn back_to_back_distinct_loops_both_execute() {
    let m = MachineSpec::generic(1, 4, 1);
    let mut sim = Simulator::new(m, SimParams::sterile(), 1);
    let mk = |sim: &mut Simulator, total: u64| {
        sim.add_loop(LoopSpec {
            schedule: LoopSchedule::Static { chunk: 1 },
            total_iters: total,
            n_threads: 2,
            body_cycles: 3_000.0,
            body_class: CorunClass::Latency,
            ordered_section_ns: None,
            batch: 1,
            span_factor: 1.0,
        })
    };
    let lp1 = mk(&mut sim, 7);
    let lp2 = mk(&mut sim, 5);
    let b1 = sim.add_barrier(2, 1.0);
    let b2 = sim.add_barrier(2, 1.0);
    for rank in 0..2 {
        let prog = Program::builder()
            .for_loop(lp1)
            .barrier(b1)
            .for_loop(lp2)
            .barrier(b2)
            .build();
        sim.spawn_user(rank, prog, pin(rank));
    }
    let rep = sim.run(SEC).expect("run completes");
    for (lp, want) in [(lp1, 7), (lp2, 5)] {
        let ObjEffects::Loop { iters, passes, .. } = rep.obj_effects[lp.0 as usize] else {
            panic!("expected a loop at {lp:?}");
        };
        assert_eq!(iters, want, "loop {lp:?} executed {iters}/{want} iters");
        assert_eq!(passes, 1);
    }
}
