//! Fault-injection integration tests: every injector, the watchdog's
//! typed diagnostics, and per-seed determinism of injected runs.

use ompvar_sim::prelude::*;
use ompvar_sim::time::{MS, SEC, US};
use ompvar_topology::{HwThreadId, MachineSpec, Place};

fn pin(cpu: usize) -> Option<Place> {
    Some(Place::single(HwThreadId(cpu)))
}

/// A sterile two-thread barrier loop; the common victim workload.
fn spawn_pair(sim: &mut Simulator, reps: u32, cycles: f64) -> ObjId {
    let b = sim.add_barrier(2, 1.0);
    for rank in 0..2 {
        let prog = Program::builder()
            .repeat(reps)
            .compute(cycles, CorunClass::Latency)
            .barrier(b)
            .end_repeat()
            .build();
        sim.spawn_user(rank, prog, pin(rank));
    }
    b
}

fn sterile_sim(seed: u64) -> Simulator {
    Simulator::new(MachineSpec::generic(1, 4, 1), SimParams::sterile(), seed)
}

/// Baseline runtime of the victim workload with no faults, for
/// slowdown comparisons.
fn baseline(seed: u64) -> Time {
    let mut sim = sterile_sim(seed);
    spawn_pair(&mut sim, 20, 3.0e6);
    sim.run(SEC).expect("sterile baseline completes").final_time
}

/// A noise storm injected mid-run delays completion and is visible in
/// the counters; the run still finishes.
#[test]
fn noise_storm_injector_slows_run() {
    let clean = baseline(7);
    let mut sim = sterile_sim(7);
    spawn_pair(&mut sim, 20, 3.0e6);
    sim.inject_faults(
        // Storm the whole machine for 10 ms with 20 µs arrivals.
        &FaultPlan::new().noise_storm(MS, 10 * MS, 20 * US, 50 * US, 0.3),
    );
    let rep = sim.run(SEC).expect("stormed run completes");
    assert!(
        rep.final_time > clean,
        "storm must cost time: {clean} !< {}",
        rep.final_time
    );
    assert_eq!(rep.counters.faults_injected, 1);
    assert!(rep.counters.noise_events > 50, "{:?}", rep.counters);
}

/// Offlining a CPU evacuates its pinned task; the victim pair serializes
/// onto the surviving CPU and still completes, slower.
#[test]
fn cpu_offline_injector_evacuates_and_completes() {
    let clean = baseline(8);
    let mut sim = sterile_sim(8);
    spawn_pair(&mut sim, 20, 3.0e6);
    sim.inject_faults(&FaultPlan::new().cpu_offline(MS, 1, None));
    let rep = sim.run(SEC).expect("run completes after hotplug");
    assert!(rep.final_time > clean, "serialized pair must be slower");
    assert!(rep.counters.migrations > 0, "evacuation is a migration");
}

/// A temporary frequency cap stretches the capped window but the cost
/// disappears when the cap lifts: a short cap costs less than a long one.
#[test]
fn freq_cap_injector_windows_are_proportional() {
    let run_with_cap = |dur: Option<Time>| {
        let mut sim = sterile_sim(9);
        spawn_pair(&mut sim, 20, 3.0e6);
        sim.inject_faults(&FaultPlan::new().freq_cap(MS, None, 0.8, dur));
        sim.run(SEC).expect("capped run completes").final_time
    };
    let clean = baseline(9);
    let short = run_with_cap(Some(5 * MS));
    let long = run_with_cap(None);
    assert!(short > clean, "cap must cost time: {clean} !< {short}");
    assert!(long > short, "longer cap must cost more: {short} !< {long}");
}

/// A task stall charges one thread a lump of opaque time; its barrier
/// partner absorbs the delay, so the whole run stretches by about the
/// stall.
#[test]
fn task_stall_injector_charges_victim() {
    let clean = baseline(10);
    let mut sim = sterile_sim(10);
    spawn_pair(&mut sim, 20, 3.0e6);
    let stall = 5.0e6; // 5 ms at max frequency
    sim.inject_faults(&FaultPlan::new().task_stall(MS, Some(0), stall));
    let rep = sim.run(SEC).expect("stalled run completes");
    let delta = rep.final_time.saturating_sub(clean);
    assert!(
        delta >= 4 * MS,
        "a 5 ms stall must stretch the run: delta {delta}ns"
    );
}

/// A lost wakeup turns into a deadlock the watchdog diagnoses, naming
/// the barrier and both stuck tasks, instead of spinning to the limit
/// silently or panicking.
#[test]
fn lost_wakeup_injector_deadlocks_with_diagnostics() {
    let mut sim = sterile_sim(11);
    let b = spawn_pair(&mut sim, 20, 3.0e6);
    sim.inject_faults(&FaultPlan::new().lost_wakeups(MS, 1));
    match sim.run(SEC) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(!blocked.is_empty(), "diagnostics must name someone");
            assert!(
                blocked
                    .iter()
                    .any(|bt| matches!(bt.wait, BlockedOn::Barrier { obj, .. } if obj == b)),
                "diagnostics must name barrier {b:?}: {blocked:?}"
            );
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

/// The same seed and plan produce a bit-identical report; a different
/// seed shifts the storm and lands elsewhere.
#[test]
fn injected_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut sim = sterile_sim(seed);
        spawn_pair(&mut sim, 20, 3.0e6);
        sim.inject_faults(&FaultPlan::new().noise_storm(MS, 10 * MS, 20 * US, 50 * US, 0.3));
        let rep = sim.run(SEC).expect("stormed run completes");
        (rep.final_time, rep.counters.noise_events, rep.counters.preemptions)
    };
    assert_eq!(run(42), run(42), "same seed must replay identically");
    assert_ne!(run(42), run(43), "different seed must differ");
}

/// Injecting a plan does not perturb the model's existing RNG streams:
/// a fault at a time the run never reaches leaves the schedule
/// untouched.
#[test]
fn unreached_fault_does_not_perturb_run() {
    let clean = baseline(12);
    let mut sim = sterile_sim(12);
    spawn_pair(&mut sim, 20, 3.0e6);
    sim.inject_faults(&FaultPlan::new().noise_storm(10 * SEC, MS, 20 * US, 50 * US, 0.3));
    let rep = sim.run(SEC).expect("run completes");
    assert_eq!(rep.final_time, clean, "unfired fault must be free");
}

/// The event budget is a runaway backstop: a tiny budget aborts with a
/// typed error carrying the partial report.
#[test]
fn event_budget_aborts_with_partial_report() {
    let mut sim = sterile_sim(13);
    spawn_pair(&mut sim, 20, 3.0e6);
    sim.set_event_budget(10);
    match sim.run(SEC) {
        Err(SimError::EventBudgetExceeded { budget, partial }) => {
            assert_eq!(budget, 10);
            assert_eq!(partial.unfinished, 2);
        }
        other => panic!("expected EventBudgetExceeded, got {other:?}"),
    }
}

/// A malformed program (lock acquire on a barrier id) is a typed error,
/// not a panic.
#[test]
fn object_type_mismatch_is_typed() {
    let mut sim = sterile_sim(14);
    let b = sim.add_barrier(1, 1.0);
    let prog = Program::builder().lock(b).build();
    sim.spawn_user(0, prog, pin(0));
    match sim.run(SEC) {
        Err(SimError::ObjectTypeMismatch { expected, found, .. }) => {
            assert_eq!(expected, "lock");
            assert_eq!(found, "barrier");
        }
        other => panic!("expected ObjectTypeMismatch, got {other:?}"),
    }
}
