//! Property tests of the fault-injection layer.
//!
//! Two invariants the experiment harness leans on:
//!
//! * **Replay determinism** — the same seed and the same fault plan
//!   produce a bit-identical report, for any drawn storm parameters.
//! * **Unfired injectors are free** — a fault scheduled far beyond the
//!   end of the run leaves the report bit-identical to a fault-free run;
//!   merely *arming* the layer must not perturb the simulation.

use ompvar_sim::prelude::*;
use ompvar_sim::time::{MS, SEC, US};
use ompvar_topology::{HwThreadId, MachineSpec, Place};
use proptest::prelude::*;

fn pin(cpu: usize) -> Option<Place> {
    Some(Place::single(HwThreadId(cpu)))
}

/// A sterile two-thread barrier loop; the common victim workload.
fn spawn_pair(sim: &mut Simulator, reps: u32, cycles: f64) {
    let b = sim.add_barrier(2, 1.0);
    for rank in 0..2 {
        let prog = Program::builder()
            .repeat(reps)
            .compute(cycles, CorunClass::Latency)
            .barrier(b)
            .end_repeat()
            .build();
        sim.spawn_user(rank, prog, pin(rank));
    }
}

fn run_with_plan(seed: u64, reps: u32, plan: &FaultPlan) -> String {
    let mut sim = Simulator::new(MachineSpec::generic(1, 4, 1), SimParams::sterile(), seed);
    spawn_pair(&mut sim, reps, 1.5e6);
    sim.inject_faults(plan);
    let rep = sim.run(10 * SEC).expect("faulted run completes");
    // f64 Debug is shortest-roundtrip: equal strings ⇒ bit-identical.
    format!("{rep:?}")
}

proptest! {
    /// Same seed + same drawn storm ⇒ bit-identical injection schedule
    /// and report.
    #[test]
    fn same_seed_replays_identically(
        seed in 0u64..1_000_000,
        start_ms in 1u64..5,
        mean_us in 5u64..50,
        mag in 0.05f64..0.5,
        reps in 4u32..12,
    ) {
        let plan = FaultPlan::new().noise_storm(
            start_ms * MS,
            20 * MS,
            mean_us * US,
            50 * US,
            mag,
        );
        let a = run_with_plan(seed, reps, &plan);
        let b = run_with_plan(seed, reps, &plan);
        prop_assert_eq!(a, b, "seed {} did not replay identically", seed);
    }

    /// An injector armed far past the end of the run changes nothing:
    /// the report is bit-identical to the fault-free run.
    #[test]
    fn unfired_injector_leaves_report_untouched(
        seed in 0u64..1_000_000,
        reps in 4u32..12,
        kind in 0u8..4,
    ) {
        // All injector kinds, armed 1000 s in — far past any run here.
        let at = 1000 * SEC;
        let plan = match kind {
            0 => FaultPlan::new().noise_storm(at, SEC, 20 * US, 50 * US, 0.3),
            1 => FaultPlan::new().cpu_offline(at, 0, None),
            2 => FaultPlan::new().freq_cap(at, None, 1.0, None),
            _ => FaultPlan::new().task_stall(at, Some(0), 2.0e6),
        };
        let clean = run_with_plan(seed, reps, &FaultPlan::new());
        let armed = run_with_plan(seed, reps, &plan);
        prop_assert_eq!(
            clean,
            armed,
            "arming unfired injector kind {} perturbed the run",
            kind
        );
    }
}
