//! Simulated tasks: programs, micro-ops and per-task execution state.
//!
//! A task's behaviour is described by a [`Program`]: a compact list of
//! [`Op`]s with structured repetition ([`Op::LoopBegin`]/[`Op::LoopEnd`]).
//! At run time the engine *expands* one op at a time into a short queue of
//! [`MicroOp`]s — the unit the event loop actually executes. Expansion is
//! instantaneous in virtual time; only timed micro-ops (cycles, fixed
//! nanoseconds, streamed bytes) advance the clock, and only they can be
//! preempted part-way through.

use crate::time::Time;
use ompvar_topology::Place;
use std::collections::VecDeque;

/// Task identifier (index into the engine's task table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// Sync-object identifier (index into the engine's object table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId(pub u32);

/// How a compute op's throughput reacts to SMT co-running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorunClass {
    /// Dependency-chain bound (EPCC `delay()` loops): SMT-friendly, barely
    /// slows down when the sibling is busy.
    Latency,
    /// Ordinary mixed code.
    Mixed,
    /// High-IPC throughput code: strongly penalized by a busy sibling.
    Throughput,
}

/// Program-level operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Execute `cycles` of computation (scales with core frequency and
    /// SMT co-run state).
    Compute {
        /// Cycles of work.
        cycles: f64,
        /// SMT co-run class.
        class: CorunClass,
    },
    /// Busy for a fixed wall-clock duration (kernel-style work, not
    /// frequency scaled).
    Busy {
        /// Duration in max-frequency nanoseconds.
        ns: f64,
    },
    /// Stream `bytes` of memory traffic against the task's home NUMA
    /// domain (bandwidth model, contended).
    MemStream {
        /// Bytes to stream.
        bytes: f64,
    },
    /// Record a timestamped marker in the report.
    Mark {
        /// Marker id chosen by the program author.
        marker: u32,
    },
    /// Arrive at barrier `obj` and wait for the full team.
    Barrier {
        /// Barrier object.
        obj: ObjId,
    },
    /// Acquire lock `obj` (spin-waiting if held).
    LockAcquire {
        /// Lock object.
        obj: ObjId,
    },
    /// Release lock `obj`, handing off to the next spinner if any.
    LockRelease {
        /// Lock object.
        obj: ObjId,
    },
    /// One short atomic read-modify-write on shared object `obj`
    /// (contention-priced).
    AtomicOp {
        /// Atomic object.
        obj: ObjId,
    },
    /// Execute work-shared loop `obj` to completion (chunk grabbing
    /// according to the loop's schedule, including `ordered` semantics).
    ForLoop {
        /// Loop object.
        obj: ObjId,
    },
    /// OpenMP `single`: the first arriver of each round executes
    /// `body_cycles`, everyone else just pays the check cost.
    Single {
        /// `single` tracker object.
        obj: ObjId,
        /// Winner's body work, cycles.
        body_cycles: f64,
    },
    /// Spawn `count` explicit tasks of `body_cycles` each into pool
    /// `obj` (cost per spawn is contention-priced).
    TaskSpawn {
        /// Target pool.
        obj: ObjId,
        /// Tasks to spawn.
        count: u32,
        /// Compute cycles of each task body.
        body_cycles: f64,
    },
    /// Task-scheduling point: execute queued tasks from pool `obj` until
    /// it drains, then wait for all outstanding tasks to complete
    /// (`omp taskwait` over the team's children).
    TaskWait {
        /// Target pool.
        obj: ObjId,
    },
    /// Begin a repetition block executed `count` times.
    LoopBegin {
        /// Repetition count.
        count: u32,
    },
    /// End of the innermost repetition block.
    LoopEnd,
}

/// A task's program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Create a program from raw ops. Validates that repetition blocks are
    /// balanced.
    pub fn new(ops: Vec<Op>) -> Self {
        let mut depth = 0i32;
        for op in &ops {
            match op {
                Op::LoopBegin { count } => {
                    assert!(*count > 0, "LoopBegin count must be positive");
                    depth += 1;
                }
                Op::LoopEnd => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced LoopEnd");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced LoopBegin");
        Program { ops }
    }

    /// The raw op list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Rewrite this program in place into the single op `Busy { ns }`,
    /// re-using the op storage. This is the noise-task recycling fast
    /// path: a freelisted kernel task gets its next burst without
    /// allocating a fresh `Program`.
    pub fn reset_to_busy(&mut self, ns: f64) {
        self.ops.clear();
        self.ops.push(Op::Busy { ns });
    }

    /// Builder for ergonomic program construction.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder { ops: Vec::new() }
    }
}

/// Fluent builder for [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Append a compute op.
    pub fn compute(mut self, cycles: f64, class: CorunClass) -> Self {
        self.ops.push(Op::Compute { cycles, class });
        self
    }

    /// Append a fixed-duration busy op.
    pub fn busy_ns(mut self, ns: f64) -> Self {
        self.ops.push(Op::Busy { ns });
        self
    }

    /// Append a memory-stream op.
    pub fn mem_stream(mut self, bytes: f64) -> Self {
        self.ops.push(Op::MemStream { bytes });
        self
    }

    /// Append a marker.
    pub fn mark(mut self, marker: u32) -> Self {
        self.ops.push(Op::Mark { marker });
        self
    }

    /// Append a barrier.
    pub fn barrier(mut self, obj: ObjId) -> Self {
        self.ops.push(Op::Barrier { obj });
        self
    }

    /// Append lock acquire + a critical body + release.
    pub fn critical(mut self, obj: ObjId, body_cycles: f64, class: CorunClass) -> Self {
        self.ops.push(Op::LockAcquire { obj });
        if body_cycles > 0.0 {
            self.ops.push(Op::Compute {
                cycles: body_cycles,
                class,
            });
        }
        self.ops.push(Op::LockRelease { obj });
        self
    }

    /// Append a bare lock acquire.
    pub fn lock(mut self, obj: ObjId) -> Self {
        self.ops.push(Op::LockAcquire { obj });
        self
    }

    /// Append a bare lock release.
    pub fn unlock(mut self, obj: ObjId) -> Self {
        self.ops.push(Op::LockRelease { obj });
        self
    }

    /// Append an atomic RMW.
    pub fn atomic(mut self, obj: ObjId) -> Self {
        self.ops.push(Op::AtomicOp { obj });
        self
    }

    /// Append a work-shared loop execution.
    pub fn for_loop(mut self, obj: ObjId) -> Self {
        self.ops.push(Op::ForLoop { obj });
        self
    }

    /// Append a `single` construct.
    pub fn single(mut self, obj: ObjId, body_cycles: f64) -> Self {
        self.ops.push(Op::Single { obj, body_cycles });
        self
    }

    /// Append an explicit-task spawn burst.
    pub fn task_spawn(mut self, obj: ObjId, count: u32, body_cycles: f64) -> Self {
        self.ops.push(Op::TaskSpawn {
            obj,
            count,
            body_cycles,
        });
        self
    }

    /// Append a task-wait scheduling point.
    pub fn task_wait(mut self, obj: ObjId) -> Self {
        self.ops.push(Op::TaskWait { obj });
        self
    }

    /// Open a repetition block.
    pub fn repeat(mut self, count: u32) -> Self {
        self.ops.push(Op::LoopBegin { count });
        self
    }

    /// Close the innermost repetition block.
    pub fn end_repeat(mut self) -> Self {
        self.ops.push(Op::LoopEnd);
        self
    }

    /// Finish building.
    pub fn build(self) -> Program {
        Program::new(self.ops)
    }
}

/// Timed micro-operation (the only things that consume virtual time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Timed {
    /// Remaining cycles of computation.
    Cycles {
        /// Remaining cycles.
        rem: f64,
        /// SMT co-run class.
        class: CorunClass,
    },
    /// Remaining fixed busy nanoseconds.
    Ns {
        /// Remaining max-frequency nanoseconds.
        rem: f64,
    },
    /// Remaining bytes of a memory stream.
    Bytes {
        /// Remaining bytes.
        rem: f64,
    },
    /// Remaining nanoseconds of a contended atomic; the object's active
    /// count is decremented when it completes.
    AtomicNs {
        /// Remaining max-frequency nanoseconds.
        rem: f64,
        /// Atomic object to release on completion.
        obj: ObjId,
    },
}

/// Untimed/instant micro-operations and wait points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MicroOp {
    /// A timed span.
    Timed(Timed),
    /// Record a marker.
    Mark(u32),
    /// Arrive at a barrier (blocks unless last).
    BarrierArrive(ObjId),
    /// Try to take a lock (blocks while held).
    LockAcquire(ObjId),
    /// Release a lock.
    LockRelease(ObjId),
    /// Start a contended atomic (expands to a priced `Timed::AtomicNs`).
    AtomicStart(ObjId),
    /// Grab the next chunk of a work-shared loop.
    GrabChunk(ObjId),
    /// Wait until the loop's ordered ticket reaches `iter`.
    WaitTicket {
        /// Loop object.
        obj: ObjId,
        /// Iteration whose turn is awaited.
        iter: u64,
    },
    /// Leave the ordered section (advances the ticket).
    TicketDone {
        /// Loop object.
        obj: ObjId,
    },
    /// `single` entry check.
    SingleTry {
        /// `single` tracker object.
        obj: ObjId,
        /// Winner's body work, cycles.
        body_cycles: f64,
    },
    /// Spawn one explicit task into a pool (cost charged separately).
    TaskSpawnOne {
        /// Task-pool object.
        obj: ObjId,
        /// Task body work, cycles.
        body_cycles: f64,
    },
    /// Task-scheduling point: steal-and-execute or wait on the pool.
    TaskExecOrWait {
        /// Task-pool object.
        obj: ObjId,
    },
    /// One stolen task body finished: decrement the pool.
    TaskDone {
        /// Task-pool object.
        obj: ObjId,
    },
    /// Close an open trace span for this task. Free when tracing is off;
    /// always emitted so traced and untraced runs execute identical
    /// micro-op sequences (and therefore identical timing).
    SpanEnd(ompvar_obs::SpanKind),
}

/// What a blocked (spin-waiting) task is waiting for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaitKind {
    /// Spinning at a barrier.
    Barrier(ObjId),
    /// Spinning on a lock.
    Lock(ObjId),
    /// Spinning for an ordered ticket.
    Ticket {
        /// Loop object.
        obj: ObjId,
        /// Iteration whose turn is awaited.
        iter: u64,
    },
    /// Spinning at a task-wait for the pool to drain.
    TaskPool(ObjId),
}

/// Run-state of a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskState {
    /// Has micro-ops (or program) left to execute.
    Runnable,
    /// Spin-waiting on a synchronization object. Still occupies its CPU.
    Waiting(WaitKind),
    /// Program finished; removed from its CPU.
    Done,
}

/// Task kind: affects scheduling priority and accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Benchmark (user) thread.
    User,
    /// Kernel noise work (daemons, IRQs, ticks): preempts user tasks,
    /// runs to completion at kernel priority.
    Kernel,
}

/// One repetition-frame of a task's program execution.
#[derive(Debug, Clone, Copy)]
pub struct LoopFrame {
    /// `pc` of the `LoopBegin` op.
    pub begin_pc: usize,
    /// Iterations still to run after the current one.
    pub remaining: u32,
}

/// Per-task statistics collected by the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskStats {
    /// Time spent actually executing timed micro-ops.
    pub busy_time: Time,
    /// Time spent spin-waiting on sync objects.
    pub wait_time: Time,
    /// Time spent preempted (runnable or waiting but not on the CPU).
    pub preempted_time: Time,
    /// Number of migrations between hardware threads.
    pub migrations: u32,
    /// Number of times this task was preempted by a kernel task.
    pub preemptions: u32,
}

/// Full run-time state of one simulated task.
#[derive(Debug)]
pub struct Task {
    /// Stable identifier.
    pub id: TaskId,
    /// User or kernel.
    pub kind: TaskKind,
    /// Rank within the team (meaningful for user tasks in a team).
    pub rank: usize,
    /// Program to execute.
    pub program: Program,
    /// Next op to expand.
    pub pc: usize,
    /// Active repetition frames.
    pub frames: Vec<LoopFrame>,
    /// Expanded-but-not-yet-executed micro-ops.
    pub micro: VecDeque<MicroOp>,
    /// The timed micro-op currently in progress, if any.
    pub current: Option<Timed>,
    /// Run-state.
    pub state: TaskState,
    /// Pinning mask (None = unbound, OS may migrate).
    pub pin: Option<Place>,
    /// Hardware thread currently hosting the task.
    pub cpu: usize,
    /// NUMA domain where the task's data lives (first-touch).
    pub home_numa: Option<usize>,
    /// Overhead (ns) to burn before `current` continues: wake-up costs,
    /// migration penalties, tick charges.
    pub pending_overhead_ns: f64,
    /// Static-loop position cache: generation and next chunk index.
    pub loop_gen: u64,
    /// Next chunk index of this task within the current static loop pass.
    pub loop_pos: u64,
    /// Statistics.
    pub stats: TaskStats,
    /// Time of the last task-state accounting update.
    pub last_account: Time,
}

impl Task {
    /// Create a fresh task (engine fills in placement).
    pub fn new(id: TaskId, kind: TaskKind, rank: usize, program: Program, pin: Option<Place>) -> Self {
        Task {
            id,
            kind,
            rank,
            program,
            pc: 0,
            frames: Vec::new(),
            micro: VecDeque::new(),
            current: None,
            state: TaskState::Runnable,
            pin,
            cpu: usize::MAX,
            home_numa: None,
            pending_overhead_ns: 0.0,
            loop_gen: u64::MAX,
            loop_pos: 0,
            stats: TaskStats::default(),
            last_account: 0,
        }
    }

    /// Whether the task's program is fully executed.
    pub fn finished(&self) -> bool {
        matches!(self.state, TaskState::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_balanced_program() {
        let p = Program::builder()
            .mark(0)
            .repeat(3)
            .compute(100.0, CorunClass::Latency)
            .barrier(ObjId(0))
            .end_repeat()
            .mark(1)
            .build();
        assert_eq!(p.ops().len(), 6);
    }

    #[test]
    #[should_panic(expected = "unbalanced LoopBegin")]
    fn unbalanced_repeat_panics() {
        Program::new(vec![Op::LoopBegin { count: 2 }]);
    }

    #[test]
    #[should_panic(expected = "unbalanced LoopEnd")]
    fn stray_loop_end_panics() {
        Program::new(vec![Op::LoopEnd]);
    }

    #[test]
    #[should_panic(expected = "count must be positive")]
    fn zero_count_repeat_panics() {
        Program::new(vec![Op::LoopBegin { count: 0 }, Op::LoopEnd]);
    }

    #[test]
    fn critical_builder_expands_to_three_ops() {
        let p = Program::builder()
            .critical(ObjId(1), 50.0, CorunClass::Mixed)
            .build();
        assert_eq!(p.ops().len(), 3);
        assert!(matches!(p.ops()[0], Op::LockAcquire { .. }));
        assert!(matches!(p.ops()[2], Op::LockRelease { .. }));
    }

    #[test]
    fn new_task_is_runnable_and_unplaced() {
        let t = Task::new(TaskId(0), TaskKind::User, 0, Program::default(), None);
        assert_eq!(t.state, TaskState::Runnable);
        assert_eq!(t.cpu, usize::MAX);
        assert!(t.home_numa.is_none());
    }
}
